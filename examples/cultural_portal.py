"""The cultural-goods portal: the paper's motivating application at scale.

Builds a larger synthetic dataset (a few hundred artifacts and artworks),
integrates both sources through view1.yat, and serves the queries the
paper discusses plus a few more a portal would need — reporting, for each,
the answer size and the transfer statistics with and without optimization.

Run:  python examples/cultural_portal.py [n_artifacts]
"""

import sys

from repro import Mediator, O2Wrapper, WaisWrapper
from repro.datasets import CulturalDataset

VIEW1_YAT = """
artworks() :=
MAKE doc [ *&artwork($t, $c) :=
    work [ title: $t, artist: $a, year: $y, price: $p,
           style: $s, size: $si, owners [ *$o ], more: $fields ] ]
MATCH artifacts WITH
    set *class: artifact:
             tuple [ title: $t, year: $y, creator: $c, price: $p,
                     owners: list *class: person:
                        tuple [ name: $o, auction: $au ] ],
      artworks WITH
    works *work [ artist: $a, title: $t', style: $s, size: $si, *($fields) ]
WHERE $y > 1800 AND $c = $a AND $t = $t'
"""

PORTAL_QUERIES = {
    "Q1 — artifacts created at Giverny": """
        MAKE $t
        MATCH artworks WITH doc . work [ title . $t, more . cplace . $cl ]
        WHERE $cl = "Giverny"
    """,
    "Q2 — impressionist artworks under 1.5M": """
        MAKE doc [ * item [ title: $t, artist: $a, price: $p ] ]
        MATCH artworks WITH
            doc . work [ title . $t, artist . $a, style . $s, price . $p ]
        WHERE $s = "Impressionist" AND $p < 1500000.0
    """,
    "Q3 — catalogue of titles by artist": """
        MAKE catalogue [ *($a) artist [ name: $a, * title: $t ] ]
        MATCH artworks WITH doc . work [ title . $t, artist . $a ]
    """,
    "Q4 — owners of impressionist works": """
        MAKE doc [ * entry [ owner: $o, title: $t ] ]
        MATCH artworks WITH
            doc . work [ title . $t, style . $s, owners . $o ]
        WHERE $s = "Impressionist"
    """,
}


def main() -> None:
    n_artifacts = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    print(f"building the portal dataset ({n_artifacts} artifacts)...")
    database, store = CulturalDataset(n_artifacts=n_artifacts, seed=42).build()

    mediator = Mediator("portal")
    mediator.connect(O2Wrapper("o2artifact", database))
    mediator.connect(WaisWrapper("xmlartwork", store))
    mediator.declare_containment("artworks", "artifacts")
    mediator.load_program(VIEW1_YAT)

    header = f"{'query':45s} {'rows':>5s} {'naive KB':>9s} {'opt KB':>7s} {'saved':>6s}"
    print()
    print(header)
    print("-" * len(header))
    for name, text in PORTAL_QUERIES.items():
        naive = mediator.query(text, optimize=False)
        optimized = mediator.query(text)
        assert naive.document() == optimized.document(), name
        answer_size = len(optimized.document().children)
        naive_kb = naive.report.stats.total_bytes_transferred / 1024
        opt_kb = optimized.report.stats.total_bytes_transferred / 1024
        saved = 1 - (opt_kb / naive_kb) if naive_kb else 0.0
        print(f"{name:45s} {answer_size:5d} {naive_kb:9.1f} {opt_kb:7.1f} "
              f"{saved:5.0%}")

    print("\nexample answer (Q1):")
    result = mediator.query(PORTAL_QUERIES["Q1 — artifacts created at Giverny"])
    for child in result.document().children[:5]:
        print(f"  - {child.atom}")
    print("\nplan it ran:")
    print(result.plan.pretty())


if __name__ == "__main__":
    main()
