"""Federating a SQL source: "SQL can be described in a similar manner".

Section 4.1 claims the capability machinery that wraps OQL also wraps
SQL.  This example proves it end to end:

* the same artifacts live in a relational ``sales`` table (sqlite3) and
  in the Wais XML repository;
* a generic :class:`SqlWrapper` exports the table's structure, an Fmodel
  with the same ``bind``/``inst`` flag vocabulary, and the comparison
  predicates;
* a mediator view joins the SQL rows with the XML documents, and a user
  query is optimized exactly like Q2 — the relational fragment becomes a
  parameterized SQL statement, executed once per driving row.

Run:  python examples/federated_sql.py
"""

from repro import Mediator, SqlWrapper, WaisWrapper
from repro.core.algebra.operators import PushedOp
from repro.datasets import CulturalDataset

VIEW_SQL = """
catalogue() :=
MAKE doc [ *&entry($t) :=
    item [ title: $t, artist: $a, style: $s, price: $p ] ]
MATCH sales WITH rows *row [ title: $t, creator: $c, price: $p ],
      artworks WITH works *work [ artist: $a, title: $t', style: $s ]
WHERE $c = $a AND $t = $t'
"""

QUERY = """
MAKE doc [ * bargain [ title: $t, price: $p ] ]
MATCH catalogue WITH doc . item [ title . $t, style . $s, price . $p ]
WHERE $s = "Impressionist" AND $p < 1000000.0
"""


def main() -> None:
    dataset = CulturalDataset(n_artifacts=40, seed=11)
    database, store = dataset.build()
    sales = dataset.build_sales(database)

    mediator = Mediator("federation")
    mediator.connect(SqlWrapper("salesdb", sales))
    mediator.connect(WaisWrapper("xmlartwork", store))
    views = mediator.load_program(VIEW_SQL)
    print(f"views: {views}")

    naive = mediator.query(QUERY, optimize=False)
    optimized = mediator.query(QUERY)
    assert naive.document() == optimized.document()

    print("\nanswer:")
    for child in optimized.document().children[:8]:
        title = child.child("title").atom
        price = child.child("price").atom
        print(f"  {title:24s} {price:12,.2f}")

    print("\noptimized plan:")
    print(optimized.plan.pretty())

    print("\nnative queries the sources executed (first few distinct):")
    for source, native in optimized.report.stats.distinct_native_queries()[:4]:
        print(f"  [{source}] {native}")

    print("\ntransfer comparison:")
    print(f"  naive:     {naive.report.stats.total_bytes_transferred:7d} bytes, "
          f"{naive.report.stats.total_source_calls} calls")
    print(f"  optimized: {optimized.report.stats.total_bytes_transferred:7d} bytes, "
          f"{optimized.report.stats.total_source_calls} calls")


if __name__ == "__main__":
    main()
