"""The cultural portal over a sharded, replicated Wais source.

The paper's mediator wraps each source as one endpoint; a portal at
scale stores its descriptive documents across N shards with replicas.
This example registers an 8-shard artist-partitioned Wais source under
the single logical name ``xmlartwork`` and shows the four behaviors the
sharding layer adds — without changing a single query:

* scatter-gather — a full scan fans out to every shard, serially or
  overlapped under ``ExecutionPolicy(parallelism=8)``;
* shard pruning — an artist-equality query is planned against the one
  shard that can hold the answer (``EXPLAIN`` shows the decision);
* byte identity — every answer matches a monolithic mediator over the
  same documents;
* replica failover — with every primary replica dead, calls reroute to
  the secondary and the answer is still complete (not degraded).

Run:  python examples/sharded_portal.py [n_artifacts]
"""

import sys

from repro import Mediator, O2Wrapper, WaisWrapper
from repro.core.algebra.scheduling import ExecutionPolicy
from repro.datasets import CulturalDataset, VIEW1_YAT
from repro.mediator.resilience import ResiliencePolicy
from repro.model.xml_io import tree_to_xml
from repro.sources.sharded import (
    HashPartition,
    build_sharded_wais,
    shard_major_store,
    shard_wais_store,
)
from repro.testing import FaultSchedule, FaultyWrapper

SCAN_Q = """MAKE $t
MATCH artworks WITH doc . work [ title . $t, artist . $a ]
"""
PRUNE_Q = """MAKE $t
MATCH artworks WITH doc . work [ title . $t, artist . $a ]
WHERE $a = "Monet"
"""
SHARDS = 8


def build_portal(database, stores, partition, replicas=1, wrap=None):
    mediator = Mediator("portal")
    mediator.connect(O2Wrapper("o2artifact", database))
    mediator.connect_sharded(
        "xmlartwork",
        build_sharded_wais("xmlartwork", stores, replicas=replicas, wrap=wrap),
        partition,
    )
    mediator.declare_containment("artworks", "artifacts")
    mediator.load_program(VIEW1_YAT)
    return mediator


def dead_primary(wrapper, shard, replica):
    """Replica 0 of every shard fails instantly; replica 1 is healthy."""
    if replica == 0:
        return FaultyWrapper(wrapper, FaultSchedule().dead_source())
    return wrapper


def main() -> None:
    n_artifacts = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    database, store = CulturalDataset(n_artifacts=n_artifacts, seed=42).build()
    partition = HashPartition("artist", SHARDS)
    stores = shard_wais_store(store, partition)

    # The oracle: one mediator over the shard-major concatenation.
    mono = Mediator("portal")
    mono.connect(O2Wrapper("o2artifact", database))
    mono.connect(WaisWrapper("xmlartwork", shard_major_store(stores)))
    mono.declare_containment("artworks", "artifacts")
    mono.load_program(VIEW1_YAT)

    portal = build_portal(database, stores, partition)

    print(f"1. scatter-gather: full scan over {SHARDS} shards")
    serial = portal.query(SCAN_Q, execution=ExecutionPolicy(parallelism=1))
    parallel = portal.query(SCAN_Q, execution=ExecutionPolicy(parallelism=8))
    reference = tree_to_xml(mono.query(SCAN_Q).document())
    print(f"   shards read: {serial.report.stats.shard_scatter}/{SHARDS}")
    print(f"   serial == parallel == monolithic answer: "
          f"{tree_to_xml(serial.document()) == tree_to_xml(parallel.document()) == reference}")

    print("\n2. shard pruning: WHERE $a = \"Monet\" plans one shard")
    pruned = portal.query(PRUNE_Q)
    print(f"   shards read: {pruned.report.stats.shard_scatter}/{SHARDS}  "
          f"(pruned {pruned.report.stats.shard_pruned})")
    for line in portal.explain(PRUNE_Q).render().splitlines():
        if "shard" in line:
            print(f"   {line.strip()}")
    print(f"   identical to monolithic answer: "
          f"{tree_to_xml(pruned.document()) == tree_to_xml(mono.query(PRUNE_Q).document())}")

    print("\n3. replica failover: every primary dead, secondaries answer")
    resilient = build_portal(
        database, stores, partition, replicas=2, wrap=dead_primary
    )
    policy = ResiliencePolicy(retry=None, circuit_failure_threshold=1)
    failed_over = resilient.query(SCAN_Q, policy=policy)
    print(f"   failovers: {failed_over.report.stats.shard_failovers}  "
          f"degraded: {failed_over.degraded}")
    print(f"   identical to monolithic answer: "
          f"{tree_to_xml(failed_over.document()) == reference}")


if __name__ == "__main__":
    main()
