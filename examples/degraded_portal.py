"""The cultural portal with a dead source: answering partially.

The paper's mediator assumes every wrapped source answers every request;
a portal serving real traffic cannot.  This example serves the paper's
Q1 ("artifacts created at Giverny") from a Union plan with a fallback
branch — the descriptive Wais source answers the question proper, and
the O2 trading source contributes its title catalogue so the portal
still says *something* when the descriptive source is down:

* healthy run — the union of both branches;
* Wais permanently down, fail-fast policy — the whole query dies;
* Wais down, degradation-enabled policy — retries, the circuit opens,
  the Wais branch is dropped, and the portal returns the surviving
  O2 rows with ``degraded=True`` and per-source outcome records.

Run:  python examples/degraded_portal.py [n_artifacts]
"""

import sys

from repro import Mediator, O2Wrapper, ResiliencePolicy, WaisWrapper
from repro.datasets import CulturalDataset
from repro.errors import SourceError
from repro.testing import FaultSchedule, FaultyWrapper, VirtualClock
from repro.core.algebra.expressions import Cmp, Const, Var
from repro.core.algebra.operators import (
    BindOp,
    ProjectOp,
    SelectOp,
    SourceOp,
    UnionOp,
)
from repro.model.filters import FStar, FVar, felem


def q1_union_plan():
    """Q1 with a fallback: Giverny works UNION the O2 title catalogue."""
    wais_branch = ProjectOp(
        SelectOp(
            BindOp(
                SourceOp("xmlartwork", "artworks"),
                felem("works", FStar(felem("work", felem("title", FVar("t")),
                                           felem("cplace", FVar("cl"))))),
                on="artworks",
            ),
            Cmp("=", Var("cl"), Const("Giverny")),
        ),
        [("t", "t")],
    )
    o2_branch = ProjectOp(
        BindOp(
            SourceOp("o2artifact", "artifacts"),
            felem("set", FStar(felem("class", felem("artifact", felem("tuple",
                  felem("title", FVar("t"))))))),
            on="artifacts",
        ),
        [("t", "t")],
    )
    return UnionOp(wais_branch, o2_branch)


def build_portal(database, store, schedule=None, clock=None):
    mediator = Mediator("portal")
    mediator.connect(O2Wrapper("o2artifact", database))
    wais = WaisWrapper("xmlartwork", store)
    if schedule is not None:
        wais = FaultyWrapper(wais, schedule,
                             sleep=clock.sleep if clock else None)
    mediator.connect(wais)
    return mediator


def main() -> None:
    n_artifacts = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    database, store = CulturalDataset(n_artifacts=n_artifacts, seed=42).build()
    plan = q1_union_plan()

    print("1. every source healthy")
    healthy = build_portal(database, store).execute(plan)
    print(f"   rows={len(healthy.tab)}  degraded={healthy.degraded}")

    print("\n2. Wais down, fail-fast (the seed behavior)")
    clock = VirtualClock()
    portal = build_portal(database, store, FaultSchedule().dead_source(), clock)
    try:
        portal.execute(plan)
    except SourceError as error:
        print(f"   query died: {error}")

    print("\n3. Wais down, degradation-enabled policy")
    clock = VirtualClock()
    policy = ResiliencePolicy.default(
        allow_partial_results=True,
        query_deadline=30.0,
        clock=clock.time,
        sleep=clock.sleep,
    )
    portal = build_portal(database, store, FaultSchedule().dead_source(), clock)
    report = portal.execute(plan, policy=policy)
    print(f"   rows={len(report.tab)}  degraded={report.degraded}")
    print(f"   dropped: {dict(report.stats.dropped_sources)}")
    for outcome in report.outcomes:
        print(f"   {outcome!r}")
    titles = sorted(str(row['t'].atom if hasattr(row['t'], 'atom') else row['t'])
                    for row in report.tab)[:5]
    print(f"   sample surviving titles: {titles}")

    print("\n4. Wais flaky (recovers after 2 failures), retrying policy")
    clock = VirtualClock()
    policy = ResiliencePolicy.default(clock=clock.time, sleep=clock.sleep)
    portal = build_portal(database, store,
                          FaultSchedule().fail("document", times=2), clock)
    report = portal.execute(plan, policy=policy)
    identical = report.tab == healthy.tab
    print(f"   rows={len(report.tab)}  retries={dict(report.stats.retries)}  "
          f"identical to healthy run: {identical}")


if __name__ == "__main__":
    main()
