"""Capability descriptions at work: what each source accepts, and why.

Walks through Section 4 and Section 5.3 interactively:

1. prints the Figure 6 XML interface the O2 wrapper exports;
2. checks a range of filters against each source's Fmodel, showing the
   admissibility verdicts (including the reasons for rejections);
3. runs the paper's Q2 and shows the capability-based rewriting — the
   contains predicate introduced through the declared equivalence, the
   Bind split for Wais, and the bind join into O2 — with the native
   queries each wrapper actually executed;
4. demonstrates the Figure 7 "semistructured query over structured data"
   rewriting: a label variable over typed O2 data expands into pushable
   ground filters.

Run:  python examples/capability_pushdown.py
"""

import xml.dom.minidom

from repro import Mediator, O2Wrapper, WaisWrapper
from repro.core.algebra.operators import BindOp, PushedOp, SourceOp
from repro.core.optimizer import LabelVarExpansionRule, OptimizerContext
from repro.datasets import small_figure1_pair
from repro.model.filters import FElem, FStar, FVar, LabelVar, felem
from repro.yatl import parse_filter

VIEW1_YAT = """
artworks() :=
MAKE doc [ *&artwork($t, $c) :=
    work [ title: $t, artist: $a, year: $y, price: $p,
           style: $s, size: $si, owners [ *$o ], more: $fields ] ]
MATCH artifacts WITH
    set *class: artifact:
             tuple [ title: $t, year: $y, creator: $c, price: $p,
                     owners: list *class: person:
                        tuple [ name: $o, auction: $au ] ],
      artworks WITH
    works *work [ artist: $a, title: $t', style: $s, size: $si, *($fields) ]
WHERE $y > 1800 AND $c = $a AND $t = $t'
"""

Q2 = """
MAKE doc [ * item [ title: $t, artist: $a, price: $p ] ]
MATCH artworks WITH doc . work [ title . $t, artist . $a, style . $s, price . $p ]
WHERE $s = "Impressionist" AND $p < 2000000.0
"""


def show_interface(wrapper) -> None:
    pretty = xml.dom.minidom.parseString(wrapper.interface_xml()).toprettyxml(
        indent="  "
    )
    # Trim the structure exports: the Fmodel is the interesting part here.
    lines = [
        line
        for line in pretty.splitlines()
        if line.strip() and "<structure" not in line
    ]
    in_structure = False
    kept = []
    for line in pretty.splitlines():
        if "<structure" in line:
            in_structure = True
        if not in_structure and line.strip():
            kept.append(line)
        if "</structure>" in line:
            in_structure = False
    print("\n".join(kept[:40]))
    print("  ... (structure exports elided)")


def check_filters(name, matcher, candidates) -> None:
    print(f"\n== filters against {name} ==")
    for text, flt in candidates:
        verdict = matcher.bind_admissible(flt)
        status = "accepted" if verdict else f"REJECTED ({verdict.reason})"
        print(f"  {text:55s} -> {status}")


def main() -> None:
    database, store = small_figure1_pair()
    o2 = O2Wrapper("o2artifact", database)
    wais = WaisWrapper("xmlartwork", store)

    print("== the O2 wrapper's exported interface (Figure 6) ==")
    show_interface(o2)

    check_filters(
        "O2 (o2fmodel)",
        o2.matcher(),
        [
            ("set *class: artifact: tuple [ title: $t ]",
             parse_filter("set *class: artifact: tuple [ title: $t ]")),
            ("set *class $x   (bind whole objects)",
             felem("set", FStar(felem("class", var="x")))),
            ("set *class: $cls: tuple [...]   (schema query)",
             felem("set", FStar(felem("class", FElem(LabelVar("cls")))))),
            ("set *class: artifact: tuple [ $l: $v ]",
             felem("set", FStar(felem("class", felem("artifact",
                   felem("tuple", FElem(LabelVar("l"), (FVar("v"),)))))))),
        ],
    )
    check_filters(
        "Wais (waisfmodel)",
        wais.matcher(),
        [
            ("works *work $w      (whole documents)",
             parse_filter("works *work $w")),
            ("works *work [ title: $t ]   (inner filtering)",
             parse_filter("works *work [ title: $t ]")),
        ],
    )

    # -- Q2 through the mediator ------------------------------------------------
    print("\n== Q2 through the three rewriting rounds (Figure 9) ==")
    mediator = Mediator()
    mediator.connect(o2)
    mediator.connect(wais)
    mediator.load_program(VIEW1_YAT)
    result = mediator.query(Q2)
    print("\nfinal plan:")
    print(result.plan.pretty())
    print("\nanswer:")
    print(result.document().pretty())
    print("\nderivation:")
    print(result.trace.summary())

    # -- label-variable expansion (Figure 7, bottom right) -----------------------
    print("\n== semistructured query over structured data ==")
    print("filter: persons with  tuple [ $l: $v ]  (attribute names wanted)")
    flt = felem(
        "set",
        FStar(felem("class", felem("person",
              felem("tuple", FElem(LabelVar("l"), (FVar("v"),)))))),
    )
    bind = BindOp(SourceOp("o2artifact", "persons"), flt, on="persons")
    context = OptimizerContext(interfaces={"o2artifact": o2.interface()})
    expanded = LabelVarExpansionRule().apply(bind, context)
    print("\nexpanded, every branch pushable to O2:")
    print(expanded.pretty())


if __name__ == "__main__":
    main()
