"""The cultural portal with the lights on: tracing, EXPLAIN, metrics.

Runs the paper's Q1 and Q2 through the federation three ways —

1. ``Mediator.explain(q)``            — the optimized plan and pushdown
   decisions, without touching the sources;
2. ``Mediator.explain(q, analyze=True)`` — the same plan executed under a
   tracer, every node annotated with its actuals (evaluations, rows,
   inclusive time, source calls, bytes);
3. ``Mediator.query(q, tracer=...)``  — a production-style run feeding a
   shared :class:`~repro.observability.MetricsRegistry`, then exporting
   the Chrome trace and the Prometheus exposition.

Run:  python examples/traced_portal.py [n_artifacts]

Writes ``traced_portal.chrome-trace.json`` (load in ``chrome://tracing``
or https://ui.perfetto.dev) and prints the ``yat_*`` metrics.
"""

import sys

from repro import (
    Mediator,
    MetricsRegistry,
    O2Wrapper,
    Tracer,
    WaisWrapper,
    record_execution,
)
from repro.datasets import CulturalDataset, Q1, Q2, VIEW1_YAT


def build_portal(n_artifacts: int) -> Mediator:
    database, store = CulturalDataset(n_artifacts=n_artifacts, seed=42).build()
    mediator = Mediator("portal")
    mediator.connect(O2Wrapper("o2artifact", database))
    mediator.connect(WaisWrapper("xmlartwork", store))
    mediator.declare_containment("artworks", "artifacts")
    mediator.load_program(VIEW1_YAT)
    return mediator


def main() -> None:
    n_artifacts = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    mediator = build_portal(n_artifacts)

    print("=== 1. EXPLAIN Q1 (plan only, no source contact) ===")
    print(mediator.explain(Q1).render())

    print()
    print("=== 2. EXPLAIN ANALYZE Q2 (plan + per-node actuals) ===")
    explanation = mediator.explain(Q2, analyze=True)
    print(explanation.render())

    print()
    print("=== 3. traced production run feeding the metrics registry ===")
    registry = MetricsRegistry()
    tracer = Tracer()
    for label, text in (("q1", Q1), ("q2", Q2)):
        result = mediator.query(text, tracer=tracer)
        record_execution(registry, result.report, query=label)
        print(f"{label}: {len(result.report.tab)} rows, "
              f"{result.report.stats.total_source_calls} source calls, "
              f"{result.report.stats.total_bytes_transferred} bytes")

    trace_path = "traced_portal.chrome-trace.json"
    tracer.write_chrome_trace(trace_path)
    print(f"\n{len(tracer)} spans -> {trace_path} "
          "(open in chrome://tracing or ui.perfetto.dev)")

    print("\nPrometheus exposition (scrape this off disk or a /metrics "
          "endpoint):")
    print(registry.exposition(), end="")


if __name__ == "__main__":
    main()
