"""Quickstart: the paper's Figure 2 session, in one script.

Wraps an O2-style object database and a Wais-indexed XML repository,
connects both to a mediator, loads the integration program (view1.yat),
and runs the paper's Q1 — printing the optimized plan, the derivation,
and what the optimization saved.

Run:  python examples/quickstart.py
"""

from repro import Mediator, O2Wrapper, WaisWrapper
from repro.datasets import small_figure1_pair

VIEW1_YAT = """
artworks() :=
MAKE doc [ *&artwork($t, $c) :=
    work [ title: $t, artist: $a, year: $y, price: $p,
           style: $s, size: $si, owners [ *$o ], more: $fields ] ]
MATCH artifacts WITH
    set *class: artifact:
             tuple [ title: $t, year: $y, creator: $c, price: $p,
                     owners: list *class: person:
                        tuple [ name: $o, auction: $au ] ],
      artworks WITH
    works *work [ artist: $a, title: $t', style: $s, size: $si, *($fields) ]
WHERE $y > 1800 AND $c = $a AND $t = $t'
"""

Q1 = """
MAKE $t
MATCH artworks WITH doc . work [ title . $t, more . cplace . $cl ]
WHERE $cl = "Giverny"
"""


def main() -> None:
    # -- the Figure 2 session ------------------------------------------------
    database, store = small_figure1_pair()

    print("== connecting wrappers (Figure 2) ==")
    mediator = Mediator("yat")
    print(f"o2-wrapper exports:   {O2Wrapper('o2artifact', database).document_names()}")
    mediator.connect(O2Wrapper("o2artifact", database))
    mediator.connect(WaisWrapper("xmlartwork", store))
    mediator.declare_containment("artworks", "artifacts")
    views = mediator.load_program(VIEW1_YAT)
    print(f"loaded integration program, views: {views}\n")

    # -- Q1: What are the artifacts created at Giverny? ----------------------
    print("== Q1: What are the artifacts created at 'Giverny'? ==\n")
    naive = mediator.query(Q1, optimize=False)
    optimized = mediator.query(Q1)

    print("answer:")
    print(optimized.document().pretty())
    assert naive.document() == optimized.document()

    print("\noptimized plan (the Figure 8 result):")
    print(optimized.plan.pretty())

    print("\nderivation:")
    print(optimized.trace.summary())

    print("\nwhat the optimizer saved:")
    print(f"  naive:     {naive.report.stats.total_bytes_transferred:6d} bytes, "
          f"{naive.report.stats.total_source_calls} source calls")
    print(f"  optimized: {optimized.report.stats.total_bytes_transferred:6d} bytes, "
          f"{optimized.report.stats.total_source_calls} source call(s)")


if __name__ == "__main__":
    main()
