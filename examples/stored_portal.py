"""Out-of-core documents: the sqlite store and SQL pushdown at work.

The in-memory sources hold their documents as Python object graphs;
``StoredXmlSource`` holds *rows* — each node shredded to its pre-order
position and half-open subtree interval ``[pre, post)`` — and the
wrapper answers constant-restricted descents as SQL interval self-joins
that return binding tuples, never whole documents.  This example shows
the whole surface:

1. shred the cultural works collection into a sqlite store and connect
   a ``StoreWrapper``;
2. ``EXPLAIN ANALYZE`` prints the wrapper's access choice per Bind —
   ``bind: store-pushdown`` — plus the native interval-join SQL and the
   store actuals (pushdowns, nodes hydrated, bytes avoided);
3. the same query runs with pushdown disabled (full hydration + the
   recursive matcher) and the answers are byte-identical;
4. the ``yat_store_*`` counters in the Prometheus exposition.

Run:  python examples/stored_portal.py [n_artifacts]
"""

import sys
import time

from repro import (
    Mediator,
    MetricsRegistry,
    StoredXmlSource,
    StoreWrapper,
    record_execution,
)
from repro.datasets import CulturalDataset
from repro.model.xml_io import tree_to_xml

#: A selective descent: only the works created in Giverny survive, so
#: the interval join touches a handful of rows and hydrates nothing —
#: ``$t`` binds atoms, which decode straight from the result tuples.
QUERY = """
MAKE doc [ * hit [ title: $t ] ]
MATCH stored_artworks WITH works .. work [ cplace . "Giverny", title . $t ]
"""


def build_portal(n_artifacts: int, enable_pushdown: bool = True) -> Mediator:
    _database, wais = CulturalDataset(n_artifacts=n_artifacts, seed=42).build()
    source = StoredXmlSource()  # ":memory:"; point at a file to persist
    rows = source.add_tree("stored_artworks", wais.collection_tree())
    mediator = Mediator("portal")
    mediator.connect(StoreWrapper("store", source, enable_pushdown=enable_pushdown))
    return mediator, rows


def main() -> None:
    n_artifacts = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    mediator, rows = build_portal(n_artifacts)
    print(f"shredded the works collection into {rows} sqlite rows\n")

    print("=== 1. EXPLAIN ANALYZE: the wrapper's access choice + native SQL ===")
    print(mediator.explain(QUERY, analyze=True).render())

    print("=== 2. pushdown vs full hydration: identical bytes ===")
    start = time.perf_counter()
    pushed = mediator.query(QUERY)
    pushed_s = time.perf_counter() - start

    scanning, _ = build_portal(n_artifacts, enable_pushdown=False)
    start = time.perf_counter()
    scanned = scanning.query(QUERY)
    scan_s = time.perf_counter() - start

    identical = tree_to_xml(pushed.document()) == tree_to_xml(scanned.document())
    stats = pushed.report.stats
    print(f"rows: {len(pushed.report.tab)}   byte-identical: {identical}")
    print(f"scan run:     {scan_s * 1e3:8.2f} ms   "
          f"(scans: {scanned.report.stats.store_scans}, "
          f"hydrated nodes: {scanned.report.stats.store_hydrated_nodes})")
    print(f"pushdown run: {pushed_s * 1e3:8.2f} ms   "
          f"(pushdowns: {stats.store_pushdowns}, "
          f"hydrated nodes: {stats.store_hydrated_nodes}, "
          f"bytes avoided: {stats.store_bytes_avoided})")
    assert identical, "the pushdown must never change the answer"

    print()
    print("=== 3. the store counters in the Prometheus exposition ===")
    registry = MetricsRegistry()
    record_execution(registry, pushed.report, query="stored_portal")
    for line in registry.exposition().splitlines():
        if "yat_store" in line:
            print(line)


if __name__ == "__main__":
    main()
