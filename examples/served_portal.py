"""The cultural portal as a multi-tenant service under load.

One shared mediator (plan cache, compiled kernels, document indexes),
many concurrent sessions, and a server that says *no* gracefully:

1. a burst of mixed-priority queries from three tenants, all answered
   through the shared plan cache with per-request admission records;
2. a metered "free-tier" tenant hitting its token-bucket quota
   (``QuotaExceededError`` with the exact seconds until the next token);
3. a deliberate overload of a tiny-queue server — low-priority queries
   degrade, then shed; every rejection carries a ``retry_after`` hint;
4. a seeded closed-loop workload reporting p50/p99/QPS/shed-rate;
5. graceful drain: everything admitted finishes, nothing new enters.

Run:  python examples/served_portal.py [n_artifacts]
"""

import sys

from repro import (
    Mediator,
    MediatorServer,
    MetricsRegistry,
    O2Wrapper,
    OverloadedError,
    QuotaExceededError,
    ServerConfig,
    WaisWrapper,
)
from repro.datasets import CulturalDataset, Q1, Q2, VIEW1_YAT
from repro.server import run_closed_loop


def build_portal(n_artifacts: int) -> Mediator:
    database, store = CulturalDataset(n_artifacts=n_artifacts, seed=42).build()
    mediator = Mediator("portal", gate_information_passing=True,
                        plan_cache_size=128)
    mediator.connect(O2Wrapper("o2artifact", database))
    mediator.connect(WaisWrapper("xmlartwork", store))
    mediator.declare_containment("artworks", "artifacts")
    mediator.load_program(VIEW1_YAT)
    return mediator


def main() -> None:
    n_artifacts = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    mediator = build_portal(n_artifacts)
    registry = MetricsRegistry()

    print("=== 1. concurrent sessions through one shared plan cache ===")
    config = ServerConfig(workers=4, metrics=registry,
                          quotas={"free-tier": (2.0, 2.0)})
    with MediatorServer(mediator, config) as server:
        tickets = [
            server.submit(text, tenant=tenant, priority=priority)
            for text, tenant, priority in [
                (Q1, "museum", "high"),
                (Q2, "museum", "normal"),
                (Q1, "gallery", "normal"),
                (Q2, "gallery", "low"),
                (Q1, "free-tier", "low"),
            ]
        ]
        for ticket in tickets:
            result = ticket.result(timeout=30)
            print(f"  {result.admission!r} cached={result.cached}")

        print()
        print("=== 2. the free tier hits its quota (2 qps, burst 2) ===")
        admitted, rejected = 0, None
        for _ in range(4):
            try:
                server.submit(Q1, tenant="free-tier").result(30)
                admitted += 1
            except QuotaExceededError as exc:
                rejected = exc
        print(f"  admitted {admitted}, then: {rejected} "
              f"(retry in {rejected.retry_after:.2f}s)")

    print()
    print("=== 3. overload: a tiny queue degrades, then sheds ===")
    tiny = ServerConfig(workers=2, queue_limit=4, degrade_depth=1,
                        shed_depth=2)
    with MediatorServer(mediator, tiny) as server:
        outcomes = {"ok": 0, "degraded": 0, "shed": 0}
        tickets = []
        for i in range(40):
            try:
                tickets.append(server.submit(
                    Q2, priority="low" if i % 2 else "normal"
                ))
            except OverloadedError as exc:
                outcomes["shed"] += 1
                hint = exc.retry_after
        for ticket in tickets:
            result = ticket.result(timeout=30)
            outcomes["degraded" if result.admission.degraded_forced
                     else "ok"] += 1
        print(f"  {outcomes} (last retry_after hint: {hint * 1e3:.1f} ms)")

    print()
    print("=== 4. seeded closed-loop workload (8 clients) ===")
    with MediatorServer(mediator, ServerConfig(workers=4)) as server:
        run = run_closed_loop(server, clients=8, requests_per_client=10,
                              seed=7)
        print(f"  {run.completed}/{run.offered} answered, "
              f"qps={run.qps:.0f}, p50={run.p50 * 1e3:.1f} ms, "
              f"p99={run.p99 * 1e3:.1f} ms, mix={run.by_query}")

        print()
        print("=== 5. graceful drain ===")
        parting = server.submit(Q1)
        drained = server.drain(timeout=30)
        print(f"  drained={drained}, parting answer rows intact: "
              f"{parting.result(1).document() is not None}")
        try:
            server.submit(Q1)
        except OverloadedError as exc:
            print(f"  post-drain submit rejected: {exc}")

    print()
    print("=== server metrics (yat_server_*) ===")
    for line in registry.exposition().splitlines():
        if line.startswith("yat_server_requests_total"):
            print(f"  {line}")


if __name__ == "__main__":
    main()
