"""Result caching & materialized views: serve repeats, never serve stale.

The mediator plans once per query shape (the plan cache) — this example
shows the layer above it: the **result cache** keeps finished answers
keyed by (normalized query, constants, source versions, execution
knobs), and a **materialized view** keeps the view's integrated document
itself, so repeated portal queries stop touching the sources at all.
Both invalidate incrementally: a ``data_version()`` bump at any source
a cached answer read is reflected by the very next query.

1. warm result-cache hits on Q1/Q2 — microseconds instead of a
   federated execution, ``result: cached`` in EXPLAIN;
2. an O2 insert invalidates exactly the entries that read it; the next
   query recomputes and re-caches;
3. ``materialize_view("artworks")`` executes the integration plan once
   and Binds later queries against the kept document (watch
   ``source_calls`` drop to the mediator itself);
4. the ``yat_result_cache_*`` / ``yat_view_*`` counters.

Run:  python examples/cached_portal.py [n_artifacts]
"""

import sys
import time

from repro import (
    Mediator,
    MetricsRegistry,
    O2Wrapper,
    WaisWrapper,
)
from repro.observability.metrics import record_plan_cache
from repro.datasets import CulturalDataset, Q1, Q2, VIEW1_YAT


def build_portal(n_artifacts: int):
    database, store = CulturalDataset(n_artifacts=n_artifacts, seed=7).build()
    mediator = Mediator("portal", result_cache_bytes=32 << 20)
    mediator.connect(O2Wrapper("o2artifact", database))
    mediator.connect(WaisWrapper("xmlartwork", store))
    mediator.load_program(VIEW1_YAT)
    return mediator, database


def timed_query(mediator, text, **kwargs):
    start = time.perf_counter()
    result = mediator.query(text, **kwargs)
    elapsed = time.perf_counter() - start
    return result, elapsed


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    mediator, database = build_portal(n)

    print(f"== 1. result cache: cold vs warm (n={n}) ==")
    for name, text in (("Q1", Q1), ("Q2", Q2)):
        cold, cold_s = timed_query(mediator, text)
        warm, warm_s = timed_query(mediator, text)
        assert warm.result_cached and not cold.result_cached
        print(f"  {name}: cold {cold_s * 1e3:8.2f} ms   "
              f"warm {warm_s * 1e3:8.3f} ms   "
              f"({cold_s / max(warm_s, 1e-9):.0f}x, "
              f"{len(cold.report.tab)} rows)")
    print("  EXPLAIN now shows the hit:")
    for line in mediator.explain(Q1).render().splitlines():
        if "cached" in line:
            print(f"    {line}")

    print("\n== 2. incremental invalidation ==")
    database.insert(
        "artifact",
        {"title": "Fresh Canvas", "year": 1901, "creator": "N. Ewkid",
         "price": 12.5, "owners": []},
    )
    after, after_s = timed_query(mediator, Q2)
    print(f"  O2 insert bumped data_version(); next Q2 recomputed "
          f"in {after_s * 1e3:.2f} ms (cached={after.result_cached})")
    again, again_s = timed_query(mediator, Q2)
    print(f"  ...and is cached again: {again.result_cached} "
          f"({again_s * 1e3:.3f} ms)")

    print("\n== 3. materialized view ==")
    mediator.materialize_view("artworks")
    first, first_s = timed_query(mediator, Q1, use_result_cache=False)
    second, second_s = timed_query(mediator, Q1, use_result_cache=False)
    print(f"  first Q1 refreshes the view ({first_s * 1e3:.2f} ms), "
          f"source calls: {dict(first.report.stats.source_calls)}")
    print(f"  second Q1 Binds against the kept document "
          f"({second_s * 1e3:.2f} ms), "
          f"source calls: {dict(second.report.stats.source_calls)}")
    for line in mediator.explain(Q1).render().splitlines():
        if "view: materialized" in line:
            print(f"  {line}")

    print("\n== 4. the counters ==")
    registry = MetricsRegistry()
    record_plan_cache(registry, mediator)
    for line in registry.exposition().splitlines():
        if line.startswith(("yat_result_cache", "yat_view")):
            print(f"  {line}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
