"""Associative Bind access: document indexes at work in the portal.

The mediator builds a label/value index over materialized documents so
constant-restricted Binds *seek* instead of scanning every child
(paper, Section 5.2 — "using the index").  This example shows the whole
surface:

1. ``EXPLAIN`` prints the optimizer's chosen access path per Bind —
   ``bind: index-seek on (artist,'Berthe Morisot')`` vs ``bind: scan``;
2. the same query runs with indexes on and off
   (``ExecutionPolicy(use_document_indexes=False)``) and the answers
   are byte-identical — the index only prunes, never matches;
3. the execution report and the Prometheus exposition carry the seek
   counters (``yat_bind_index_*``, ``yat_document_index_*``).

Run:  python examples/indexed_portal.py [n_artifacts]
"""

import sys
import time

from repro import (
    ExecutionPolicy,
    Mediator,
    MetricsRegistry,
    O2Wrapper,
    WaisWrapper,
    record_execution,
)
from repro.datasets import CulturalDataset, VIEW1_YAT
from repro.model.xml_io import tree_to_xml
from repro.observability.metrics import record_plan_cache

#: A constant-restricted query: only one artist's works survive.  The
#: optimizer pushes the restriction when the source can take it; run
#: unoptimized, the mediator-side Bind keeps the constant and the
#: document index answers it associatively.
QUERY = """
MAKE doc [ * hit [ title: $t ] ]
MATCH artworks WITH doc . work [ artist . "Berthe Morisot", title . $t ]
"""


def build_portal(n_artifacts: int) -> Mediator:
    database, store = CulturalDataset(n_artifacts=n_artifacts, seed=42).build()
    mediator = Mediator("portal")
    mediator.connect(O2Wrapper("o2artifact", database))
    mediator.connect(WaisWrapper("xmlartwork", store))
    mediator.load_program(VIEW1_YAT)
    return mediator


def main() -> None:
    n_artifacts = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    mediator = build_portal(n_artifacts)

    print("=== 1. EXPLAIN: the access path the optimizer chose per Bind ===")
    print(mediator.explain(QUERY, optimize=False).render())

    print("=== 2. indexes on vs off: identical bytes, different work ===")
    scan_policy = ExecutionPolicy(use_document_indexes=False)

    start = time.perf_counter()
    scanned = mediator.query(QUERY, optimize=False, execution=scan_policy)
    scan_s = time.perf_counter() - start

    start = time.perf_counter()
    indexed = mediator.query(QUERY, optimize=False)
    indexed_s = time.perf_counter() - start

    identical = tree_to_xml(indexed.document()) == tree_to_xml(scanned.document())
    stats = indexed.report.stats
    print(f"rows: {len(indexed.report.tab)}   byte-identical: {identical}")
    print(f"scan run:    {scan_s * 1e3:8.2f} ms   "
          f"(bind index seeks: {scanned.report.stats.bind_index_seeks})")
    print(f"indexed run: {indexed_s * 1e3:8.2f} ms   "
          f"(bind index seeks: {stats.bind_index_seeks}, "
          f"hits: {stats.bind_index_hits}, "
          f"builds: {stats.bind_index_builds})")
    assert identical, "document indexes must never change the answer"

    print()
    print("=== 3. the seek counters in the Prometheus exposition ===")
    registry = MetricsRegistry()
    record_execution(registry, indexed.report, query="indexed_portal")
    record_plan_cache(registry, mediator)
    for line in registry.exposition().splitlines():
        if "bind_index" in line or "document_index" in line:
            print(line)


if __name__ == "__main__":
    main()
