"""Multi-rule integration: object fusion through Skolem functions.

Section 2: integration programs are "composed of a sequence of rules,
whose partial results are connected together through Skolem functions".
This example builds one catalog document from two rules — descriptive
fields from the XML repository, trading fields from the object database
— fused on the Skolem identifier ``entry($t)``.

Run:  python examples/fused_catalog.py
"""

from repro import Mediator, O2Wrapper, WaisWrapper
from repro.datasets import CulturalDataset

PROGRAM = """
catalog() :=
MAKE doc [ *&entry($t) := work [ title: $t, artist: $a, style: $s ] ]
MATCH artworks WITH works *work [ artist: $a, title: $t, style: $s ]

catalog() :=
MAKE doc [ *&entry($t) := work [ title: $t, price: $p, year: $y ] ]
MATCH artifacts WITH
    set *class: artifact: tuple [ title: $t, year: $y, price: $p ]
"""

QUERY = """
MAKE doc [ * row [ title: $t, style: $s, price: $p ] ]
MATCH catalog WITH doc . work [ title . $t, style . $s, price . $p ]
WHERE $p < 500000.0
"""


def main() -> None:
    database, store = CulturalDataset(n_artifacts=30, seed=13).build()
    mediator = Mediator("fusion")
    mediator.connect(O2Wrapper("o2artifact", database))
    mediator.connect(WaisWrapper("xmlartwork", store))
    views = mediator.load_program(PROGRAM)
    print(f"views: {views} (two rules fused into one)")

    report = mediator.execute(mediator.views.plan("catalog"))
    first = report.document().children[0]
    print("\none fused catalog entry (fields from both sources):")
    print(first.pretty())

    result = mediator.query(QUERY, optimize=False)
    print("\nbargains under 500k (style from Wais, price from O2):")
    for row in result.document().children[:6]:
        print(
            f"  {row.child('title').atom:22s} "
            f"{row.child('style').atom:18s} "
            f"{row.child('price').atom:12,.0f}"
        )


if __name__ == "__main__":
    main()
