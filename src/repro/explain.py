"""EXPLAIN / EXPLAIN ANALYZE from the command line.

Runs the paper's cultural-portal federation (the O2 object base plus the
Wais full-text store behind ``view1.yat``) and explains a query against
it::

    python -m repro.explain q2 --analyze
    python -m repro.explain q1 --analyze --parallelism 4 --chrome-trace q1.json
    python -m repro.explain my_query.yat --no-optimize
    echo 'MAKE $t MATCH artworks WITH ...' | python -m repro.explain - --analyze

``q1`` / ``q2`` name the paper's Figure 8 / Figure 9 queries; anything
else is a path to a YAT_L query file (``-`` reads stdin).  With
``--analyze`` the plan is executed and every node shows its actuals;
``--chrome-trace`` additionally writes the span trace for
``chrome://tracing`` / Perfetto, and ``--metrics`` writes (or prints,
with ``-``) the Prometheus exposition of the run.

``--store PATH`` additionally connects an out-of-core store-backed
source (``python -m repro.explain --store portal.db stored.yat``): the
Wais collection is shredded into a sqlite file at PATH (``:memory:``
works too) and served as document ``stored_artworks`` by a
:class:`~repro.wrappers.store_wrapper.StoreWrapper`, so constant-
restricted descents show up as ``bind: store-pushdown`` with their SQL
interval joins.  An existing store file is reused as-is (no re-shred).
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets import CulturalDataset, Q1, Q2, VIEW1_YAT
from repro.mediator.mediator import Mediator
from repro.core.algebra.scheduling import ExecutionPolicy
from repro.observability.metrics import (
    MetricsRegistry,
    record_execution,
    record_plan_cache,
)
from repro.wrappers.o2_wrapper import O2Wrapper
from repro.wrappers.wais_wrapper import WaisWrapper

NAMED_QUERIES = {"q1": Q1, "q2": Q2}


def build_mediator(
    n_artifacts: int,
    seed: int,
    plan_cache_size: int = 128,
    store_path: str = None,
    result_cache_bytes: int = 32 << 20,
    shards: int = 0,
) -> Mediator:
    """The paper's running federation, sized for demonstration.

    With *store_path* the same Wais collection is also shredded into a
    sqlite-backed :class:`~repro.sources.stored.StoredXmlSource` at that
    path and connected as source ``store`` serving document
    ``stored_artworks`` (reused untouched when the file already holds
    documents).

    With ``shards > 1`` the Wais collection connects as a *sharded*
    logical source instead: hash-partitioned on ``artist`` into that
    many shards (``xmlartwork#0 ..``), so plans over ``artworks`` show
    scatter-gather branches and shard pruning.
    """
    database, store = CulturalDataset(n_artifacts=n_artifacts, seed=seed).build()
    mediator = Mediator(
        plan_cache_size=plan_cache_size,
        result_cache_bytes=result_cache_bytes,
    )
    mediator.connect(O2Wrapper("o2artifact", database))
    if shards > 1:
        from repro.sources.sharded import (
            HashPartition,
            build_sharded_wais,
            shard_wais_store,
        )

        partition = HashPartition("artist", shards)
        stores = shard_wais_store(store, partition)
        mediator.connect_sharded(
            "xmlartwork", build_sharded_wais("xmlartwork", stores), partition
        )
    else:
        mediator.connect(WaisWrapper("xmlartwork", store))
    if store_path is not None:
        from repro.sources.stored import StoredXmlSource
        from repro.wrappers.store_wrapper import StoreWrapper

        stored = StoredXmlSource(store_path)
        if not stored.document_names():
            stored.add_tree("stored_artworks", store.collection_tree())
        mediator.connect(StoreWrapper("store", stored))
    mediator.declare_containment("artworks", "artifacts")
    mediator.load_program(VIEW1_YAT)
    return mediator


def load_query(spec: str) -> str:
    if spec.lower() in NAMED_QUERIES:
        return NAMED_QUERIES[spec.lower()]
    if spec == "-":
        return sys.stdin.read()
    with open(spec, "r", encoding="utf-8") as handle:
        return handle.read()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explain",
        description="Explain a YAT_L query over the paper's demo federation.",
    )
    parser.add_argument(
        "query", nargs="?", default="q2",
        help="q1, q2, a .yat file path, or - for stdin (default: q2)",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="execute the plan and annotate every node with its actuals",
    )
    parser.add_argument(
        "--n", type=int, default=100, metavar="N",
        help="synthetic dataset size in artifacts (default: 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="dataset seed (default: 1)"
    )
    parser.add_argument(
        "--no-optimize", action="store_true",
        help="explain the naive plan instead of the optimized one",
    )
    parser.add_argument(
        "--rounds", default="1,2,3", metavar="R[,R...]",
        help="optimizer rounds to apply (default: 1,2,3)",
    )
    parser.add_argument(
        "--parallelism", type=int, default=1, metavar="K",
        help="scheduler parallelism for --analyze (default: 1, serial)",
    )
    parser.add_argument(
        "--chrome-trace", metavar="PATH",
        help="with --analyze: write the span trace as Chrome-trace JSON",
    )
    parser.add_argument(
        "--metrics", metavar="PATH",
        help="with --analyze: write the Prometheus exposition (- for stdout)",
    )
    parser.add_argument(
        "--store", metavar="PATH",
        help="also connect a sqlite-shredded store source (document "
        "stored_artworks) backed by the file at PATH (:memory: works); "
        "an existing store file is reused without re-shredding",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="connect the Wais collection as a sharded logical source: "
        "N hash shards on artist; Bind chains over artworks show "
        "scatter branches and the per-Bind pruning decision",
    )
    parser.add_argument(
        "--no-plan-cache", action="store_true",
        help="disable the mediator's plan cache (every run plans from scratch)",
    )
    parser.add_argument(
        "--no-result-cache", action="store_true",
        help="disable the mediator's result cache (every --analyze run "
        "re-executes; without this flag a repeated --analyze shows "
        "'result: cached' and skips execution)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="K",
        help="explain the query K times against one mediator and print the "
        "last explanation; from the second run on a 'plan: cached' line "
        "marks plans served from the plan cache (default: 1)",
    )
    args = parser.parse_args(argv)

    try:
        text = load_query(args.query)
    except OSError as error:
        parser.error(f"cannot read query {args.query!r}: {error}")
    rounds = tuple(int(r) for r in args.rounds.split(",") if r.strip())

    mediator = build_mediator(
        args.n, args.seed,
        plan_cache_size=0 if args.no_plan_cache else 128,
        store_path=args.store,
        result_cache_bytes=0 if args.no_result_cache else 32 << 20,
        shards=args.shards,
    )
    execution = (
        ExecutionPolicy.parallel(args.parallelism)
        if args.parallelism > 1
        else None
    )
    for _ in range(max(1, args.repeat)):
        explanation = mediator.explain(
            text,
            analyze=args.analyze,
            optimize=not args.no_optimize,
            rounds=rounds,
            execution=execution,
        )
    print(explanation.render())

    if args.analyze and args.chrome_trace:
        explanation.tracer.write_chrome_trace(args.chrome_trace)
        print(f"\nchrome trace written to {args.chrome_trace}", file=sys.stderr)
    if args.analyze and args.metrics:
        registry = MetricsRegistry()
        record_execution(registry, explanation.report, query=args.query)
        record_plan_cache(registry, mediator)
        if args.metrics == "-":
            print()
            print(registry.exposition(), end="")
        else:
            registry.write(args.metrics)
            print(f"metrics exposition written to {args.metrics}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
