"""Plan execution with measurement.

Thin wrapper around the algebra evaluator that times the run and bundles
the result Tab with the :class:`~repro.core.algebra.stats.ExecutionStats`
collected along the way — the unit benchmarks and examples report.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.core.algebra.evaluator import Environment, SourceAdapter, evaluate
from repro.core.algebra.operators import Plan
from repro.core.algebra.stats import ExecutionStats
from repro.core.algebra.tab import Tab
from repro.model.trees import DataNode


class ExecutionReport:
    """Outcome of one plan execution."""

    __slots__ = ("plan", "tab", "stats", "elapsed")

    def __init__(
        self, plan: Plan, tab: Tab, stats: ExecutionStats, elapsed: float
    ) -> None:
        self.plan = plan
        self.tab = tab
        self.stats = stats
        self.elapsed = elapsed

    def document(self) -> DataNode:
        """The constructed document, for Tree-rooted plans."""
        if len(self.tab.columns) != 1 or len(self.tab) != 1:
            raise ValueError(
                "the plan did not produce a single document; inspect .tab instead"
            )
        cell = self.tab.rows[0].cells[0]
        if not isinstance(cell, DataNode):
            raise ValueError("the plan's single cell is not a document tree")
        return cell

    def summary(self) -> str:
        lines = [
            f"rows: {len(self.tab)}  elapsed: {self.elapsed * 1000:.2f} ms",
            self.stats.summary(),
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExecutionReport(rows={len(self.tab)}, "
            f"bytes={self.stats.total_bytes_transferred}, "
            f"elapsed={self.elapsed:.4f}s)"
        )


def run_plan(
    plan: Plan,
    adapters: Dict[str, SourceAdapter],
    functions: Optional[Dict[str, Callable]] = None,
) -> ExecutionReport:
    """Evaluate *plan* with fresh statistics and timing."""
    stats = ExecutionStats()
    env = Environment(adapters, functions=functions, stats=stats)
    started = time.perf_counter()
    tab = evaluate(plan, env)
    elapsed = time.perf_counter() - started
    return ExecutionReport(plan, tab, stats, elapsed)
