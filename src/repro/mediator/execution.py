"""Plan execution with measurement and resilience.

Thin wrapper around the algebra evaluator that times the run and bundles
the result Tab with the :class:`~repro.core.algebra.stats.ExecutionStats`
collected along the way — the unit benchmarks and examples report.

Execution runs under a :class:`~repro.mediator.resilience.ResiliencePolicy`;
the default ``ResiliencePolicy.direct()`` is the historical fail-fast
behavior with zero wrapping, so every existing call site is unchanged.
A retrying policy guards each source call with retry/backoff, circuit
breakers and deadlines, and (when ``allow_partial_results`` is set) lets
the evaluator degrade gracefully — the report then carries
``degraded=True`` plus per-source :class:`SourceOutcome` records.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ExecutionReportError
from repro.core.algebra.evaluator import Environment, SourceAdapter, evaluate
from repro.core.algebra.operators import Plan
from repro.core.algebra.scheduling import ExecutionPolicy
from repro.core.algebra.stats import ExecutionStats
from repro.core.algebra.tab import Tab
from repro.mediator.resilience import ResiliencePolicy, SourceOutcome
from repro.model.trees import DataNode
from repro.observability.context import RequestContext, activate_context


class ExecutionReport:
    """Outcome of one plan execution."""

    __slots__ = ("plan", "tab", "stats", "elapsed", "outcomes", "trace")

    def __init__(
        self,
        plan: Plan,
        tab: Tab,
        stats: ExecutionStats,
        elapsed: float,
        outcomes: Tuple[SourceOutcome, ...] = (),
        trace=None,
    ) -> None:
        self.plan = plan
        self.tab = tab
        self.stats = stats
        self.elapsed = elapsed
        #: Per-source resilience records (empty under the direct policy).
        self.outcomes = outcomes
        #: The :class:`~repro.observability.tracer.Tracer` that observed
        #: this execution, or ``None`` when tracing was off.
        self.trace = trace

    @property
    def degraded(self) -> bool:
        """True when part of the answer was dropped to keep the query alive."""
        return self.stats.degraded

    def document(self) -> DataNode:
        """The constructed document, for Tree-rooted plans."""
        if len(self.tab.columns) != 1 or len(self.tab) != 1:
            raise ExecutionReportError(
                "the plan did not produce a single document; inspect .tab instead"
            )
        cell = self.tab.rows[0].cells[0]
        if not isinstance(cell, DataNode):
            raise ExecutionReportError(
                "the plan's single cell is not a document tree"
            )
        return cell

    def summary(self) -> str:
        lines = [
            f"rows: {len(self.tab)}  elapsed: {self.elapsed * 1000:.2f} ms",
            self.stats.summary(),
        ]
        if self.outcomes:
            lines.append(
                "sources: " + "; ".join(repr(o) for o in self.outcomes)
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        degraded = ", degraded" if self.degraded else ""
        return (
            f"ExecutionReport(rows={len(self.tab)}, "
            f"bytes={self.stats.total_bytes_transferred}, "
            f"elapsed={self.elapsed:.4f}s{degraded})"
        )


def run_plan(
    plan: Plan,
    adapters: Dict[str, SourceAdapter],
    functions: Optional[Dict[str, Callable]] = None,
    policy: Optional[ResiliencePolicy] = None,
    execution: Optional[ExecutionPolicy] = None,
    tracer=None,
    context: Optional[RequestContext] = None,
) -> ExecutionReport:
    """Evaluate *plan* with fresh statistics and timing.

    *policy* defaults to :meth:`ResiliencePolicy.direct` — no retries, no
    breakers, fail-fast — so all existing call sites behave exactly as
    before.  Pass a retrying policy to guard the source calls.

    *execution* configures the federated scheduler (parallel branch
    dispatch, DJoin batching, source-call caching).  The default policy
    keeps ``parallelism=1``: strictly serial evaluation order, with
    caching and batching on — which never change the produced Tab.  Pass
    :meth:`ExecutionPolicy.serial` for the pre-scheduler seed behavior
    or :meth:`ExecutionPolicy.parallel` for concurrent dispatch.

    *tracer* (a :class:`~repro.observability.tracer.Tracer`) records one
    hierarchical span per operator evaluation, guarded source call and
    wrapper-side native run; the tracer is attached to the report as
    ``report.trace``.  ``None`` — the default — keeps the untraced fast
    path and changes nothing.

    *context* (a :class:`~repro.observability.context.RequestContext`)
    identifies the request this execution serves; the serving layer
    passes one per admitted query.  Its tracer, kernel mode and call
    cache are what cross the wrapper boundary, and its ``deadline``
    (absolute, on the resilience policy's clock) is folded into the
    per-query deadline machinery.  ``None`` gets a fresh anonymous
    context, so two concurrent ``run_plan`` calls can never observe each
    other's state.
    """
    if policy is None:
        policy = ResiliencePolicy.direct()
    if context is not None and tracer is None:
        tracer = context.tracer
    deadline = context.deadline if context is not None else None
    if deadline is not None and policy.is_direct:
        # The direct policy has no runtime to enforce a deadline; a
        # request that carries one gets the minimal non-direct policy
        # (no retries, no partial results — still fail-fast).
        policy = ResiliencePolicy()
    stats = ExecutionStats()
    runtime = policy.start(stats, tracer=tracer, deadline=deadline)
    sources = runtime.wrap(adapters) if runtime is not None else adapters
    env = Environment(sources, functions=functions, stats=stats,
                      resilience=runtime, policy=execution, tracer=tracer,
                      context=context)
    started = time.perf_counter()
    try:
        # The finalized request context crosses the wrapper boundary
        # thread-locally (the adapter protocol keeps its signature);
        # the scheduler re-activates it on pool threads.
        with activate_context(env.context):
            if tracer is None:
                tab = evaluate(plan, env)
            else:
                with tracer.start("execute", kind="execution") as root:
                    tab = evaluate(plan, env)
                    root.annotate(rows=len(tab))
    finally:
        env.shutdown()
    elapsed = time.perf_counter() - started
    outcomes = runtime.outcomes() if runtime is not None else ()
    return ExecutionReport(
        plan, tab, stats, elapsed, outcomes=outcomes, trace=tracer
    )
