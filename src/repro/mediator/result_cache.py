"""The mediator's result cache: answers served without re-execution.

The plan cache (:mod:`repro.mediator.plan_cache`) makes *compilation*
free for repeated queries; on a portal workload the dominant cost left
is re-*executing* the same federated plan against sources that did not
change.  The :class:`ResultCache` closes that gap:

* entries are keyed by the query's **normalized shape** plus its
  **constant vector** (:func:`repro.yatl.normalize.normalize_query`),
  the planning knobs that select the plan, and the execution-policy
  knobs that could conceivably change the produced bytes — two queries
  share an entry only when a fresh execution would be byte-identical;
* every entry carries the **version vector** — ``(source,
  data_version())`` for every source the plan touches, captured *before*
  the execution that produced it.  A lookup re-reads the live versions
  and serves only on an exact match, so a source update invalidates
  precisely the entries that read that source, and an update racing an
  execution can only make the entry *look* stale (the pre-execution
  capture tags it with the old version), never let a stale answer serve;
* the cache is LRU-bounded by **byte size** (the serialized size of the
  stored Tab), not entry count — one huge answer cannot silently pin a
  thousand small ones;
* concurrent misses on one key are **single-flight**: the first caller
  executes, the rest wait on an event and re-check, so a thundering
  herd on a cold hot-query costs one execution, not N.

Degraded (partial) answers are never stored — a later hit could not
tell them from the full answer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.core.algebra.tab import Tab, tab_serialized_size

__all__ = ["CachedResult", "ResultCache"]

#: Version vector: ``((source, data_version), ...)`` sorted by source.
VersionVector = Tuple[Tuple[str, int], ...]


class CachedResult:
    """One cached answer: the Tab, tagged with what it was computed from."""

    __slots__ = ("tab", "versions", "size")

    def __init__(self, tab: Tab, versions: VersionVector, size: int) -> None:
        self.tab = tab
        self.versions = versions
        self.size = size

    def __repr__(self) -> str:
        return f"CachedResult({len(self.tab)} rows, {self.size}B, {self.versions!r})"


class ResultCache:
    """Byte-bounded LRU of query answers with version-vector validation."""

    __slots__ = (
        "max_bytes",
        "hits",
        "misses",
        "invalidations",
        "evictions",
        "flight_waits",
        "_bytes",
        "_entries",
        "_inflight",
        "_lock",
    )

    def __init__(self, max_bytes: int = 32 << 20) -> None:
        if max_bytes < 1:
            raise ValueError("result cache bound must be at least 1 byte")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        #: Entries dropped because a source's ``data_version()`` moved.
        self.invalidations = 0
        #: Entries dropped to stay under the byte bound.
        self.evictions = 0
        #: Times a concurrent miss waited for another caller's execution.
        self.flight_waits = 0
        self._bytes = 0
        self._entries: "OrderedDict[tuple, CachedResult]" = OrderedDict()
        #: Single-flight: key -> Event set when the leader finishes.
        self._inflight: Dict[tuple, threading.Event] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes(self) -> int:
        return self._bytes

    # -- lookup / store -----------------------------------------------------------

    def lookup(self, key: tuple, versions: VersionVector) -> Optional[Tab]:
        """The cached Tab for *key*, or ``None``.

        *versions* is the **live** version vector of the sources the
        plan touches; an entry tagged with any other vector is stale —
        it is dropped (counted as an invalidation) and the lookup
        misses.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.versions != versions:
                del self._entries[key]
                self._bytes -= entry.size
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.tab

    def peek(self, key: tuple, versions: VersionVector) -> bool:
        """Would :meth:`lookup` hit right now?  Mutates nothing (EXPLAIN)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.versions == versions

    def store(self, key: tuple, tab: Tab, versions: VersionVector) -> None:
        """Cache *tab* for *key* as computed at *versions* (LRU-evicting)."""
        size = tab_serialized_size(tab)
        if size > self.max_bytes:
            return  # an answer larger than the whole cache is not cacheable
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.size
            self._entries[key] = CachedResult(tab, versions, size)
            self._bytes += size
            while self._bytes > self.max_bytes and self._entries:
                _evicted_key, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.size
                self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (catalog epoch moved; keys would be stale)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self._bytes = 0

    # -- single-flight ------------------------------------------------------------

    def begin(self, key: tuple) -> Tuple[bool, threading.Event]:
        """Claim the execution of *key*.

        Returns ``(True, event)`` when the caller is the leader and must
        execute (then :meth:`finish`), ``(False, event)`` when another
        caller is already executing — wait on the event, then re-lookup.
        """
        with self._lock:
            event = self._inflight.get(key)
            if event is None:
                event = self._inflight[key] = threading.Event()
                return True, event
            self.flight_waits += 1
            return False, event

    def finish(self, key: tuple) -> None:
        """The leader is done (stored or failed): release the waiters."""
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    # -- reporting ----------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "capacity": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "flight_waits": self.flight_waits,
            }

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self._entries)}, bytes={self._bytes}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations})"
        )
