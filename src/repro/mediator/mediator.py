"""The YAT mediator: connect, import, load, query (paper, Figure 2).

:class:`Mediator` ties the whole system together:

* :meth:`connect` imports a wrapper's structure and capabilities through
  the XML wire format;
* :meth:`load_program` registers a YAT_L integration program's rules as
  views;
* :meth:`query` parses a user query, composes it with views, optimizes
  it through the three rewriting rounds, evaluates it, and returns a
  :class:`QueryResult` carrying the answer, both plans, the rewrite
  trace and the execution statistics.

The mediator registers two built-in functions sources never need to
declare: ``ref_is`` (reference identity, used by extent-join rewriting)
and ``contains`` (word containment, the *fallback* when a contains
predicate could not be pushed — naive plans still give correct answers).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import UnknownDocumentError
from repro.capabilities.interface import SourceInterface
from repro.core.algebra.operators import Plan
from repro.core.algebra.scheduling import ExecutionPolicy
from repro.core.algebra.tab import Tab
from repro.core.optimizer.bind_split import ref_is
from repro.core.optimizer.planner import Optimizer
from repro.core.optimizer.rules import OptimizerContext, RewriteTrace
from repro.mediator.catalog import Catalog
from repro.mediator.execution import ExecutionReport, run_plan
from repro.mediator.resilience import ResiliencePolicy
from repro.mediator.views import VIEW_SOURCE, ViewRegistry
from repro.model.trees import DataNode
from repro.sources.wais.index import document_contains
from repro.wrappers.base import Wrapper
from repro.yatl.ast import YatlQuery
from repro.yatl.parser import parse_program, parse_query
from repro.yatl.translator import translate_query, translate_rule


def _mediator_contains(document: object, text: object) -> bool:
    if not isinstance(document, DataNode) or not isinstance(text, str):
        return False
    return document_contains(document, text)


def _field_contains(field: str):
    """Mediator fallback for a field-scoped contains predicate."""
    from repro.sources.wais.index import tokenize

    def implementation(document: object, text: object) -> bool:
        if not isinstance(document, DataNode) or not isinstance(text, str):
            return False
        words = set(tokenize(text))
        if not words:
            return True
        present: set = set()
        for node in document.descendants():
            if node.label == field:
                present.update(tokenize(node.text()))
        return words <= present

    return implementation


class QueryResult:
    """Everything :meth:`Mediator.query` learned about one query."""

    __slots__ = ("naive_plan", "plan", "trace", "report")

    def __init__(
        self,
        naive_plan: Plan,
        plan: Plan,
        trace: RewriteTrace,
        report: ExecutionReport,
    ) -> None:
        self.naive_plan = naive_plan
        self.plan = plan
        self.trace = trace
        self.report = report

    @property
    def tab(self) -> Tab:
        return self.report.tab

    @property
    def degraded(self) -> bool:
        """True when the answer is partial (a source branch was dropped)."""
        return self.report.degraded

    @property
    def outcomes(self):
        """Per-source resilience records from the execution."""
        return self.report.outcomes

    def document(self) -> DataNode:
        return self.report.document()

    def __repr__(self) -> str:
        degraded = ", degraded" if self.degraded else ""
        return (
            f"QueryResult({self.report!r}, {len(self.trace)} rewrites{degraded})"
        )


class Mediator:
    """One mediator instance (``yat-mediator`` in Figure 2)."""

    def __init__(
        self,
        name: str = "yat",
        gate_information_passing: bool = False,
        policy: Optional[ResiliencePolicy] = None,
        execution: Optional[ExecutionPolicy] = None,
    ) -> None:
        self.name = name
        self.catalog = Catalog()
        self.views = ViewRegistry()
        self._containments: set = set()
        #: Extension beyond the paper: cost-gate the bind-join conversion
        #: (see OptimizerContext.gate_information_passing).
        self.gate_information_passing = gate_information_passing
        #: Resilience policy used by :meth:`execute` / :meth:`query` unless
        #: overridden per call; ``None`` means fail-fast (direct).
        self.policy = policy
        #: Federated scheduler policy (parallelism, DJoin batching,
        #: source-call caching); ``None`` means the default
        #: :class:`ExecutionPolicy` — serial order, cache and batching on.
        self.execution = execution
        self.functions = {
            "ref_is": ref_is,
            "contains": _mediator_contains,
        }

    # -- setup (the Figure 2 session) ------------------------------------------

    def connect(self, wrapper: Wrapper) -> SourceInterface:
        """Connect a wrapper and import its capabilities."""
        interface = self.catalog.connect(wrapper)
        # Field-scoped contains predicates get mediator fallbacks, so an
        # unpushed plan still evaluates them correctly.
        for name, declaration in interface.operations.items():
            if (
                declaration.kind == "external"
                and name.startswith("contains_")
                and name not in self.functions
            ):
                self.functions[name] = _field_contains(
                    name.removeprefix("contains_")
                )
        return interface

    def load_program(self, text: str) -> Tuple[str, ...]:
        """Parse a YAT_L program and register each rule as a view.

        Inside a rule's own body, its name refers to the *source* document
        (the paper's ``artworks()`` rule MATCHes the Wais ``artworks``
        document); everywhere else the view shadows the document.
        """
        program = parse_program(text)
        for rule in program.rules:
            plan = translate_rule(
                rule,
                lambda document, _defining=rule.name: self._resolve_document(
                    document, defining=_defining
                ),
            )
            self.views.define(rule.name, plan)
        names: list = []
        for rule in program.rules:
            if rule.name not in names:
                names.append(rule.name)
        return tuple(names)

    def declare_containment(self, subset_document: str, superset_document: str) -> None:
        """Administrator metadata for join-branch elimination (Figure 8)."""
        self._containments.add((subset_document, superset_document))

    # -- planning ------------------------------------------------------------------

    def _resolve_document(self, document: str, defining: Optional[str] = None) -> str:
        # Views shadow source documents, except inside their own definition
        # (a rule may be named after the document it integrates, as the
        # paper's artworks() rule is).
        if document in self.views and document != defining:
            return VIEW_SOURCE
        source = self.catalog.source_of_document(document)
        if source is not None:
            return source
        raise UnknownDocumentError(
            f"no connected source or view exports {document!r}; known documents: "
            f"{sorted(self.catalog.document_names() + self.views.names())}"
        )

    def cost_hints(self):
        """Size/cardinality hints collected from the connected wrappers."""
        from repro.core.optimizer.cost import CostHints
        from repro.wrappers.base import Wrapper

        sizes = {}
        cardinalities = {}
        for adapter in self.catalog.adapters().values():
            if isinstance(adapter, Wrapper):
                for document, (size, cardinality) in adapter.document_stats().items():
                    sizes[document] = float(size)
                    cardinalities[document] = float(max(1, cardinality))
        return CostHints(document_sizes=sizes,
                         document_cardinalities=cardinalities)

    def optimizer_context(self) -> OptimizerContext:
        return OptimizerContext(
            interfaces=self.catalog.interfaces(),
            containments=set(self._containments),
            cost_hints=self.cost_hints() if self.gate_information_passing else None,
            gate_information_passing=self.gate_information_passing,
        )

    def plan_query(
        self,
        query: YatlQuery,
        optimize: bool = True,
        rounds: Sequence[int] = (1, 2, 3),
    ) -> Tuple[Plan, Plan, RewriteTrace]:
        """(naive plan, optimized plan, trace) for a parsed query."""
        translated = translate_query(query, self._resolve_document)
        naive = self.views.compose(translated)
        trace = RewriteTrace()
        optimized = naive
        if optimize:
            context = self.optimizer_context()
            if context.cost_hints is not None:
                context.cost_hints.text_selectivities.update(
                    self._probe_text_selectivities(naive)
                )
            optimized, trace = Optimizer(context).optimize(
                naive, rounds=rounds, trace=trace
            )
        return naive, optimized, trace

    def _probe_text_selectivities(self, plan: Plan) -> dict:
        """Ask sources for match fractions of the query's string constants.

        Used by the cost-gated optimizer: an inverted index answers "how
        many documents contain this term" without transferring anything,
        which is exactly the statistic the bind-join decision needs.
        """
        from repro.core.algebra.expressions import Const, Expr
        from repro.wrappers.base import Wrapper

        constants = set()
        for node in plan.walk():
            predicate = getattr(node, "predicate", None)
            if isinstance(predicate, Expr):
                for sub in predicate.walk():
                    if isinstance(sub, Const) and isinstance(sub.value, str):
                        constants.add(sub.value)
        estimates: dict = {}
        for adapter in self.catalog.adapters().values():
            if not isinstance(adapter, Wrapper):
                continue
            for constant in constants:
                estimate = adapter.estimate_text_selectivity(constant)
                if estimate is not None:
                    # Pessimistic across sources: keep the largest fraction.
                    estimates[constant] = max(
                        estimates.get(constant, 0.0), estimate
                    )
        return estimates

    # -- querying --------------------------------------------------------------------

    def query(
        self,
        text: str,
        optimize: bool = True,
        rounds: Sequence[int] = (1, 2, 3),
        policy: Optional[ResiliencePolicy] = None,
        execution: Optional[ExecutionPolicy] = None,
        tracer=None,
    ) -> QueryResult:
        """Parse, plan, optimize and evaluate a YAT_L query."""
        parsed = parse_query(text)
        naive, optimized, trace = self.plan_query(
            parsed, optimize=optimize, rounds=rounds
        )
        report = self.execute(
            optimized, policy=policy, execution=execution, tracer=tracer
        )
        return QueryResult(naive, optimized, trace, report)

    def explain(
        self,
        text: str,
        analyze: bool = False,
        optimize: bool = True,
        rounds: Sequence[int] = (1, 2, 3),
        policy: Optional[ResiliencePolicy] = None,
        execution: Optional[ExecutionPolicy] = None,
        tracer=None,
    ):
        """EXPLAIN (plan only) or EXPLAIN ANALYZE (plan + actuals) *text*.

        Plans the query exactly as :meth:`query` would and returns an
        :class:`~repro.observability.explain.Explanation` whose
        ``render()`` / ``str()`` shows the optimized plan annotated with
        the pushdown decisions (which fragments run natively, and the
        native OQL / SQL / Wais text).  With ``analyze=True`` the plan is
        also executed under a tracer (a fresh one unless *tracer* is
        given) and every node is annotated with its actuals — number of
        evaluations, rows produced, inclusive wall time, source calls,
        bytes and cache hits.
        """
        from repro.observability.explain import Explanation
        from repro.observability.tracer import Tracer

        parsed = parse_query(text)
        naive, optimized, trace = self.plan_query(
            parsed, optimize=optimize, rounds=rounds
        )
        report = None
        if analyze:
            if tracer is None:
                tracer = Tracer()
            report = self.execute(
                optimized, policy=policy, execution=execution, tracer=tracer
            )
        elif tracer is not None:
            tracer = None  # a plan-only EXPLAIN never executes anything
        return Explanation(
            text, naive, optimized, trace, report=report, tracer=tracer
        )

    def execute(
        self,
        plan: Plan,
        policy: Optional[ResiliencePolicy] = None,
        execution: Optional[ExecutionPolicy] = None,
        tracer=None,
    ) -> ExecutionReport:
        """Evaluate an already-planned query with fresh statistics.

        *policy* (or the mediator-wide default given at construction)
        guards every source call; absent both, execution is fail-fast.
        *execution* (or the mediator-wide default) configures the
        federated scheduler — see :func:`run_plan`.  *tracer* records
        hierarchical spans of the execution (see
        :mod:`repro.observability`).
        """
        return run_plan(
            plan,
            self.catalog.adapters(),
            functions=self.functions,
            policy=policy if policy is not None else self.policy,
            execution=execution if execution is not None else self.execution,
            tracer=tracer,
        )
