"""The YAT mediator: connect, import, load, query (paper, Figure 2).

:class:`Mediator` ties the whole system together:

* :meth:`connect` imports a wrapper's structure and capabilities through
  the XML wire format;
* :meth:`load_program` registers a YAT_L integration program's rules as
  views;
* :meth:`query` parses a user query, composes it with views, optimizes
  it through the three rewriting rounds, evaluates it, and returns a
  :class:`QueryResult` carrying the answer, both plans, the rewrite
  trace and the execution statistics.

The mediator registers two built-in functions sources never need to
declare: ``ref_is`` (reference identity, used by extent-join rewriting)
and ``contains`` (word containment, the *fallback* when a contains
predicate could not be pushed — naive plans still give correct answers).
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Tuple

from repro.errors import UnknownDocumentError, ViewError
from repro.capabilities.interface import SourceInterface
from repro.core.algebra.operators import Plan
from repro.core.algebra.scheduling import ExecutionPolicy
from repro.core.algebra.stats import ExecutionStats
from repro.core.algebra.tab import Tab
from repro.core.optimizer.bind_split import ref_is
from repro.core.optimizer.planner import Optimizer
from repro.core.optimizer.rules import OptimizerContext, RewriteTrace
from repro.core.optimizer.cost import ObservedStatistics
from repro.mediator.catalog import Catalog
from repro.mediator.execution import ExecutionReport, run_plan
from repro.mediator.plan_cache import CachedPlan, PlanCache, rebind_plan
from repro.mediator.resilience import ResiliencePolicy
from repro.mediator.result_cache import ResultCache
from repro.mediator.views import (
    VIEW_SOURCE,
    MaterializedViewSource,
    ViewRegistry,
)
from repro.model.indexes import invalidate_document_indexes
from repro.model.trees import DataNode
from repro.sources.wais.index import document_contains
from repro.wrappers.base import Wrapper
from repro.yatl.ast import YatlQuery
from repro.yatl.normalize import NormalizedQuery, normalize_query
from repro.yatl.parser import parse_program, parse_query
from repro.yatl.translator import translate_query, translate_rule

#: Execution-policy knobs whose values join the result-cache key.  All of
#: them are answer-preserving by the soundness invariants, but keying on
#: them keeps the cache conservative: a knob change can never serve an
#: answer computed under different execution semantics.  Pure scheduling
#: knobs (``parallelism``, ``cache_source_calls``) are deliberately
#: excluded — they cannot change a byte.
_DEFAULT_EXECUTION = ExecutionPolicy()

#: Per-thread set of materialized views currently refreshing: a view
#: whose refresh transitively reads itself fails fast instead of
#: recursing (or deadlocking on its own single-flight lock).
_REFRESHING = threading.local()


def _adapter_version(adapter) -> int:
    """A source's ``data_version()``, 0 for version-less adapters."""
    version = getattr(adapter, "data_version", None)
    if callable(version):
        return version()
    return 0


def _constant_pruned(plan: Plan) -> bool:
    """Does *plan* contain a Scatter whose shard set was pruned on a
    constant?  Such plans are bound to their constants — rebinding a
    cached one to new values would keep the stale shard selection."""
    from repro.core.algebra.operators import ScatterOp

    return any(
        isinstance(node, ScatterOp) and len(node.branches) < node.total
        for node in plan.walk()
    )


def _mediator_contains(document: object, text: object) -> bool:
    if not isinstance(document, DataNode) or not isinstance(text, str):
        return False
    return document_contains(document, text)


def _field_contains(field: str):
    """Mediator fallback for a field-scoped contains predicate."""
    from repro.sources.wais.index import tokenize

    def implementation(document: object, text: object) -> bool:
        if not isinstance(document, DataNode) or not isinstance(text, str):
            return False
        words = set(tokenize(text))
        if not words:
            return True
        present: set = set()
        for node in document.descendants():
            if node.label == field:
                present.update(tokenize(node.text()))
        return words <= present

    return implementation


class QueryResult:
    """Everything :meth:`Mediator.query` learned about one query."""

    __slots__ = (
        "naive_plan", "plan", "trace", "report", "cached", "result_cached",
        "admission",
    )

    def __init__(
        self,
        naive_plan: Plan,
        plan: Plan,
        trace: RewriteTrace,
        report: ExecutionReport,
        cached: bool = False,
        result_cached: bool = False,
    ) -> None:
        self.naive_plan = naive_plan
        self.plan = plan
        self.trace = trace
        self.report = report
        #: True when the plan came from the plan cache (possibly after
        #: constant rebinding) instead of a fresh planning pass.
        self.cached = cached
        #: True when the *answer* came from the result cache — nothing
        #: was executed and the report carries empty statistics.
        self.result_cached = result_cached
        #: :class:`~repro.server.AdmissionOutcome` when this result came
        #: through a :class:`~repro.server.MediatorServer` (queueing time,
        #: forced degradation, deadline); ``None`` for direct calls —
        #: the serving-layer analogue of ``outcomes``.
        self.admission = None

    @property
    def tab(self) -> Tab:
        return self.report.tab

    @property
    def degraded(self) -> bool:
        """True when the answer is partial (a source branch was dropped)."""
        return self.report.degraded

    @property
    def outcomes(self):
        """Per-source resilience records from the execution."""
        return self.report.outcomes

    def document(self) -> DataNode:
        return self.report.document()

    def __repr__(self) -> str:
        degraded = ", degraded" if self.degraded else ""
        return (
            f"QueryResult({self.report!r}, {len(self.trace)} rewrites{degraded})"
        )


class Mediator:
    """One mediator instance (``yat-mediator`` in Figure 2)."""

    def __init__(
        self,
        name: str = "yat",
        gate_information_passing: bool = False,
        policy: Optional[ResiliencePolicy] = None,
        execution: Optional[ExecutionPolicy] = None,
        plan_cache_size: int = 128,
        result_cache_bytes: int = 0,
    ) -> None:
        self.name = name
        self.catalog = Catalog()
        self.views = ViewRegistry()
        self._containments: set = set()
        #: Compiled-plan cache keyed by the query's *normalized* form
        #: (constants lifted into parameters), or ``None`` when disabled
        #: with ``plan_cache_size=0`` — every query then plans from
        #: scratch, exactly the seed behavior.
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(capacity=plan_cache_size) if plan_cache_size > 0 else None
        )
        #: Byte-bounded answer cache with per-source version-vector
        #: invalidation, or ``None`` (the default) — every query then
        #: executes, exactly the pre-cache behavior.  Opt in with
        #: ``result_cache_bytes=32 << 20`` for serving workloads.
        self.result_cache: Optional[ResultCache] = (
            ResultCache(max_bytes=result_cache_bytes)
            if result_cache_bytes > 0
            else None
        )
        #: Evaluator adapter that serves materialized view documents
        #: under the ``mediator`` pseudo-source (joined into the adapter
        #: map only while at least one view is materialized).
        self._view_source = MaterializedViewSource(self)
        #: Bumped whenever the catalog changes shape (connect, views,
        #: containments); part of every cache key, so stale plans are
        #: unreachable even before the explicit invalidate() frees them.
        self._epoch = 0
        #: Bumped when EXPLAIN ANALYZE feedback materially changes the
        #: statistics a gated optimization would use.
        self._stats_version = 0
        self._observed = ObservedStatistics()
        #: Guards the planning-side mutable state (epoch, stats version,
        #: probe cache, observed statistics) against concurrent sessions;
        #: the PlanCache carries its own lock.
        self._plan_lock = threading.RLock()
        #: Memo of wrapper selectivity probes, keyed (source, constant);
        #: cleared with the epoch — probing is a real source round trip
        #: and must not run once per query for the same constant.
        self._probe_cache: dict = {}
        #: Extension beyond the paper: cost-gate the bind-join conversion
        #: (see OptimizerContext.gate_information_passing).
        self.gate_information_passing = gate_information_passing
        #: Resilience policy used by :meth:`execute` / :meth:`query` unless
        #: overridden per call; ``None`` means fail-fast (direct).
        self.policy = policy
        #: Federated scheduler policy (parallelism, DJoin batching,
        #: source-call caching); ``None`` means the default
        #: :class:`ExecutionPolicy` — serial order, cache and batching on.
        self.execution = execution
        self.functions = {
            "ref_is": ref_is,
            "contains": _mediator_contains,
        }

    # -- setup (the Figure 2 session) ------------------------------------------

    def connect(self, wrapper: Wrapper) -> SourceInterface:
        """Connect a wrapper and import its capabilities."""
        interface = self.catalog.connect(wrapper)
        # Field-scoped contains predicates get mediator fallbacks, so an
        # unpushed plan still evaluates them correctly.
        for name, declaration in interface.operations.items():
            if (
                declaration.kind == "external"
                and name.startswith("contains_")
                and name not in self.functions
            ):
                self.functions[name] = _field_contains(
                    name.removeprefix("contains_")
                )
        self._invalidate_plans()
        return interface

    def connect_sharded(
        self, logical: str, shards: Sequence, partition
    ) -> Tuple[SourceInterface, ...]:
        """Connect N shard adapters as one sharded logical source.

        *shards* are per-shard wrappers (or
        :class:`~repro.sources.sharded.adapter.ReplicaSet` bundles of
        them) in shard order; *partition* is the placement scheme
        (:class:`~repro.sources.sharded.partition.HashPartition` or
        :class:`~repro.sources.sharded.partition.RangePartition`).  The
        optimizer learns the topology through :meth:`optimizer_context`
        and expands Bind chains over the logical source into pruned
        scatter plans; see :mod:`repro.core.optimizer.sharding`.
        """
        interfaces = self.catalog.connect_sharded(logical, shards, partition)
        for interface in interfaces:
            for name, declaration in interface.operations.items():
                if (
                    declaration.kind == "external"
                    and name.startswith("contains_")
                    and name not in self.functions
                ):
                    self.functions[name] = _field_contains(
                        name.removeprefix("contains_")
                    )
        self._invalidate_plans()
        return interfaces

    def load_program(self, text: str) -> Tuple[str, ...]:
        """Parse a YAT_L program and register each rule as a view.

        Inside a rule's own body, its name refers to the *source* document
        (the paper's ``artworks()`` rule MATCHes the Wais ``artworks``
        document); everywhere else the view shadows the document.
        """
        program = parse_program(text)
        for rule in program.rules:
            plan = translate_rule(
                rule,
                lambda document, _defining=rule.name: self._resolve_document(
                    document, defining=_defining
                ),
            )
            self.views.define(rule.name, plan)
        names: list = []
        for rule in program.rules:
            if rule.name not in names:
                names.append(rule.name)
        self._invalidate_plans()
        return tuple(names)

    def declare_containment(self, subset_document: str, superset_document: str) -> None:
        """Administrator metadata for join-branch elimination (Figure 8)."""
        self._containments.add((subset_document, superset_document))
        self._invalidate_plans()

    def materialize_view(self, name: str) -> None:
        """Declare view *name* materialized.

        Its plan will execute once on first use; later queries MATCHing
        the view Bind against the kept document instead of re-splicing
        (and re-executing) the view plan, and the document refreshes
        lazily whenever a base source's ``data_version()`` moves.
        """
        self.views.materialize(name)
        self._invalidate_plans()

    def _invalidate_plans(self) -> None:
        """Catalog changed: cached plans and probe answers are suspect."""
        with self._plan_lock:
            self._epoch += 1
            self._probe_cache.clear()
        if self.plan_cache is not None:
            self.plan_cache.invalidate()
        if self.result_cache is not None:
            self.result_cache.invalidate()
        # Materialized documents were built against the old catalog (a
        # reloaded program may have added rules to the view); drop them
        # and let the next query refresh.
        self.views.reset_materialized()
        # Document trees may be re-exported after a catalog change; the
        # lazily built label/value indexes over them follow the epoch.
        invalidate_document_indexes()

    # -- planning ------------------------------------------------------------------

    def _resolve_document(self, document: str, defining: Optional[str] = None) -> str:
        # Views shadow source documents, except inside their own definition
        # (a rule may be named after the document it integrates, as the
        # paper's artworks() rule is).
        if document in self.views and document != defining:
            return VIEW_SOURCE
        source = self.catalog.source_of_document(document)
        if source is not None:
            return source
        raise UnknownDocumentError(
            f"no connected source or view exports {document!r}; known documents: "
            f"{sorted(self.catalog.document_names() + self.views.names())}"
        )

    def cost_hints(self):
        """Size/cardinality hints collected from the connected wrappers."""
        from repro.core.optimizer.cost import CostHints
        from repro.wrappers.base import Wrapper

        sizes = {}
        cardinalities = {}
        for adapter in self.catalog.adapters().values():
            if isinstance(adapter, Wrapper):
                for document, (size, cardinality) in adapter.document_stats().items():
                    sizes[document] = float(size)
                    cardinalities[document] = float(max(1, cardinality))
        return CostHints(document_sizes=sizes,
                         document_cardinalities=cardinalities)

    def optimizer_context(self) -> OptimizerContext:
        return OptimizerContext(
            interfaces=self.catalog.interfaces(),
            containments=set(self._containments),
            cost_hints=self.cost_hints() if self.gate_information_passing else None,
            gate_information_passing=self.gate_information_passing,
            shards=self.catalog.shard_topologies(),
        )

    def plan_query(
        self,
        query: YatlQuery,
        optimize: bool = True,
        rounds: Sequence[int] = (1, 2, 3),
    ) -> Tuple[Plan, Plan, RewriteTrace]:
        """(naive plan, optimized plan, trace) for a parsed query."""
        if self.plan_cache is None:
            return self._plan_fresh(query, optimize, tuple(rounds))
        naive, optimized, trace, _cached = self._plan_normalized(
            normalize_query(query), optimize, tuple(rounds)
        )
        return naive, optimized, trace

    def _plan_text(
        self, text: str, optimize: bool, rounds: Sequence[int]
    ) -> Tuple[Plan, Plan, RewriteTrace, bool, Optional[NormalizedQuery]]:
        """Plan query *text* through the cache; also memoizes the parse.

        The trailing element is the query's normalized form — the result
        cache keys on it; ``None`` only when both caches are off (the
        normalization pass is then pure overhead).
        """
        rounds = tuple(rounds)
        cache = self.plan_cache
        if cache is None:
            query = parse_query(text)
            normalized = (
                normalize_query(query)
                if self.result_cache is not None
                else None
            )
            naive, optimized, trace = self._plan_fresh(query, optimize, rounds)
            return naive, optimized, trace, False, normalized
        normalized = cache.normalized(text)
        if normalized is None:
            normalized = normalize_query(parse_query(text))
            cache.remember_text(text, normalized)
        naive, optimized, trace, cached = self._plan_normalized(
            normalized, optimize, rounds
        )
        return naive, optimized, trace, cached, normalized

    def _plan_normalized(
        self,
        normalized: NormalizedQuery,
        optimize: bool,
        rounds: tuple,
    ) -> Tuple[Plan, Plan, RewriteTrace, bool]:
        """Serve a plan from the cache, rebinding constants on a hit."""
        cache = self.plan_cache
        assert cache is not None
        key = (
            normalized.key,
            optimize,
            rounds,
            self.gate_information_passing,
            self._epoch,
            self._stats_version,
        )
        entry = cache.lookup(key)
        if entry is not None:
            if entry.values == normalized.values:
                return entry.naive, entry.plan, entry.trace, True
            if not _constant_pruned(entry.plan):
                # Same shape, different constants: splice the new values
                # into the cached plans instead of replanning.  The trace
                # still describes the rewrites (constant-independent) —
                # *except* when a Scatter was pruned on a constant: which
                # shards survive depends on the constant's value, so such
                # plans replan per value vector instead of rebinding.
                cache.record_rebind()
                naive = rebind_plan(entry.naive, normalized.values)
                optimized = rebind_plan(entry.plan, normalized.values)
                return naive, optimized, entry.trace, True
        naive, optimized, trace = self._plan_fresh(
            normalized.query, optimize, rounds
        )
        cache.store(key, CachedPlan(naive, optimized, trace, normalized.values))
        return naive, optimized, trace, False

    def _plan_fresh(
        self, query: YatlQuery, optimize: bool, rounds: Sequence[int]
    ) -> Tuple[Plan, Plan, RewriteTrace]:
        """One full planning pass: translate, compose, optimize."""
        translated = translate_query(query, self._resolve_document)
        naive = self.views.compose(translated)
        trace = RewriteTrace()
        optimized = naive
        if optimize:
            context = self.optimizer_context()
            hints = context.cost_hints
            if hints is not None:
                # Measured statistics beat wrapper declarations, and both
                # beat probing: only constants nothing else covers cost a
                # source round trip.
                hints.document_cardinalities.update(
                    self._observed.document_cardinalities
                )
                hints.text_selectivities.update(
                    self._observed.text_selectivities
                )
                hints.text_selectivities.update(
                    self._probe_text_selectivities(
                        naive, known=frozenset(hints.text_selectivities)
                    )
                )
            optimized, trace = Optimizer(context).optimize(
                naive, rounds=rounds, trace=trace
            )
        return naive, optimized, trace

    def _probe_text_selectivities(
        self, plan: Plan, known: frozenset = frozenset()
    ) -> dict:
        """Ask sources for match fractions of the query's string constants.

        Used by the cost-gated optimizer: an inverted index answers "how
        many documents contain this term" without transferring anything,
        which is exactly the statistic the bind-join decision needs.
        Answers are memoized per ``(source, constant)`` until the next
        catalog change, and constants already in *known* (declared,
        measured, or previously probed) are skipped entirely.
        """
        from repro.core.algebra.expressions import Const, Expr
        from repro.wrappers.base import Wrapper

        constants = set()
        for node in plan.walk():
            predicate = getattr(node, "predicate", None)
            if isinstance(predicate, Expr):
                for sub in predicate.walk():
                    if isinstance(sub, Const) and isinstance(sub.value, str):
                        constants.add(sub.value)
        constants -= set(known)
        estimates: dict = {}
        for source_name, adapter in self.catalog.adapters().items():
            if not isinstance(adapter, Wrapper):
                continue
            for constant in constants:
                memo_key = (source_name, constant)
                with self._plan_lock:
                    hit = memo_key in self._probe_cache
                    estimate = self._probe_cache.get(memo_key)
                if not hit:
                    # The probe (a source round trip) runs outside the
                    # lock; concurrent misses on one key both probe, and
                    # either deterministic answer is correct to keep.
                    estimate = adapter.estimate_text_selectivity(constant)
                    with self._plan_lock:
                        self._probe_cache[memo_key] = estimate
                if estimate is not None:
                    # Pessimistic across sources: keep the largest fraction.
                    estimates[constant] = max(
                        estimates.get(constant, 0.0), estimate
                    )
        return estimates

    # -- result caching ----------------------------------------------------------

    def _result_key(
        self,
        normalized: NormalizedQuery,
        optimize: bool,
        rounds: tuple,
        execution: Optional[ExecutionPolicy],
    ) -> tuple:
        """The result-cache key: everything that could change the bytes.

        Query shape and constants, the planning knobs (an unoptimized
        answer is ordered differently from an optimized one is a
        non-goal — they are byte-identical by the soundness invariant,
        but keying on them costs nothing), the catalog epoch and
        statistics version, and the answer-relevant execution knobs.
        """
        effective = execution if execution is not None else self.execution
        if effective is None:
            effective = _DEFAULT_EXECUTION
        return (
            normalized.key,
            normalized.values,
            optimize,
            rounds,
            self.gate_information_passing,
            self._epoch,
            self._stats_version,
            (
                effective.compile_kernels,
                effective.use_document_indexes,
                effective.vectorize,
                effective.twig_joins,
                effective.batch_djoin,
            ),
        )

    def _version_vector(self, plan: Plan) -> tuple:
        """``((source, data_version), ...)`` for every source *plan* reads.

        Materialized-view leaves expand to the base sources the view
        transitively reads, so an update to any of them invalidates the
        cached answers of queries served through the view.
        """
        adapters = self.catalog.adapters()
        names: set = set()
        for node in plan.walk():
            source = getattr(node, "source", None)
            if source is None:
                continue
            if source == VIEW_SOURCE:
                names |= self.views.base_sources(node.document)
            else:
                names.add(source)
        return tuple(
            (name, _adapter_version(adapters.get(name)))
            for name in sorted(names)
        )

    def _execute_maybe_cached(
        self,
        optimized: Plan,
        normalized: Optional[NormalizedQuery],
        optimize: bool,
        rounds: tuple,
        policy: Optional[ResiliencePolicy],
        execution: Optional[ExecutionPolicy],
        tracer,
        context,
        use_result_cache: bool = True,
    ) -> Tuple[ExecutionReport, bool]:
        """Serve *optimized* from the result cache or execute and store.

        Returns ``(report, served_from_cache)``.  The version vector is
        captured **before** execution: a source update racing the
        execution tags the entry with the pre-update version, so the
        next lookup sees a mismatch and recomputes — a stale answer can
        never be served as fresh.  Concurrent misses on one key are
        single-flight: one caller executes, the rest wait and re-check.
        """
        cache = self.result_cache
        if cache is None or not use_result_cache or normalized is None:
            report = self.execute(
                optimized, policy=policy, execution=execution, tracer=tracer,
                context=context,
            )
            return report, False
        key = self._result_key(normalized, optimize, rounds, execution)
        while True:
            versions = self._version_vector(optimized)
            tab = cache.lookup(key, versions)
            if tab is not None:
                return ExecutionReport(optimized, tab, ExecutionStats(), 0.0), True
            leader, event = cache.begin(key)
            if leader:
                break
            # Another session is already executing this exact query:
            # wait for it, then re-check (the timeout only bounds the
            # wait if that session dies without reaching finish()).
            event.wait(timeout=5.0)
        try:
            report = self.execute(
                optimized, policy=policy, execution=execution, tracer=tracer,
                context=context,
            )
            if not report.degraded:
                # Degraded (partial) answers must never serve later
                # queries — a hit could not tell them from the full one.
                cache.store(key, report.tab, versions)
        finally:
            cache.finish(key)
        return report, False

    def materialized_document(self, name: str) -> DataNode:
        """The kept document of materialized view *name*, refreshed if stale.

        Single-flight per view; the base-source version vector is
        captured before the refresh executes (stale-tag safe, exactly as
        for the result cache).  The refresh runs fail-fast — a partial
        view document must never be kept.
        """
        entry = self.views.materialized_entry(name)
        refreshing = getattr(_REFRESHING, "names", None)
        if refreshing is None:
            refreshing = _REFRESHING.names = set()
        if name in refreshing:
            raise ViewError(
                f"materialized view {name!r} transitively reads itself"
            )
        with entry.lock:
            current = self._view_versions(name)
            if entry.document is None or entry.versions != current:
                refreshing.add(name)
                try:
                    report = self.execute(
                        self.views.refresh_plan(name),
                        policy=ResiliencePolicy.direct(),
                    )
                    document = report.document()
                finally:
                    refreshing.discard(name)
                entry.document = document
                entry.versions = current
                entry.refreshes += 1
            entry.serves += 1
            return entry.document

    def _view_versions(self, name: str) -> tuple:
        """Live version vector of the base sources view *name* reads."""
        adapters = self.catalog.adapters()
        return tuple(
            (source, _adapter_version(adapters.get(source)))
            for source in sorted(self.views.base_sources(name))
        )

    # -- querying --------------------------------------------------------------------

    def query(
        self,
        text: str,
        optimize: bool = True,
        rounds: Sequence[int] = (1, 2, 3),
        policy: Optional[ResiliencePolicy] = None,
        execution: Optional[ExecutionPolicy] = None,
        tracer=None,
        context=None,
        use_result_cache: bool = True,
    ) -> QueryResult:
        """Parse, plan, optimize and evaluate a YAT_L query.

        *context* (a :class:`~repro.observability.context.RequestContext`)
        carries the requesting session's identity, deadline, tracer and
        per-request caches through the execution; the serving layer
        passes one per admitted request.

        With a result cache configured (``result_cache_bytes > 0`` at
        construction) a repeated query whose sources did not change is
        answered from the cache without executing anything —
        ``result.result_cached`` says so, and the report then carries
        empty statistics.  ``use_result_cache=False`` bypasses the cache
        for one call (the answer is neither looked up nor stored).
        """
        naive, optimized, trace, cached, normalized = self._plan_text(
            text, optimize, rounds
        )
        report, result_cached = self._execute_maybe_cached(
            optimized, normalized, optimize, tuple(rounds),
            policy=policy, execution=execution, tracer=tracer,
            context=context, use_result_cache=use_result_cache,
        )
        return QueryResult(
            naive, optimized, trace, report,
            cached=cached, result_cached=result_cached,
        )

    def explain(
        self,
        text: str,
        analyze: bool = False,
        optimize: bool = True,
        rounds: Sequence[int] = (1, 2, 3),
        policy: Optional[ResiliencePolicy] = None,
        execution: Optional[ExecutionPolicy] = None,
        tracer=None,
    ):
        """EXPLAIN (plan only) or EXPLAIN ANALYZE (plan + actuals) *text*.

        Plans the query exactly as :meth:`query` would and returns an
        :class:`~repro.observability.explain.Explanation` whose
        ``render()`` / ``str()`` shows the optimized plan annotated with
        the pushdown decisions (which fragments run natively, and the
        native OQL / SQL / Wais text).  With ``analyze=True`` the plan is
        also executed under a tracer (a fresh one unless *tracer* is
        given) and every node is annotated with its actuals — number of
        evaluations, rows produced, inclusive wall time, source calls,
        bytes and cache hits.

        Every Bind node is annotated with the access path the cost model
        chose for it — ``bind: twig-join`` when the filter compiles to a
        holistic twig pattern under the effective execution policy,
        ``bind: index-seek on (artist,'Picasso')`` when the filter is
        sargable and document indexes are enabled, ``bind: scan``
        otherwise.
        """
        from repro.core.algebra.operators import (
            BindOp,
            PushedOp,
            ScatterOp,
            SourceOp,
        )
        from repro.core.algebra.twig import compiled_twig
        from repro.core.optimizer.cost import choose_bind_access
        from repro.observability.explain import Explanation
        from repro.observability.tracer import Tracer

        naive, optimized, trace, cached, normalized = self._plan_text(
            text, optimize, rounds
        )
        effective = execution if execution is not None else self.execution
        indexes_on = effective is None or effective.use_document_indexes
        twig_on = indexes_on and (effective is None or effective.twig_joins)
        hints = self.cost_hints()
        access_paths = {}
        for node in optimized.walk():
            if isinstance(node, BindOp):
                if twig_on and compiled_twig(node.filter) is not None:
                    access_paths[id(node)] = "bind: twig-join"
                    continue
                access = (
                    choose_bind_access(node, hints)
                    if indexes_on
                    else None
                )
                access_paths[id(node)] = (
                    f"bind: {access.describe()}"
                    if access is not None
                    else "bind: scan"
                )
        # Scatter nodes: show the pruning decision — how many shards of
        # the topology this Bind chain actually reads, and whether each
        # outer row is routed to its owning shard at run time.
        for node in optimized.walk():
            if not isinstance(node, ScatterOp):
                continue
            kept = len(node.branches)
            if kept < node.total:
                label = f"bind: shard-pruned {kept}/{node.total}"
            else:
                label = f"bind: scatter {kept}/{node.total}"
            if node.prune_param is not None:
                label += f", runtime prune on ${node.prune_param}"
            access_paths[id(node)] = label
        # Pushed fragments: the access path is the *wrapper's* choice
        # (SQL interval pushdown vs. hydrated scan for store-backed
        # sources).  walk() stops at PushedOp on purpose — the fragment
        # is not rewritable — so descend explicitly for annotation only.
        adapters = self.catalog.adapters()
        for node in optimized.walk():
            if not isinstance(node, PushedOp):
                continue
            chooser = getattr(adapters.get(node.source), "pushdown_access", None)
            if chooser is None:
                continue
            for inner in node.plan.walk():
                if isinstance(inner, BindOp):
                    access_paths[id(inner)] = (
                        f"bind: {chooser(inner.filter, inner.on)}"
                    )
        materialized_views = tuple(sorted({
            node.document
            for node in optimized.walk()
            if isinstance(node, SourceOp) and node.source == VIEW_SOURCE
        }))
        report = None
        result_cached = False
        if analyze:
            if tracer is None:
                tracer = Tracer()
            report, result_cached = self._execute_maybe_cached(
                optimized, normalized, optimize, tuple(rounds),
                policy=policy, execution=execution, tracer=tracer,
                context=None,
            )
            self._absorb_actuals(optimized, tracer)
        else:
            if tracer is not None:
                tracer = None  # a plan-only EXPLAIN never executes anything
            if self.result_cache is not None and normalized is not None:
                # Non-mutating peek: would this query serve from cache?
                result_cached = self.result_cache.peek(
                    self._result_key(
                        normalized, optimize, tuple(rounds), execution
                    ),
                    self._version_vector(optimized),
                )
        return Explanation(
            text, naive, optimized, trace, report=report, tracer=tracer,
            cached=cached, access_paths=access_paths,
            result_cached=result_cached, materialized_views=materialized_views,
        )

    def _absorb_actuals(self, plan: Plan, tracer) -> None:
        """Fold EXPLAIN ANALYZE actuals into the observed statistics."""
        from repro.observability.explain import collect_actuals

        actuals = collect_actuals(tracer)
        if not actuals:
            return
        with self._plan_lock:
            changed = self._observed.absorb(plan, actuals)
            if changed and self.gate_information_passing:
                # Plans chosen under the old statistics must replan; the
                # version bump makes their cache keys unreachable.
                self._stats_version += 1
        if changed and self.gate_information_passing:
            if self.plan_cache is not None:
                self.plan_cache.invalidate()
            if self.result_cache is not None:
                # Keys embed the statistics version, so the old entries
                # are already unreachable; dropping them frees the bytes.
                self.result_cache.invalidate()

    def execute(
        self,
        plan: Plan,
        policy: Optional[ResiliencePolicy] = None,
        execution: Optional[ExecutionPolicy] = None,
        tracer=None,
        context=None,
    ) -> ExecutionReport:
        """Evaluate an already-planned query with fresh statistics.

        *policy* (or the mediator-wide default given at construction)
        guards every source call; absent both, execution is fail-fast.
        *execution* (or the mediator-wide default) configures the
        federated scheduler — see :func:`run_plan`.  *tracer* records
        hierarchical spans of the execution (see
        :mod:`repro.observability`).
        """
        adapters = self.catalog.adapters()
        if self.views.has_materialized():
            # Materialized view documents are served (and lazily
            # refreshed) by the mediator itself under the "mediator"
            # pseudo-source the composed plans reference.
            adapters[VIEW_SOURCE] = self._view_source
        return run_plan(
            plan,
            adapters,
            functions=self.functions,
            policy=policy if policy is not None else self.policy,
            execution=execution if execution is not None else self.execution,
            tracer=tracer,
            context=context,
        )
