"""Resilience policies for federated execution.

The paper's mediator (Figure 2) is fail-fast: one unreachable source
aborts the whole federated query.  This module adds the failure handling
real mediation stacks need, while keeping the happy path unchanged:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (hash of source and attempt, not a global RNG),
  so runs are reproducible;
* :class:`CircuitBreaker` — per-source closed/open/half-open breaker, so
  a dead source stops being retried mid-plan and later calls fail fast;
* per-call time budgets and a per-query deadline
  (:class:`~repro.errors.QueryDeadlineError`);
* graceful degradation — when ``allow_partial_results`` is set, the
  evaluator may drop a failed ``Union`` branch and return a partial
  answer, recorded on :class:`~repro.core.algebra.stats.ExecutionStats`
  and surfaced as ``degraded`` on the execution report.

A policy object is immutable configuration; :meth:`ResiliencePolicy.start`
creates the per-query mutable state (:class:`PolicyRuntime`: breakers,
deadline, outcome records).  ``ResiliencePolicy.direct()`` is the no-op
default every existing call site gets: no wrapping, no overhead.

Clocks and sleeping are injectable so tests drive time with a
:class:`~repro.testing.faults.VirtualClock`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Callable, Dict, Optional, Tuple, TypeVar

from repro.errors import (
    PushdownRejectedError,
    QueryDeadlineError,
    SourceError,
    SourceTimeoutError,
    SourceUnavailableError,
)
from repro.core.algebra.evaluator import SourceAdapter
from repro.core.algebra.operators import Plan
from repro.core.algebra.stats import ExecutionStats
from repro.core.algebra.tab import Row, Tab
from repro.model.trees import DataNode

T = TypeVar("T")

#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter."""

    __slots__ = ("max_attempts", "base_delay", "multiplier", "max_delay",
                 "jitter", "seed")

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed

    def delay_for(self, source: str, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based) against *source*.

        Jitter spreads delays over ``[raw, raw * (1 + jitter)]`` using a
        hash of ``(seed, source, attempt)`` — two runs with the same seed
        back off identically.
        """
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        digest = hashlib.sha256(
            f"{self.seed}:{source}:{attempt}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return raw * (1.0 + self.jitter * fraction)

    @staticmethod
    def is_retryable(error: BaseException) -> bool:
        """Transient-looking source errors are retryable; deterministic
        capability rejections and final unavailability verdicts are not."""
        if isinstance(error, (SourceUnavailableError, PushdownRejectedError)):
            return False
        return isinstance(error, SourceError)


class CircuitBreaker:
    """Per-source breaker: closed -> open after N consecutive failures,
    half-open after a cooldown (one probe), closed again on success."""

    __slots__ = ("failure_threshold", "recovery_time", "state",
                 "consecutive_failures", "opened_at")

    def __init__(self, failure_threshold: int = 5, recovery_time: float = 30.0) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0

    def allow(self, now: float) -> bool:
        """May a call proceed at time *now*?  Flips open -> half-open
        once the cooldown has elapsed (admitting a single probe)."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN and now - self.opened_at >= self.recovery_time:
            self.state = HALF_OPEN
            return True
        return self.state == HALF_OPEN

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or self.consecutive_failures >= self.failure_threshold:
            self.state = OPEN
            self.opened_at = now


class SourceOutcome:
    """What happened to one source over one query execution."""

    __slots__ = ("source", "calls", "retries", "failures", "circuit",
                 "dropped", "error")

    def __init__(
        self,
        source: str,
        calls: int = 0,
        retries: int = 0,
        failures: int = 0,
        circuit: str = CLOSED,
        dropped: bool = False,
        error: Optional[str] = None,
    ) -> None:
        self.source = source
        self.calls = calls
        self.retries = retries
        self.failures = failures
        self.circuit = circuit
        self.dropped = dropped
        self.error = error

    @property
    def ok(self) -> bool:
        return not self.dropped and self.circuit == CLOSED

    def as_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "calls": self.calls,
            "retries": self.retries,
            "failures": self.failures,
            "circuit": self.circuit,
            "dropped": self.dropped,
            "error": self.error,
        }

    def __repr__(self) -> str:
        status = "dropped" if self.dropped else self.circuit
        return (
            f"SourceOutcome({self.source!r}, {status}, calls={self.calls}, "
            f"retries={self.retries}, failures={self.failures})"
        )


class ResiliencePolicy:
    """Immutable resilience configuration for federated execution.

    ``ResiliencePolicy.direct()`` — the default everywhere — disables the
    whole layer: adapters are not wrapped and the evaluator behaves
    exactly as before.  ``ResiliencePolicy.default()`` enables retries
    and the breaker with conservative settings.
    """

    __slots__ = ("retry", "circuit_failure_threshold", "circuit_recovery_time",
                 "call_timeout", "query_deadline", "allow_partial_results",
                 "clock", "sleep", "_direct")

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        circuit_failure_threshold: int = 5,
        circuit_recovery_time: float = 30.0,
        call_timeout: Optional[float] = None,
        query_deadline: Optional[float] = None,
        allow_partial_results: bool = False,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.retry = retry
        self.circuit_failure_threshold = circuit_failure_threshold
        self.circuit_recovery_time = circuit_recovery_time
        self.call_timeout = call_timeout
        self.query_deadline = query_deadline
        self.allow_partial_results = allow_partial_results
        self.clock = clock
        self.sleep = sleep
        self._direct = False

    @classmethod
    def direct(cls) -> "ResiliencePolicy":
        """The no-op policy: fail-fast, zero wrapping (the seed behavior)."""
        policy = cls()
        policy._direct = True
        return policy

    @classmethod
    def default(cls, **overrides) -> "ResiliencePolicy":
        """Retrying defaults: 3 attempts, breaker at 5 consecutive failures."""
        settings = dict(
            retry=RetryPolicy(),
            circuit_failure_threshold=5,
            circuit_recovery_time=30.0,
        )
        settings.update(overrides)
        return cls(**settings)

    @property
    def is_direct(self) -> bool:
        return self._direct

    def start(
        self, stats: ExecutionStats, tracer=None, deadline=None
    ) -> Optional["PolicyRuntime"]:
        """Per-query runtime state, or ``None`` for the direct policy.

        *deadline* is an optional **absolute** time (on this policy's
        clock) imposed from outside — the serving layer's per-request
        deadline.  The runtime enforces whichever of the external
        deadline and the policy's own ``query_deadline`` comes first.
        """
        if self._direct:
            return None
        return PolicyRuntime(self, stats, tracer=tracer, deadline=deadline)


class PolicyRuntime:
    """Mutable per-query state: breakers, deadline, per-source records.

    Safe under concurrent wrapped calls: breaker transitions and the
    per-source counters are guarded by one re-entrant lock, while the
    source call itself (and any backoff sleep) runs outside it — a slow
    source never serializes calls to other sources.
    """

    def __init__(
        self,
        policy: ResiliencePolicy,
        stats: ExecutionStats,
        tracer=None,
        deadline: Optional[float] = None,
    ) -> None:
        self.policy = policy
        self.stats = stats
        #: Optional :class:`~repro.observability.tracer.Tracer`: when set,
        #: every guarded source call gets a ``source_call`` span recording
        #: attempts, retries and the final error.
        self.tracer = tracer
        self._lock = threading.RLock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._calls: Dict[str, int] = {}
        self._errors: Dict[str, str] = {}
        self._started = policy.clock()
        own = (
            self._started + policy.query_deadline
            if policy.query_deadline is not None
            else None
        )
        # The earlier of the policy's relative budget and the absolute
        # deadline a serving layer imposed on this request.
        if own is None:
            self._deadline = deadline
        elif deadline is None:
            self._deadline = own
        else:
            self._deadline = min(own, deadline)

    # -- wiring ---------------------------------------------------------------

    @property
    def allow_partial(self) -> bool:
        return self.policy.allow_partial_results

    def wrap(self, adapters: Dict[str, SourceAdapter]) -> Dict[str, SourceAdapter]:
        """Adapters guarded by this runtime (idempotent per name).

        A :class:`~repro.sources.sharded.adapter.ReplicaSet` is guarded
        *replica by replica* (:class:`FailoverAdapter`): each replica
        gets its own breaker and outcome record, and a failed replica
        routes the call to the next one instead of failing the shard.
        """
        from repro.sources.sharded.adapter import ReplicaSet

        wrapped: Dict[str, SourceAdapter] = {}
        for name, adapter in adapters.items():
            if isinstance(adapter, ReplicaSet):
                wrapped[name] = FailoverAdapter(name, adapter, self)
            else:
                wrapped[name] = ResilientAdapter(name, adapter, self)
        return wrapped

    def breaker(self, source: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(source)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.policy.circuit_failure_threshold,
                    self.policy.circuit_recovery_time,
                )
                self._breakers[source] = breaker
            return breaker

    # -- deadlines ------------------------------------------------------------

    def check_deadline(self) -> None:
        if self._deadline is not None and self.policy.clock() > self._deadline:
            budget = self._deadline - self._started
            raise QueryDeadlineError(
                f"query exceeded its {budget:.3f}s deadline"
            )

    # -- the guarded call -------------------------------------------------------

    def call(self, source: str, operation: str, thunk: Callable[[], T]) -> T:
        """Run one source call under retry/backoff, breaker, and deadlines.

        Raises :class:`QueryDeadlineError` when the query is out of time
        and :class:`SourceUnavailableError` when the breaker is open or
        every attempt failed.
        """
        tracer = self.tracer
        if tracer is None:
            return self._guarded_call(source, operation, thunk, None)
        with tracer.start(
            f"{source}.{operation}",
            kind="source_call",
            source=source,
            operation=operation,
        ) as span:
            return self._guarded_call(source, operation, thunk, span)

    def _guarded_call(
        self, source: str, operation: str, thunk: Callable[[], T], span
    ) -> T:
        self.check_deadline()
        breaker = self.breaker(source)
        with self._lock:
            allowed = breaker.allow(self.policy.clock())
            if not allowed:
                self._errors.setdefault(source, "circuit open")
                consecutive = breaker.consecutive_failures
        if not allowed:
            self.stats.record_failure(source, "circuit open")
            raise SourceUnavailableError(
                f"source {source!r} is unavailable: circuit open after "
                f"{consecutive} consecutive failures",
                source=source,
            )
        retry = self.policy.retry
        max_attempts = retry.max_attempts if retry is not None else 1
        last_error: Optional[SourceError] = None
        attempt = 0
        while attempt < max_attempts:
            attempt += 1
            if span is not None:
                span.annotate(attempts=attempt)
            self.check_deadline()
            started = self.policy.clock()
            with self._lock:
                self._calls[source] = self._calls.get(source, 0) + 1
            try:
                result = thunk()
            except SourceUnavailableError:
                raise
            except SourceError as error:
                last_error = error
            else:
                elapsed = self.policy.clock() - started
                if (
                    self.policy.call_timeout is not None
                    and elapsed > self.policy.call_timeout
                ):
                    last_error = SourceTimeoutError(
                        f"{source}.{operation} took {elapsed:.3f}s "
                        f"(budget {self.policy.call_timeout:.3f}s)"
                    )
                else:
                    with self._lock:
                        breaker.record_success()
                    self.check_deadline()
                    return result
            # One attempt failed (error or per-call timeout).
            self.stats.record_failure(source, str(last_error))
            with self._lock:
                self._errors[source] = str(last_error)
                breaker.record_failure(self.policy.clock())
                breaker_open = breaker.state == OPEN
            if (
                attempt >= max_attempts
                or not RetryPolicy.is_retryable(last_error)
                or breaker_open
            ):
                break
            self.stats.record_retry(source)
            if span is not None:
                span.add("retries")
            self.policy.sleep(retry.delay_for(source, attempt))
        raise SourceUnavailableError(
            f"source {source!r} is unavailable after {attempt} attempt(s): "
            f"{last_error}",
            source=source,
            attempts=attempt,
        ) from last_error

    # -- degradation ------------------------------------------------------------

    def record_dropped(self, source: str, cause: str) -> None:
        with self._lock:
            self._errors.setdefault(source, cause)
        self.stats.record_dropped(source, cause)

    # -- reporting ---------------------------------------------------------------

    def outcomes(self) -> Tuple[SourceOutcome, ...]:
        """Per-source records for every source this runtime touched."""
        with self._lock:
            sources = set(self._calls) | set(self._breakers) | set(self._errors)
            sources |= set(self.stats.dropped_sources)
            records = []
            for source in sorted(sources):
                breaker = self._breakers.get(source)
                records.append(
                    SourceOutcome(
                        source,
                        calls=self._calls.get(source, 0),
                        retries=self.stats.retries.get(source, 0),
                        failures=self.stats.failures.get(source, 0),
                        circuit=breaker.state if breaker is not None else CLOSED,
                        dropped=source in self.stats.dropped_sources,
                        error=self._errors.get(source),
                    )
                )
            return tuple(records)


class ResilientAdapter(SourceAdapter):
    """A :class:`SourceAdapter` guarded by a :class:`PolicyRuntime`.

    ``document_names`` stays direct (catalog metadata, used during
    planning); the data-plane calls go through :meth:`PolicyRuntime.call`.
    """

    __slots__ = ("name", "inner", "runtime")

    def __init__(
        self, name: str, inner: SourceAdapter, runtime: PolicyRuntime
    ) -> None:
        self.name = name
        self.inner = inner
        self.runtime = runtime

    def document_names(self) -> Tuple[str, ...]:
        return self.inner.document_names()

    def document_name_set(self) -> frozenset:
        return self.inner.document_name_set()

    def document(self, name: str) -> DataNode:
        return self.runtime.call(
            self.name, "document", lambda: self.inner.document(name)
        )

    def ident_index(self) -> Dict[str, DataNode]:
        return self.runtime.call(
            self.name, "ident_index", self.inner.ident_index
        )

    def execute_pushed(
        self, plan: Plan, outer: Optional[Row] = None
    ) -> Tuple[Tab, str]:
        return self.runtime.call(
            self.name,
            "execute_pushed",
            lambda: self.inner.execute_pushed(plan, outer),
        )


class FailoverAdapter(SourceAdapter):
    """A replica set guarded replica by replica.

    Every replica is called under its own scope name (``shard/r0``,
    ``shard/r1``, ...), so each has its own circuit breaker, retry
    accounting and :class:`SourceOutcome` record.  A replica whose
    guarded call still fails — retries exhausted or circuit already
    open — *fails over*: the call is routed to the next replica instead
    of failing the shard, and only when every replica is exhausted does
    the shard raise :class:`~repro.errors.SourceUnavailableError`.
    Failovers are counted on the execution statistics
    (``shard_failovers``); the answer is complete, never ``degraded``.
    """

    __slots__ = ("name", "inner", "runtime")

    def __init__(self, name: str, inner, runtime: PolicyRuntime) -> None:
        self.name = name
        self.inner = inner
        self.runtime = runtime

    def document_names(self) -> Tuple[str, ...]:
        return self.inner.document_names()

    def document_name_set(self) -> frozenset:
        return self.inner.document_name_set()

    def data_version(self):
        return self.inner.data_version()

    def _failover(self, operation: str, invoke: Callable[[SourceAdapter], T]) -> T:
        replicas = self.inner.replicas
        last_error: Optional[SourceUnavailableError] = None
        for index, replica in enumerate(replicas):
            scope = self.inner.replica_name(index)
            try:
                return self.runtime.call(
                    scope, operation, lambda r=replica: invoke(r)
                )
            except SourceUnavailableError as error:
                # QueryDeadlineError is not caught: out of time means out
                # of time on every replica.
                last_error = error
                if index + 1 < len(replicas):
                    self.runtime.stats.record_shard(failovers=1)
        raise SourceUnavailableError(
            f"every replica of {self.name!r} failed {operation}: {last_error}",
            source=self.name,
            attempts=len(replicas),
        ) from last_error

    def document(self, name: str) -> DataNode:
        return self._failover("document", lambda r: r.document(name))

    def ident_index(self) -> Dict[str, DataNode]:
        return self._failover("ident_index", lambda r: r.ident_index())

    def execute_pushed(
        self, plan: Plan, outer: Optional[Row] = None
    ) -> Tuple[Tab, str]:
        return self._failover(
            "execute_pushed", lambda r: r.execute_pushed(plan, outer)
        )
