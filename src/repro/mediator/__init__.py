"""The YAT mediator (paper, Section 2, Figure 2)."""

from repro.mediator.catalog import Catalog
from repro.mediator.execution import ExecutionReport, run_plan
from repro.mediator.mediator import Mediator, QueryResult
from repro.mediator.views import VIEW_SOURCE, ViewRegistry

__all__ = [
    "Catalog",
    "ExecutionReport",
    "Mediator",
    "QueryResult",
    "VIEW_SOURCE",
    "ViewRegistry",
    "run_plan",
]
