"""The YAT mediator (paper, Section 2, Figure 2)."""

from repro.core.algebra.scheduling import ExecutionPolicy
from repro.mediator.catalog import Catalog
from repro.mediator.execution import ExecutionReport, run_plan
from repro.mediator.mediator import Mediator, QueryResult
from repro.mediator.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    SourceOutcome,
)
from repro.mediator.result_cache import CachedResult, ResultCache
from repro.mediator.views import (
    VIEW_SOURCE,
    MaterializedViewSource,
    ViewRegistry,
)
from repro.observability.explain import Explanation

__all__ = [
    "Explanation",
    "CachedResult",
    "Catalog",
    "CircuitBreaker",
    "ExecutionPolicy",
    "ExecutionReport",
    "MaterializedViewSource",
    "Mediator",
    "QueryResult",
    "ResiliencePolicy",
    "ResultCache",
    "RetryPolicy",
    "SourceOutcome",
    "VIEW_SOURCE",
    "ViewRegistry",
    "run_plan",
]
