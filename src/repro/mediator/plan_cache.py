"""The mediator's compile-once plan cache.

Planning a YAT_L query is expensive relative to executing it on the
paper's workloads: the text is lexed and parsed, views are composed,
source selectivities are probed, and three optimizer rounds run.  The
:class:`PlanCache` amortizes all of that across repeated queries the way
a prepared-statement cache does:

* queries are keyed by their *normalized* form
  (:func:`repro.yatl.normalize.normalize_query`), so queries differing
  only in constants share an entry;
* the mediator's **catalog epoch** (bumped by ``connect`` /
  ``load_program`` / ``declare_containment``) and **statistics version**
  are part of the key, so a stale plan can never serve;
* on a hit whose constants differ from the cached ones, the cached plan
  is **rebound**: a structural walk replaces every parameter-tagged
  constant with the fresh value, sharing all untouched subtrees (which
  keeps the compiled-kernel memo warm for unchanged Bind filters).

The cache is LRU-bounded and counts hits / misses / invalidations /
rebinds for the ``yat_*`` metrics and ``EXPLAIN`` output.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.algebra.expressions import (
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    FunCall,
)
from repro.core.algebra.operators import (
    BindOp,
    JoinOp,
    MapOp,
    Plan,
    PushedOp,
    SelectOp,
)
from repro.model.filters import FConst, FDescend, FElem, Filter, FStar
from repro.yatl.normalize import NormalizedQuery, param_slot

__all__ = ["CachedPlan", "PlanCache", "rebind_plan"]


def _rebind_filter(
    flt: Filter, values: Tuple[object, ...]
) -> Tuple[Filter, bool]:
    if isinstance(flt, FConst):
        slot = param_slot(flt.value)
        if slot is not None:
            return FConst(values[slot]), True
        return flt, False
    if isinstance(flt, FElem):
        rebuilt = [_rebind_filter(child, values) for child in flt.children]
        if any(changed for _child, changed in rebuilt):
            children = [child for child, _changed in rebuilt]
            return FElem(flt.label, children, var=flt.var), True
        return flt, False
    if isinstance(flt, FStar):
        inner, changed = _rebind_filter(flt.child, values)
        return (FStar(inner), True) if changed else (flt, False)
    if isinstance(flt, FDescend):
        inner, changed = _rebind_filter(flt.child, values)
        return (FDescend(inner), True) if changed else (flt, False)
    return flt, False


def _rebind_expr(expr: Expr, values: Tuple[object, ...]) -> Tuple[Expr, bool]:
    if isinstance(expr, Const):
        slot = param_slot(expr.value)
        if slot is not None:
            return Const(values[slot]), True
        return expr, False
    if isinstance(expr, Cmp):
        left, lc = _rebind_expr(expr.left, values)
        right, rc = _rebind_expr(expr.right, values)
        if lc or rc:
            return Cmp(expr.op, left, right), True
        return expr, False
    if isinstance(expr, (BoolAnd, BoolOr)):
        rebuilt = [_rebind_expr(operand, values) for operand in expr.operands]
        if any(changed for _operand, changed in rebuilt):
            return type(expr)([operand for operand, _c in rebuilt]), True
        return expr, False
    if isinstance(expr, BoolNot):
        inner, changed = _rebind_expr(expr.operand, values)
        return (BoolNot(inner), True) if changed else (expr, False)
    if isinstance(expr, FunCall):
        rebuilt = [_rebind_expr(arg, values) for arg in expr.args]
        if any(changed for _arg, changed in rebuilt):
            return FunCall(expr.name, [arg for arg, _c in rebuilt]), True
        return expr, False
    return expr, False


def _rebind_plan(plan: Plan, values: Tuple[object, ...]) -> Tuple[Plan, bool]:
    if isinstance(plan, BindOp):
        inner, input_changed = _rebind_plan(plan.input, values)
        flt, filter_changed = _rebind_filter(plan.filter, values)
        if input_changed or filter_changed:
            return BindOp(inner, flt, plan.on, keep_on=plan.keep_on), True
        return plan, False
    if isinstance(plan, SelectOp):
        inner, input_changed = _rebind_plan(plan.input, values)
        predicate, predicate_changed = _rebind_expr(plan.predicate, values)
        if input_changed or predicate_changed:
            return SelectOp(inner, predicate), True
        return plan, False
    if isinstance(plan, JoinOp):
        left, lc = _rebind_plan(plan.left, values)
        right, rc = _rebind_plan(plan.right, values)
        predicate, pc = _rebind_expr(plan.predicate, values)
        if lc or rc or pc:
            return JoinOp(left, right, predicate), True
        return plan, False
    if isinstance(plan, MapOp):
        inner, input_changed = _rebind_plan(plan.input, values)
        rebuilt = [
            (name, _rebind_expr(expr, values)) for name, expr in plan.bindings
        ]
        if input_changed or any(c for _n, (_e, c) in rebuilt):
            bindings = [(name, expr) for name, (expr, _c) in rebuilt]
            return MapOp(inner, bindings), True
        return plan, False
    if isinstance(plan, PushedOp):
        # The pushed fragment is opaque to ``children()``; recurse into it
        # explicitly.  Any pre-rendered native text would embed the old
        # constants, so a changed fragment drops it (wrappers regenerate
        # native text at call time anyway).
        inner, changed = _rebind_plan(plan.plan, values)
        if changed:
            return PushedOp(plan.source, inner, native=None), True
        return plan, False
    children = plan.children()
    if not children:
        return plan, False
    rebuilt = [_rebind_plan(child, values) for child in children]
    if any(changed for _child, changed in rebuilt):
        return plan.with_children([child for child, _c in rebuilt]), True
    return plan, False


def rebind_plan(plan: Plan, values: Tuple[object, ...]) -> Plan:
    """*plan* with every parameter-tagged constant replaced from *values*.

    Untouched subtrees are returned by identity, so per-plan-node memos
    (compiled kernels) stay warm for the parts that did not change.
    """
    rebound, _changed = _rebind_plan(plan, values)
    return rebound


class CachedPlan:
    """One cache entry: the plans as built for a specific value vector."""

    __slots__ = ("naive", "plan", "trace", "values")

    def __init__(
        self, naive: Plan, plan: Plan, trace, values: Tuple[object, ...]
    ) -> None:
        self.naive = naive
        self.plan = plan
        self.trace = trace
        self.values = values


class PlanCache:
    """LRU cache of optimized plans keyed by normalized query shape.

    Also memoizes *parsing*: :meth:`normalized` maps raw query text to
    its :class:`~repro.yatl.normalize.NormalizedQuery`, so a repeated
    ``Mediator.query(text)`` skips the lexer entirely.
    """

    __slots__ = (
        "capacity",
        "hits",
        "misses",
        "invalidations",
        "rebinds",
        "_entries",
        "_texts",
        "_text_capacity",
        "_lock",
    )

    def __init__(self, capacity: int = 128, text_capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.rebinds = 0
        self._entries: "OrderedDict[tuple, CachedPlan]" = OrderedDict()
        self._texts: "OrderedDict[str, NormalizedQuery]" = OrderedDict()
        self._text_capacity = max(text_capacity, capacity)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def normalized(self, text: str) -> Optional[NormalizedQuery]:
        """The memoized normalization of *text*, or ``None`` if unseen."""
        with self._lock:
            entry = self._texts.get(text)
            if entry is not None:
                self._texts.move_to_end(text)
            return entry

    def remember_text(self, text: str, normalized: NormalizedQuery) -> None:
        with self._lock:
            self._texts[text] = normalized
            self._texts.move_to_end(text)
            while len(self._texts) > self._text_capacity:
                self._texts.popitem(last=False)

    def lookup(self, key: tuple) -> Optional[CachedPlan]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def record_rebind(self) -> None:
        """Count one constant-rebinding hit (mutation stays under the
        cache lock, so concurrent sessions never lose increments)."""
        with self._lock:
            self.rebinds += 1

    def store(self, key: tuple, entry: CachedPlan) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every entry (catalog changed; keys would be stale)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self._texts.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "rebinds": self.rebinds,
            }

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses}, rebinds={self.rebinds})"
        )
