"""View registration and composition.

An integration program (``view1.yat``) defines named views as YAT_L
rules; user queries may then MATCH a view name exactly as they would a
source document.  Composition is *syntactic*: the ``Source`` leaf that
reads the view is replaced by the view's own plan, producing the naive
"materialize then query" expression on the left of Figure 8 — which
round one of the optimizer then collapses.
"""

from __future__ import annotations

from typing import Dict, Tuple

from typing import List

from repro.errors import ViewError
from repro.core.algebra.operators import FuseOp, Plan, SourceOp

#: The pseudo-source name used for documents that are mediator views.
VIEW_SOURCE = "mediator"


class ViewRegistry:
    """Named view plans (each a ``Tree``-rooted plan producing the view).

    Several rules may share one name: their partial results are fused
    through Skolem functions (paper, Section 2), so a program can build
    one document from multiple MATCH/MAKE rules.
    """

    def __init__(self) -> None:
        self._rules: Dict[str, List[Plan]] = {}

    def define(self, name: str, plan: Plan) -> None:
        if name not in plan.output_columns():
            raise ViewError(
                f"view plan for {name!r} must produce a column named {name!r}; "
                f"it produces {plan.output_columns()}"
            )
        self._rules.setdefault(name, []).append(plan)

    def __contains__(self, name: str) -> bool:
        return name in self._rules

    def plan(self, name: str) -> Plan:
        try:
            plans = self._rules[name]
        except KeyError:
            raise ViewError(f"unknown view: {name!r}") from None
        if len(plans) == 1:
            return plans[0]
        return FuseOp(plans, name)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._rules)

    def compose(self, plan: Plan, _expanding: frozenset = frozenset()) -> Plan:
        """Replace every ``Source(mediator.<view>)`` leaf by the view plan."""
        if isinstance(plan, SourceOp):
            if plan.source == VIEW_SOURCE:
                if plan.document not in self._rules:
                    raise ViewError(f"unknown view: {plan.document!r}")
                if plan.document in _expanding:
                    raise ViewError(
                        f"view {plan.document!r} is recursively defined"
                    )
                # Views may reference other views: compose recursively.
                return self.compose(
                    self.plan(plan.document),
                    _expanding | {plan.document},
                )
            return plan
        children = plan.children()
        if not children:
            return plan
        new_children = [self.compose(child, _expanding) for child in children]
        if all(new is old for new, old in zip(new_children, children)):
            return plan
        return plan.with_children(new_children)
