"""View registration, composition and materialization.

An integration program (``view1.yat``) defines named views as YAT_L
rules; user queries may then MATCH a view name exactly as they would a
source document.  Composition is *syntactic*: the ``Source`` leaf that
reads the view is replaced by the view's own plan, producing the naive
"materialize then query" expression on the left of Figure 8 — which
round one of the optimizer then collapses.

A view may additionally be declared **materialized**
(:meth:`ViewRegistry.materialize`): its plan is executed once, the
constructed document kept, and every later query MATCHing it is served
through the ordinary Bind–Source path against the kept document instead
of re-splicing (and re-executing) the view plan.  The kept document is
tagged with the ``data_version()`` vector of the base sources the view
reads, captured before the refresh executed; a query that finds the
live vector elsewhere triggers a lazy refresh, so a source update is
visible on the very next query and an unchanged federation never pays
the view again.  :class:`MaterializedViewSource` is the evaluator-facing
adapter that serves those documents under the ``mediator`` pseudo-source
name.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import ViewError
from repro.core.algebra.evaluator import SourceAdapter
from repro.core.algebra.operators import FuseOp, Plan, SourceOp

#: The pseudo-source name used for documents that are mediator views.
VIEW_SOURCE = "mediator"


class MaterializedView:
    """Cached state of one materialized view (filled in lazily)."""

    __slots__ = ("name", "document", "versions", "refreshes", "serves", "lock")

    def __init__(self, name: str) -> None:
        self.name = name
        #: The constructed view document, or ``None`` before first use.
        self.document = None
        #: ``((source, data_version), ...)`` the document was built from,
        #: captured *before* the refresh executed (stale-tag safe: an
        #: update racing the refresh makes the document look stale, never
        #: lets a stale document serve as fresh).
        self.versions: Optional[tuple] = None
        self.refreshes = 0
        self.serves = 0
        #: Single-flight per view: concurrent stale reads refresh once.
        self.lock = threading.Lock()


class ViewRegistry:
    """Named view plans (each a ``Tree``-rooted plan producing the view).

    Several rules may share one name: their partial results are fused
    through Skolem functions (paper, Section 2), so a program can build
    one document from multiple MATCH/MAKE rules.
    """

    def __init__(self) -> None:
        self._rules: Dict[str, List[Plan]] = {}
        self._materialized: Dict[str, MaterializedView] = {}
        #: Memo of :meth:`refresh_plan` / :meth:`base_sources` per view;
        #: cleared whenever a definition or declaration changes.
        self._refresh_plans: Dict[str, Plan] = {}
        self._base_sources: Dict[str, FrozenSet[str]] = {}

    def define(self, name: str, plan: Plan) -> None:
        if name not in plan.output_columns():
            raise ViewError(
                f"view plan for {name!r} must produce a column named {name!r}; "
                f"it produces {plan.output_columns()}"
            )
        self._rules.setdefault(name, []).append(plan)
        self._refresh_plans.clear()
        self._base_sources.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._rules

    def plan(self, name: str) -> Plan:
        try:
            plans = self._rules[name]
        except KeyError:
            raise ViewError(f"unknown view: {name!r}") from None
        if len(plans) == 1:
            return plans[0]
        return FuseOp(plans, name)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._rules)

    def compose(self, plan: Plan, _expanding: frozenset = frozenset()) -> Plan:
        """Replace every ``Source(mediator.<view>)`` leaf by the view plan.

        Materialized views are the exception: their leaves stay in the
        plan and are served as ordinary documents by
        :class:`MaterializedViewSource` at execution time.
        """
        if isinstance(plan, SourceOp):
            if plan.source == VIEW_SOURCE:
                if plan.document not in self._rules:
                    raise ViewError(f"unknown view: {plan.document!r}")
                if plan.document in _expanding:
                    raise ViewError(
                        f"view {plan.document!r} is recursively defined"
                    )
                if plan.document in self._materialized:
                    return plan
                # Views may reference other views: compose recursively.
                return self.compose(
                    self.plan(plan.document),
                    _expanding | {plan.document},
                )
            return plan
        children = plan.children()
        if not children:
            return plan
        new_children = [self.compose(child, _expanding) for child in children]
        if all(new is old for new, old in zip(new_children, children)):
            return plan
        return plan.with_children(new_children)

    # -- materialization ----------------------------------------------------------

    def materialize(self, name: str) -> None:
        """Declare *name* materialized (populated lazily on first use)."""
        if name not in self._rules:
            raise ViewError(f"unknown view: {name!r}")
        if name not in self._materialized:
            self._materialized[name] = MaterializedView(name)
            self._refresh_plans.clear()
            self._base_sources.clear()

    def is_materialized(self, name: str) -> bool:
        return name in self._materialized

    def has_materialized(self) -> bool:
        return bool(self._materialized)

    def materialized_names(self) -> Tuple[str, ...]:
        return tuple(self._materialized)

    def materialized_entry(self, name: str) -> MaterializedView:
        try:
            return self._materialized[name]
        except KeyError:
            raise ViewError(f"view {name!r} is not materialized") from None

    def reset_materialized(self) -> None:
        """Drop every kept document (catalog changed; keep declarations)."""
        for entry in self._materialized.values():
            with entry.lock:
                entry.document = None
                entry.versions = None
        self._refresh_plans.clear()
        self._base_sources.clear()

    def refresh_plan(self, name: str) -> Plan:
        """The executable plan that (re)builds materialized view *name*.

        The view's own definition is spliced (non-materialized inner
        views expand recursively); *other* materialized views it reads
        stay as ``Source(mediator.*)`` leaves and are served — and
        refreshed — through the adapter, so a chain of materialized
        views refreshes level by level.
        """
        memo = self._refresh_plans.get(name)
        if memo is None:
            memo = self._refresh_plans[name] = self.compose(
                self.plan(name), _expanding=frozenset({name})
            )
        return memo

    def base_sources(self, name: str, _seen: frozenset = frozenset()) -> FrozenSet[str]:
        """The real source names view *name* transitively reads."""
        if _seen == frozenset():
            memo = self._base_sources.get(name)
            if memo is not None:
                return memo
        names: Set[str] = set()
        for node in self.refresh_plan(name).walk():
            source = getattr(node, "source", None)
            if source is None:
                continue
            if source == VIEW_SOURCE:
                inner = node.document
                if inner != name and inner not in _seen:
                    names |= self.base_sources(inner, _seen | {name})
            else:
                names.add(source)
        result = frozenset(names)
        if _seen == frozenset():
            self._base_sources[name] = result
        return result

    def materialized_stats(self) -> Dict[str, int]:
        """Counters for the ``yat_view_*`` metrics family."""
        declared = len(self._materialized)
        populated = refreshes = serves = 0
        for entry in self._materialized.values():
            if entry.document is not None:
                populated += 1
            refreshes += entry.refreshes
            serves += entry.serves
        return {
            "declared": declared,
            "populated": populated,
            "refreshes": refreshes,
            "serves": serves,
        }


class MaterializedViewSource(SourceAdapter):
    """Evaluator adapter serving materialized view documents.

    Registered under :data:`VIEW_SOURCE` by the mediator whenever at
    least one view is materialized; ``document()`` delegates back to the
    mediator, which refreshes lazily when the view's base-source version
    vector moved.  References inside a view document are resolved
    through the base sources' identifier indexes (all connected adapters
    contribute to the evaluation environment's merged index), so this
    adapter exports none of its own.
    """

    def __init__(self, mediator) -> None:
        self._mediator = mediator

    def document_names(self) -> Tuple[str, ...]:
        return self._mediator.views.materialized_names()

    def document(self, name: str):
        return self._mediator.materialized_document(name)

    def ident_index(self) -> dict:
        return {}

    def execute_pushed(self, plan: Plan, outer=None):
        raise ViewError(
            "materialized views declare no native capabilities; "
            "nothing can be pushed to them"
        )
