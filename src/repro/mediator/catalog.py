"""The mediator's catalog: imported interfaces and connected adapters.

"cluet runs a yat mediator, connects both wrappers ..., imports the
structural and query capabilities of the two connected systems" (paper,
Section 2, Figure 2).  Importing goes through the XML wire format: the
catalog stores the interface *as re-parsed from the wrapper's XML
export*, never a shared Python object, so the mediator only ever knows
what the protocol can express.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import MediatorError, UnknownSourceError
from repro.capabilities.interface import SourceInterface
from repro.capabilities.xml_codec import xml_to_interface
from repro.core.algebra.evaluator import SourceAdapter
from repro.wrappers.base import Wrapper


class Catalog:
    """Connected sources: adapters for evaluation, interfaces for planning."""

    def __init__(self) -> None:
        self._adapters: Dict[str, SourceAdapter] = {}
        self._interfaces: Dict[str, SourceInterface] = {}
        self._document_sources: Dict[str, str] = {}

    # -- connection -----------------------------------------------------------

    def connect(self, wrapper: Wrapper) -> SourceInterface:
        """Connect a wrapper and import its capabilities (via XML)."""
        if wrapper.name in self._adapters:
            raise MediatorError(f"source {wrapper.name!r} already connected")
        interface = xml_to_interface(wrapper.interface_xml())
        if interface.name != wrapper.name:
            raise MediatorError(
                f"wrapper {wrapper.name!r} exported an interface named "
                f"{interface.name!r}"
            )
        for document in interface.documents:
            if document in self._document_sources:
                raise MediatorError(
                    f"document {document!r} is exported by both "
                    f"{self._document_sources[document]!r} and {wrapper.name!r}"
                )
            self._document_sources[document] = wrapper.name
        self._adapters[wrapper.name] = wrapper
        self._interfaces[wrapper.name] = interface
        return interface

    # -- lookups -----------------------------------------------------------------

    def adapter(self, source: str) -> SourceAdapter:
        try:
            return self._adapters[source]
        except KeyError:
            raise UnknownSourceError(f"source {source!r} is not connected") from None

    def interface(self, source: str) -> SourceInterface:
        try:
            return self._interfaces[source]
        except KeyError:
            raise UnknownSourceError(f"source {source!r} is not connected") from None

    def adapters(self) -> Dict[str, SourceAdapter]:
        return dict(self._adapters)

    def interfaces(self) -> Dict[str, SourceInterface]:
        return dict(self._interfaces)

    def source_of_document(self, document: str) -> Optional[str]:
        """The source exporting *document*, or ``None``."""
        return self._document_sources.get(document)

    def document_names(self) -> Tuple[str, ...]:
        return tuple(self._document_sources)

    def source_names(self) -> Tuple[str, ...]:
        return tuple(self._adapters)
