"""The mediator's catalog: imported interfaces and connected adapters.

"cluet runs a yat mediator, connects both wrappers ..., imports the
structural and query capabilities of the two connected systems" (paper,
Section 2, Figure 2).  Importing goes through the XML wire format: the
catalog stores the interface *as re-parsed from the wrapper's XML
export*, never a shared Python object, so the mediator only ever knows
what the protocol can express.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import MediatorError, UnknownSourceError
from repro.capabilities.interface import SourceInterface
from repro.capabilities.xml_codec import xml_to_interface
from repro.core.algebra.evaluator import SourceAdapter
from repro.wrappers.base import Wrapper


class Catalog:
    """Connected sources: adapters for evaluation, interfaces for planning."""

    def __init__(self) -> None:
        self._adapters: Dict[str, SourceAdapter] = {}
        self._interfaces: Dict[str, SourceInterface] = {}
        self._document_sources: Dict[str, str] = {}
        self._topologies: Dict[str, object] = {}

    # -- connection -----------------------------------------------------------

    def connect(self, wrapper: Wrapper) -> SourceInterface:
        """Connect a wrapper and import its capabilities (via XML)."""
        if wrapper.name in self._adapters:
            raise MediatorError(f"source {wrapper.name!r} already connected")
        interface = xml_to_interface(wrapper.interface_xml())
        if interface.name != wrapper.name:
            raise MediatorError(
                f"wrapper {wrapper.name!r} exported an interface named "
                f"{interface.name!r}"
            )
        for document in interface.documents:
            if document in self._document_sources:
                raise MediatorError(
                    f"document {document!r} is exported by both "
                    f"{self._document_sources[document]!r} and {wrapper.name!r}"
                )
            self._document_sources[document] = wrapper.name
        self._adapters[wrapper.name] = wrapper
        self._interfaces[wrapper.name] = interface
        return interface

    def connect_sharded(
        self, logical: str, shards: Sequence[SourceAdapter], partition
    ) -> Tuple[SourceInterface, ...]:
        """Connect N shard adapters as one sharded logical source.

        The shard adapters register under the shard names
        ``logical#0 .. logical#N-1`` together with their imported
        interfaces — pruned scatter branches and their pushed fragments
        target the shards.  The exported documents are claimed by the
        *logical* name, which gets a
        :class:`~repro.sources.sharded.adapter.ShardedSourceAdapter`
        (shard-major concatenation) plus the shards' *common* interface
        re-imported under the logical name: shards are homogeneous, so
        the logical source supports exactly what shard 0 declared, and
        type-driven planning treats it like any other source.  A
        fragment pushed to the logical source (possible only when shard
        expansion declined the chain) is scattered by the adapter.
        """
        from repro.sources.sharded import (
            ShardedSourceAdapter,
            ShardTopology,
            shard_name,
        )

        shards = tuple(shards)
        names = tuple(shard_name(logical, index) for index in range(len(shards)))
        topology = ShardTopology(logical, partition, names)
        if logical in self._adapters:
            raise MediatorError(f"source {logical!r} already connected")
        interfaces: Dict[str, SourceInterface] = {}
        documents: Optional[Tuple[str, ...]] = None
        for name, adapter in zip(names, shards):
            if name in self._adapters:
                raise MediatorError(f"source {name!r} already connected")
            interface = xml_to_interface(adapter.interface_xml())
            if interface.name != name:
                raise MediatorError(
                    f"shard adapter {name!r} exported an interface named "
                    f"{interface.name!r}"
                )
            if documents is None:
                documents = tuple(interface.documents)
            elif tuple(interface.documents) != documents:
                raise MediatorError(
                    f"shards of {logical!r} disagree on exported documents: "
                    f"{documents!r} vs {tuple(interface.documents)!r}"
                )
            interfaces[name] = interface
        for document in documents or ():
            if document in self._document_sources:
                raise MediatorError(
                    f"document {document!r} is exported by both "
                    f"{self._document_sources[document]!r} and {logical!r}"
                )
        logical_adapter = ShardedSourceAdapter(logical, shards)
        # The logical source's interface is shard 0's, re-imported under
        # the logical name (a fresh parse, so renaming it is safe).
        logical_interface = xml_to_interface(shards[0].interface_xml())
        logical_interface.name = logical
        for name, adapter in zip(names, shards):
            self._adapters[name] = adapter
            self._interfaces[name] = interfaces[name]
        for document in documents or ():
            self._document_sources[document] = logical
        self._adapters[logical] = logical_adapter
        self._interfaces[logical] = logical_interface
        self._topologies[logical] = topology
        return tuple(interfaces[name] for name in names)

    # -- lookups -----------------------------------------------------------------

    def adapter(self, source: str) -> SourceAdapter:
        try:
            return self._adapters[source]
        except KeyError:
            raise UnknownSourceError(f"source {source!r} is not connected") from None

    def interface(self, source: str) -> SourceInterface:
        try:
            return self._interfaces[source]
        except KeyError:
            raise UnknownSourceError(f"source {source!r} is not connected") from None

    def adapters(self) -> Dict[str, SourceAdapter]:
        return dict(self._adapters)

    def interfaces(self) -> Dict[str, SourceInterface]:
        return dict(self._interfaces)

    def source_of_document(self, document: str) -> Optional[str]:
        """The source exporting *document*, or ``None``."""
        return self._document_sources.get(document)

    def shard_topologies(self) -> Dict[str, object]:
        """``{logical source name: ShardTopology}`` of sharded sources."""
        return dict(self._topologies)

    def document_names(self) -> Tuple[str, ...]:
        return tuple(self._document_sources)

    def source_names(self) -> Tuple[str, ...]:
        return tuple(self._adapters)
