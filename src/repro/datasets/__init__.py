"""Synthetic datasets for the paper's running example."""

from repro.datasets.cultural import (
    ARTISTS,
    CulturalDataset,
    art_schema,
    small_figure1_pair,
)
from repro.datasets.paper_queries import Q1, Q2, VIEW1_YAT

__all__ = [
    "ARTISTS",
    "CulturalDataset",
    "Q1",
    "Q2",
    "VIEW1_YAT",
    "art_schema",
    "small_figure1_pair",
]
