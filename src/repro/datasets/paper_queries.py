"""The paper's YAT_L artifacts, verbatim (in this library's dialect).

``VIEW1_YAT`` is the integration program of Section 2 (view1.yat);
``Q1`` and ``Q2`` are the user queries whose optimization Figures 8 and 9
walk through.  Tests, examples and benchmarks all import them from here
so every part of the reproduction runs the same text.
"""

#: Section 2: the artworks() view combining both sources.
VIEW1_YAT = """
artworks() :=
MAKE doc [ *&artwork($t, $c) :=
    work [ title: $t, artist: $a, year: $y, price: $p,
           style: $s, size: $si, owners [ *$o ], more: $fields ] ]
MATCH artifacts WITH
    set *class: artifact:
             tuple [ title: $t, year: $y, creator: $c, price: $p,
                     owners: list *class: person:
                        tuple [ name: $o, auction: $au ] ],
      artworks WITH
    works *work [ artist: $a, title: $t', style: $s, size: $si, *($fields) ]
WHERE $y > 1800 AND $c = $a AND $t = $t'
"""

#: Section 2 / Figure 8: "What are the artifacts created at 'Giverny'?"
Q1 = """
MAKE $t
MATCH artworks WITH doc . work [ title . $t, more . cplace . $cl ]
WHERE $cl = "Giverny"
"""

#: Section 5.3 / Figure 9: "Which impressionist artworks are sold for
#: less than 2,000,000.00?" (constant scaled to the synthetic prices).
Q2 = """
MAKE doc [ * item [ title: $t, artist: $a, price: $p ] ]
MATCH artworks WITH doc . work [ title . $t, artist . $a, style . $s, price . $p ]
WHERE $s = "Impressionist" AND $p < 2000000.0
"""
