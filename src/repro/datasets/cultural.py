"""Synthetic cultural-goods data (paper, Figure 1).

The paper's running example integrates two sources about cultural goods:

* an O2 object database of trading information — ``artifact`` objects
  with title, year, creator, price and a list of ``person`` owners;
* a Wais-indexed XML repository of descriptive documents — ``work``
  elements with mandatory artist/title/style/size plus optional fields
  (``cplace``, ``history`` with nested ``technique``).

:class:`CulturalDataset` generates both, deterministically from a seed,
with the cross-source consistency the paper's Figure 8 step assumes: by
default every artifact has a matching work and vice versa ("all artifacts
are available in the XML source"), and every year is greater than 1800 so
the view's ``$y > 1800`` selection keeps everything.  ``extra_works``
adds works with no artifact counterpart for experiments that must violate
the containment.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.model.trees import DataNode, atom_leaf, elem
from repro.sources.objectdb.database import ObjectDatabase, Oid
from repro.sources.objectdb.schema import (
    AtomicType,
    ClassDef,
    CollectionType,
    MethodDef,
    RefType,
    Schema,
    TupleType,
)
from repro.sources.relational.engine import SqlColumn, SqlDatabase, SqlTable
from repro.sources.wais.store import WaisStore

ARTISTS = (
    "Claude Monet",
    "Berthe Morisot",
    "Camille Pissarro",
    "Edgar Degas",
    "Mary Cassatt",
    "Auguste Renoir",
    "Gustave Caillebotte",
    "Alfred Sisley",
)

STYLES = ("Impressionist", "Baroque", "Cubist", "Romantic", "Realist")

PLACES = ("Giverny", "Paris", "Argenteuil", "Pontoise", "Louveciennes")

TECHNIQUES = ("Oil on canvas", "Watercolor", "Pastel", "Gouache")

TITLE_NOUNS = (
    "Nympheas", "Bridge", "Garden", "Harbor", "Cathedral",
    "Haystacks", "Poplars", "Station", "Boulevard", "Terrace",
)


def art_schema() -> Schema:
    """The Figure 3 schema: Artifact and Person classes with extents."""
    schema = Schema("art")
    person_type = TupleType(
        [
            ("name", AtomicType("String")),
            ("auction", AtomicType("Float")),
        ]
    )
    artifact_type = TupleType(
        [
            ("title", AtomicType("String")),
            ("year", AtomicType("Int")),
            ("creator", AtomicType("String")),
            ("price", AtomicType("Float")),
            ("owners", CollectionType("list", RefType("person"))),
        ]
    )
    schema.add_class(ClassDef("person", person_type, extent="persons"))
    schema.add_class(ClassDef("artifact", artifact_type, extent="artifacts"))
    schema.add_method(
        MethodDef(
            "current_price",
            "artifact",
            AtomicType("Float"),
            _current_price,
        )
    )
    return schema


def _current_price(database: ObjectDatabase, oid: str) -> float:
    """The Section 4 example method: list price plus a 10% premium."""
    return round(database.get(oid).values["price"] * 1.1, 2)


class CulturalDataset:
    """Deterministic generator for the two-source cultural-goods setup."""

    def __init__(
        self,
        n_artifacts: int = 50,
        extra_works: int = 0,
        impressionist_fraction: float = 0.3,
        cplace_probability: float = 0.4,
        history_probability: float = 0.3,
        owners_per_artifact: int = 2,
        seed: int = 20000516,  # SIGMOD 2000, Dallas
    ) -> None:
        self.n_artifacts = n_artifacts
        self.extra_works = extra_works
        self.impressionist_fraction = impressionist_fraction
        self.cplace_probability = cplace_probability
        self.history_probability = history_probability
        self.owners_per_artifact = owners_per_artifact
        self.seed = seed

    # -- generation ---------------------------------------------------------------

    def build(self) -> Tuple[ObjectDatabase, WaisStore]:
        """Build the object database and the Wais store, consistently."""
        rng = random.Random(self.seed)
        database = ObjectDatabase(art_schema())
        store = WaisStore(collection_label="works")

        person_oids = self._insert_persons(database, rng)
        for index in range(self.n_artifacts):
            title = self._title(index)
            artist = ARTISTS[index % len(ARTISTS)]
            style = self._style(index, rng)
            year = 1801 + (index * 7) % 199  # always > 1800
            price = round(50_000 + rng.random() * 2_000_000, 2)
            owners = rng.sample(
                person_oids, k=min(self.owners_per_artifact, len(person_oids))
            )
            database.insert(
                "artifact",
                {
                    "title": title,
                    "year": year,
                    "creator": artist,
                    "price": price,
                    "owners": [Oid(oid) for oid in owners],
                },
            )
            store.add(self._work(title, artist, style, rng))
        for index in range(self.extra_works):
            title = self._title(self.n_artifacts + index)
            artist = ARTISTS[(self.n_artifacts + index) % len(ARTISTS)]
            style = self._style(self.n_artifacts + index, rng)
            store.add(self._work(title, artist, style, rng))
        return database, store

    def build_sales(self, database: ObjectDatabase) -> SqlDatabase:
        """A relational ``sales`` table mirroring the artifacts.

        Used by the SQL-wrapper experiments: same information, different
        data model, same wrapping machinery.
        """
        sql = SqlDatabase("salesdb")
        sql.create_table(
            SqlTable(
                "sales",
                [
                    SqlColumn("title", "String"),
                    SqlColumn("creator", "String"),
                    SqlColumn("year", "Int"),
                    SqlColumn("price", "Float"),
                ],
            )
        )
        rows = []
        for obj in database.objects():
            if obj.class_name != "artifact":
                continue
            rows.append(
                {
                    "title": obj.values["title"],
                    "creator": obj.values["creator"],
                    "year": obj.values["year"],
                    "price": obj.values["price"],
                }
            )
        sql.insert_rows("sales", rows)
        return sql

    # -- pieces ----------------------------------------------------------------------

    def _insert_persons(self, database: ObjectDatabase, rng: random.Random) -> List[str]:
        count = max(3, self.n_artifacts // 3)
        oids = []
        for index in range(count):
            oids.append(
                database.insert(
                    "person",
                    {
                        "name": f"Collector {index + 1}",
                        "auction": round(10_000 + rng.random() * 5_000_000, 2),
                    },
                )
            )
        return oids

    def _title(self, index: int) -> str:
        noun = TITLE_NOUNS[index % len(TITLE_NOUNS)]
        series = index // len(TITLE_NOUNS) + 1
        return f"{noun} No. {series}"

    def _style(self, index: int, rng: random.Random) -> str:
        if rng.random() < self.impressionist_fraction:
            return "Impressionist"
        others = [s for s in STYLES if s != "Impressionist"]
        return others[index % len(others)]

    def _work(
        self, title: str, artist: str, style: str, rng: random.Random
    ) -> DataNode:
        children = [
            atom_leaf("artist", artist),
            atom_leaf("title", title),
            atom_leaf("style", style),
            atom_leaf("size", f"{rng.randint(20, 90)} x {rng.randint(20, 90)}"),
        ]
        if rng.random() < self.cplace_probability:
            children.append(atom_leaf("cplace", rng.choice(PLACES)))
        if rng.random() < self.history_probability:
            children.append(
                elem(
                    "history",
                    atom_leaf("technique", rng.choice(TECHNIQUES)),
                    atom_leaf("note", f"Painted by {artist}"),
                )
            )
        return elem("work", *children)


def small_figure1_pair() -> Tuple[ObjectDatabase, WaisStore]:
    """The literal Figure 1 data: Nympheas and Waterloo Bridge.

    Handy for doctest-sized examples and exact-output tests.
    """
    database = ObjectDatabase(art_schema())
    p1 = database.insert("person", {"name": "Collector 1", "auction": 900_000.0})
    p2 = database.insert("person", {"name": "Collector 2", "auction": 1_200_000.0})
    p3 = database.insert("person", {"name": "Doctor X", "auction": 1_500_000.0})
    database.insert(
        "artifact",
        {
            "title": "Nympheas",
            "year": 1897,
            "creator": "Claude Monet",
            "price": 2_000_000.0,
            "owners": [Oid(p1), Oid(p2), Oid(p3)],
        },
        oid="a1",
    )
    database.insert(
        "artifact",
        {
            "title": "Waterloo Bridge",
            "year": 1900,
            "creator": "Claude Monet",
            "price": 1_750_000.0,
            "owners": [Oid(p2)],
        },
        oid="a2",
    )
    store = WaisStore(collection_label="works")
    store.add(
        elem(
            "work",
            atom_leaf("artist", "Claude Monet"),
            atom_leaf("title", "Nympheas"),
            atom_leaf("style", "Impressionist"),
            atom_leaf("size", "21 x 61"),
            atom_leaf("cplace", "Giverny"),
        )
    )
    store.add(
        elem(
            "work",
            atom_leaf("artist", "Claude Monet"),
            atom_leaf("title", "Waterloo Bridge"),
            atom_leaf("style", "Impressionist"),
            atom_leaf("size", "29.2 x 46.4"),
            elem(
                "history",
                atom_leaf("technique", "Oil on canvas"),
                atom_leaf("note", "Painted with oil on canvas in London"),
            ),
        )
    )
    return database, store
