"""Query observability: operator tracing, metrics, EXPLAIN / EXPLAIN ANALYZE.

The paper's evaluation (Sections 5-6, Figures 8-9) argues about *where
work happens* — which subplans run natively at a source, how many round
trips information passing costs, how much data crosses each wrapper
boundary.  :class:`~repro.core.algebra.stats.ExecutionStats` reports
those quantities only in aggregate; this package makes the shape of an
execution observable:

* :mod:`repro.observability.tracer` — a low-overhead hierarchical span
  tracer (operator kind, plan node, rows, bytes, source calls, cache
  hits, retries, thread, wall/CPU time) with thread-aware parenting and
  Chrome-trace JSON export;
* :mod:`repro.observability.metrics` — a dependency-free metrics
  registry (counters, gauges, histograms with deterministic bucket
  bounds) with Prometheus text exposition and a per-source /
  per-operator taxonomy fed from execution reports;
* :mod:`repro.observability.explain` — the EXPLAIN / EXPLAIN ANALYZE
  renderer behind :meth:`repro.mediator.mediator.Mediator.explain` and
  the ``python -m repro.explain`` CLI.

Tracing is strictly opt-in: every hook starts with a single ``tracer is
None`` check, so the default path stays within noise of the
pre-instrumentation evaluator (see
``benchmarks/bench_observability_overhead.py``) and produces
byte-identical answers.
"""

from repro.observability.context import (
    RequestContext,
    activate_compile_kernels,
    activate_context,
    activate_tracer,
    current_compile_kernels,
    current_context,
    current_tracer,
)
from repro.observability.explain import Explanation, NodeActuals, collect_actuals, render_plan
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_execution,
    record_memo_stats,
)
from repro.observability.tracer import Span, Tracer

__all__ = [
    "Counter",
    "Explanation",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NodeActuals",
    "RequestContext",
    "Span",
    "Tracer",
    "activate_compile_kernels",
    "activate_context",
    "activate_tracer",
    "collect_actuals",
    "current_compile_kernels",
    "current_context",
    "current_tracer",
    "record_execution",
    "record_memo_stats",
    "render_plan",
]
