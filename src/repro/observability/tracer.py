"""Hierarchical execution spans with thread-aware parenting.

A :class:`Tracer` records one span per traced unit of work — an operator
evaluation, a guarded source call, a wrapper-side fragment execution —
with wall and thread-CPU time, the owning thread, and free-form
attributes (plan node, rows in/out, bytes, source, cache hits, retries).
Parenting is thread-aware: each thread keeps its own stack of open
spans, and :meth:`Tracer.bind` carries the dispatching thread's open
span into scheduler pool threads, so branches evaluated concurrently by
:class:`~repro.core.algebra.scheduling.PlanScheduler` nest under the
operator that dispatched them exactly as they would serially.

Design constraints, in order:

1. **Zero cost when off.**  The evaluator holds ``tracer = env.tracer``
   and skips everything on ``None``; no tracer object, no clock reads.
2. **Determinism when serial.**  Span ids are sequential, spans are
   recorded in start order, and :meth:`Tracer.structure` projects a
   trace onto its timing-free shape — two runs under
   ``ExecutionPolicy.serial()`` produce identical structures.
3. **Tool-friendly export.**  :meth:`Tracer.chrome_trace` emits the
   Chrome/Perfetto ``traceEvents`` JSON (load in ``chrome://tracing``).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer"]


def _thread_cpu() -> float:
    """Per-thread CPU seconds (falls back to process CPU off-POSIX)."""
    try:
        return time.thread_time()
    except (AttributeError, OSError):  # pragma: no cover - exotic platforms
        return time.process_time()


class Span:
    """One traced unit of work; finished spans are immutable in practice."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "kind",
        "start",
        "end",
        "cpu_start",
        "cpu_end",
        "thread_name",
        "attrs",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        start: float,
        cpu_start: float,
        attrs: Dict[str, object],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.cpu_start = cpu_start
        self.cpu_end: Optional[float] = None
        self.thread_name = threading.current_thread().name
        self.attrs = attrs
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def cpu_time(self) -> float:
        """Thread-CPU seconds spent inside the span."""
        return 0.0 if self.cpu_end is None else self.cpu_end - self.cpu_start

    def annotate(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)
        return self

    def add(self, key: str, amount: int = 1) -> None:
        """Increment a numeric attribute (creating it at 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount  # type: ignore[operator]

    def finish(self) -> "Span":
        self._tracer._finish(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self.finish()

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.2f}ms" if self.end is not None else "open"
        return f"Span(#{self.span_id} {self.kind}:{self.name}, {state})"


class Tracer:
    """Collects spans for one or more executions.

    One tracer may observe several queries (its spans accumulate); a
    fresh tracer per query gives per-query traces.  All methods are
    thread-safe; the per-thread open-span stack lives in a
    ``threading.local``.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = _thread_cpu,
    ) -> None:
        self.clock = clock
        self.cpu_clock = cpu_clock
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self._epoch = clock()

    # -- span lifecycle -------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start(
        self,
        name: str,
        kind: str = "span",
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Span:
        """Open a span (child of *parent* or of the thread's current span)."""
        if parent is None:
            parent = self.current()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                self,
                span_id,
                parent.span_id if parent is not None else None,
                name,
                kind,
                self.clock(),
                self.cpu_clock(),
                dict(attrs),
            )
            self.spans.append(span)
        self._stack().append(span)
        return span

    def span(self, name: str, kind: str = "span", **attrs: object) -> Span:
        """Context-manager alias for :meth:`start` (``with tracer.span(...)``)."""
        return self.start(name, kind, **attrs)

    def _finish(self, span: Span) -> None:
        span.end = self.clock()
        span.cpu_end = self.cpu_clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced finish; drop it and everything above
            del stack[stack.index(span):]

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the current span, if one is open."""
        span = self.current()
        if span is not None:
            span.annotate(**attrs)

    # -- cross-thread propagation ---------------------------------------------

    def bind(self, thunk: Callable[[], object]) -> Callable[[], object]:
        """Wrap *thunk* so it runs under this thread's current span.

        The scheduler submits bound thunks to its pool: whichever thread
        executes one (a pool thread, or the dispatching thread itself on
        the reclaim path) sees the dispatching thread's open span as its
        parent and this tracer as the thread-local active tracer.
        """
        from repro.observability.context import set_tracer

        parent = self.current()

        def bound() -> object:
            previous_tracer = set_tracer(self)
            stack = self._stack()
            depth = len(stack)
            if parent is not None:
                stack.append(parent)
            try:
                return thunk()
            finally:
                del stack[depth:]
                set_tracer(previous_tracer)

        return bound

    # -- inspection -----------------------------------------------------------

    def structure(self) -> Tuple[tuple, ...]:
        """The timing-free shape of the trace: nested
        ``(name, kind, attrs, children)`` tuples in start order.

        Thread names, span ids, clock readings and plan-node ids are
        excluded, so two serial runs of the same plan compare equal.
        """
        with self._lock:
            spans = list(self.spans)
        children: Dict[Optional[int], List[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)

        volatile = {"node", "thread"}

        def project(span: Span) -> tuple:
            attrs = tuple(
                sorted(
                    (key, value)
                    for key, value in span.attrs.items()
                    if key not in volatile
                )
            )
            nested = tuple(
                project(child) for child in children.get(span.span_id, ())
            )
            return (span.name, span.kind, attrs, nested)

        return tuple(project(span) for span in children.get(None, ()))

    def total_wall(self) -> float:
        """Wall seconds covered by root spans (no parent)."""
        return sum(s.duration for s in self.spans if s.parent_id is None)

    # -- export ---------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, object]:
        """The trace as a Chrome/Perfetto ``traceEvents`` dictionary."""
        with self._lock:
            spans = list(self.spans)
        tids: Dict[str, int] = {}
        events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": "yat-mediator"},
            }
        ]
        for span in spans:
            tid = tids.setdefault(span.thread_name, len(tids) + 1)
            args = {
                key: value
                if isinstance(value, (bool, int, float, str)) or value is None
                else repr(value)
                for key, value in span.attrs.items()
            }
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args["cpu_ms"] = round(span.cpu_time * 1e3, 4)
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": round((span.start - self._epoch) * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "args": args,
                }
            )
        for name, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Write :meth:`chrome_trace` as JSON to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def __repr__(self) -> str:
        return f"Tracer({len(self)} spans)"
