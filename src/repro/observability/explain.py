"""EXPLAIN / EXPLAIN ANALYZE rendering of mediator plans.

The paper's Figures 8 and 9 are *plan narratives*: which subplan went
native at which source, what the wrapper was asked in its own language,
and how much work was left for the mediator.  This module renders
exactly that view from a live plan:

* :func:`render_plan` — the optimized algebra tree, annotated with the
  pushdown decisions (``Pushed`` fragments show their native OQL / SQL /
  Wais text and their subtree is marked as running at the source);
* :class:`NodeActuals` / :func:`collect_actuals` — per-plan-node actuals
  (evaluations, rows out, inclusive wall/CPU time, source calls, bytes,
  cache hits) aggregated from a :class:`~repro.observability.tracer.Tracer`;
* :class:`Explanation` — what :meth:`Mediator.explain` returns: the
  rendered text plus every ingredient (plans, rewrite trace, execution
  report, tracer), so tests and tools can inspect rather than re-parse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.algebra.operators import Plan, PushedOp, SourceOp

__all__ = ["Explanation", "NodeActuals", "collect_actuals", "render_plan"]


class NodeActuals:
    """Aggregated measurements for one plan node across its evaluations.

    ``wall`` / ``cpu`` are *inclusive* (they contain the node's inputs),
    matching the convention of SQL ``EXPLAIN ANALYZE`` actual times; a
    node evaluated many times (the right branch of a DJoin) sums over
    evaluations.
    """

    __slots__ = ("evals", "rows", "wall", "cpu", "calls", "bytes",
                 "cache_hits", "index_seeks", "index_hits",
                 "twig_matches", "twig_fallbacks", "batch_rows", "native")

    def __init__(self) -> None:
        self.evals = 0
        self.rows = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.calls = 0
        self.bytes = 0
        self.cache_hits = 0
        self.index_seeks = 0
        self.index_hits = 0
        self.twig_matches = 0
        self.twig_fallbacks = 0
        self.batch_rows = 0
        #: First native query text this node executed (``Pushed`` only).
        self.native: Optional[str] = None

    def describe(self) -> str:
        parts = [
            f"evals={self.evals}",
            f"rows={self.rows}",
            f"time={self.wall * 1e3:.2f}ms",
        ]
        if self.calls:
            parts.append(f"calls={self.calls}")
        if self.bytes:
            parts.append(f"bytes={self.bytes}")
        if self.cache_hits:
            parts.append(f"cache={self.cache_hits}")
        if self.index_seeks:
            parts.append(f"seeks={self.index_seeks}")
            parts.append(f"seek_hits={self.index_hits}")
        if self.twig_matches:
            parts.append(f"twig={self.twig_matches}")
            if self.twig_fallbacks:
                parts.append(f"twig_fallbacks={self.twig_fallbacks}")
        if self.batch_rows:
            parts.append(f"batch={self.batch_rows}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"NodeActuals({self.describe()})"


def collect_actuals(tracer) -> Dict[int, NodeActuals]:
    """Aggregate a tracer's operator spans by plan node.

    Keys are the ``id()`` of the plan-node objects the evaluator traced,
    so callers index with ``actuals[id(node)]`` while walking the same
    plan object that was executed.
    """
    actuals: Dict[int, NodeActuals] = {}
    for span in tracer.spans:
        node = span.attrs.get("node")
        if span.kind != "operator" or not isinstance(node, int) or span.end is None:
            continue
        entry = actuals.get(node)
        if entry is None:
            entry = actuals[node] = NodeActuals()
        entry.evals += 1
        entry.wall += span.duration
        entry.cpu += span.cpu_time
        rows = span.attrs.get("rows")
        if isinstance(rows, int):
            entry.rows += rows
        entry.calls += int(span.attrs.get("calls", 0))  # type: ignore[arg-type]
        entry.bytes += int(span.attrs.get("bytes", 0))  # type: ignore[arg-type]
        entry.cache_hits += int(span.attrs.get("cache_hits", 0))  # type: ignore[arg-type]
        entry.index_seeks += int(span.attrs.get("index_seeks", 0))  # type: ignore[arg-type]
        entry.index_hits += int(span.attrs.get("index_hits", 0))  # type: ignore[arg-type]
        entry.twig_matches += int(span.attrs.get("twig_matches", 0))  # type: ignore[arg-type]
        entry.twig_fallbacks += int(span.attrs.get("twig_fallbacks", 0))  # type: ignore[arg-type]
        entry.batch_rows += int(span.attrs.get("batch_rows", 0))  # type: ignore[arg-type]
        native = span.attrs.get("native")
        if entry.native is None and isinstance(native, str):
            entry.native = native
    return actuals


def _plan_rows(
    plan: Plan,
    depth: int,
    actuals: Optional[Dict[int, NodeActuals]],
    out: List[Tuple[str, str]],
    native_at: Optional[str],
    access_paths: Optional[Dict[int, str]] = None,
) -> None:
    pad = "  " * depth
    if native_at is not None:
        annotation = f"runs at {native_at}"
        if access_paths is not None:
            access = access_paths.get(id(plan))
            if access:
                annotation = f"{annotation}, {access}"
        out.append((f"{pad}{plan.describe()}", annotation))
        for child in plan.children():
            _plan_rows(child, depth + 1, actuals, out, native_at, access_paths)
        return
    if isinstance(plan, PushedOp):
        annotation = ""
        entry = None
        if actuals is not None:
            entry = actuals.get(id(plan))
            annotation = entry.describe() if entry is not None else "(not evaluated)"
        out.append((f"{pad}Pushed@{plan.source}", annotation))
        if plan.native:
            out.append((f"{pad}  native: {plan.native}", ""))
        elif entry is not None and entry.native is not None:
            # Parameterized fragment: the native text is generated per
            # call (information passing); show the first instantiation.
            label = "native" if entry.evals == 1 else f"native (1 of {entry.evals})"
            out.append((f"{pad}  {label}: {entry.native}", ""))
        _plan_rows(plan.plan, depth + 1, actuals, out, plan.source, access_paths)
        return
    parts = []
    if access_paths is not None:
        access = access_paths.get(id(plan))
        if access:
            parts.append(access)
    if actuals is not None:
        entry = actuals.get(id(plan))
        parts.append(entry.describe() if entry is not None else "(not evaluated)")
    out.append((f"{pad}{plan.describe()}", " ".join(parts)))
    for child in plan.children():
        _plan_rows(child, depth + 1, actuals, out, None, access_paths)


def render_plan(
    plan: Plan,
    actuals: Optional[Dict[int, NodeActuals]] = None,
    access_paths: Optional[Dict[int, str]] = None,
) -> str:
    """The plan tree, one node per line, actuals right-aligned when given.

    ``access_paths`` maps plan-node ids to the optimizer's chosen Bind
    access path (``bind: index-seek on (artist,'Picasso')`` / ``bind:
    scan``); the text joins the annotation column.
    """
    rows: List[Tuple[str, str]] = []
    _plan_rows(plan, 0, actuals, rows, None, access_paths)
    if not any(annotation for _text, annotation in rows):
        return "\n".join(text for text, _annotation in rows)
    # Align the annotation column on the annotated lines only; a long
    # un-annotated line (a native query text) shouldn't push it out.
    width = max(len(text) for text, annotation in rows if annotation) + 2
    lines = []
    for text, annotation in rows:
        if annotation:
            lines.append(f"{text.ljust(width)}[{annotation}]")
        else:
            lines.append(text)
    return "\n".join(lines)


def _pushdown_lines(
    plan: Plan, actuals: Optional[Dict[int, NodeActuals]] = None
) -> List[str]:
    """One line per planning decision that touches a source."""
    lines: List[str] = []
    for node in plan.walk():
        if isinstance(node, PushedOp):
            native = node.native
            if native is None and actuals is not None:
                entry = actuals.get(id(node))
                if entry is not None and entry.native is not None:
                    native = entry.native
            native = native or "(native text generated at call time)"
            lines.append(f"pushed to {node.source}: {native}")
        elif isinstance(node, SourceOp):
            lines.append(
                f"full document transfer: {node.source}.{node.document}"
            )
    return lines


class Explanation:
    """Everything :meth:`Mediator.explain` learned about one query."""

    __slots__ = (
        "query", "naive_plan", "plan", "rewrites", "report", "tracer",
        "cached", "access_paths", "result_cached", "materialized_views",
    )

    def __init__(
        self,
        query: str,
        naive_plan: Plan,
        plan: Plan,
        rewrites,
        report=None,
        tracer=None,
        cached: bool = False,
        access_paths: Optional[Dict[int, str]] = None,
        result_cached: bool = False,
        materialized_views: Tuple[str, ...] = (),
    ) -> None:
        self.query = query
        self.naive_plan = naive_plan
        self.plan = plan
        self.rewrites = rewrites
        #: ``{id(plan node): "bind: index-seek on ..."}`` — the access
        #: path the cost model chose for each Bind in the plan.
        self.access_paths = access_paths
        #: :class:`~repro.mediator.execution.ExecutionReport` under
        #: ``analyze=True``; ``None`` for plain EXPLAIN.
        self.report = report
        #: The :class:`~repro.observability.tracer.Tracer` that observed
        #: the ANALYZE execution (chrome-trace it, feed it to metrics).
        self.tracer = tracer
        #: True when the plan was served from the mediator's plan cache.
        self.cached = cached
        #: True when the *answer* came (ANALYZE) or would come (plain
        #: EXPLAIN) from the mediator's result cache.
        self.result_cached = result_cached
        #: Names of materialized views the plan reads as documents
        #: instead of splicing their plans.
        self.materialized_views = materialized_views

    @property
    def analyze(self) -> bool:
        return self.report is not None

    def actuals(self) -> Optional[Dict[int, NodeActuals]]:
        return collect_actuals(self.tracer) if self.tracer is not None else None

    def render(self) -> str:
        lines: List[str] = []
        lines.append("EXPLAIN ANALYZE" if self.analyze else "EXPLAIN")
        rewrites = len(self.rewrites) if self.rewrites is not None else 0
        if self.cached:
            # Only emitted on an actual cache hit, so a fresh mediator
            # renders identically every time.
            lines.append("plan: cached")
        if self.result_cached:
            lines.append("result: cached")
        for view in self.materialized_views:
            lines.append(f"view: materialized ({view})")
        lines.append(f"plan ({rewrites} rewrites applied):")
        actuals = self.actuals()
        lines.append(render_plan(self.plan, actuals, self.access_paths))
        pushdown = _pushdown_lines(self.plan, actuals)
        if pushdown:
            lines.append("")
            lines.append("pushdown decisions:")
            lines.extend(f"  {line}" for line in pushdown)
        if self.report is not None:
            lines.append("")
            lines.append("execution:")
            degraded = "  (DEGRADED: partial answer)" if self.report.degraded else ""
            lines.append(
                f"  rows: {len(self.report.tab)}  "
                f"elapsed: {self.report.elapsed * 1e3:.2f} ms{degraded}"
            )
            for stat_line in self.report.stats.summary().splitlines():
                lines.append(f"  {stat_line}")
            executed = self.report.stats.distinct_native_queries()
            if executed:
                lines.append("  native queries executed:")
                shown = executed[:8]
                for source, native in shown:
                    lines.append(f"    {source}: {native}")
                if len(executed) > len(shown):
                    lines.append(
                        f"    ... and {len(executed) - len(shown)} more"
                    )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        mode = "analyze" if self.analyze else "plan-only"
        return f"Explanation({mode}, {len(self.rewrites or ())} rewrites)"
