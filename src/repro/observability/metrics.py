"""Counters, gauges and histograms with Prometheus text exposition.

A dependency-free metrics registry shaped like ``prometheus_client``:
:meth:`MetricsRegistry.counter` / :meth:`gauge` / :meth:`histogram`
declare metric families (optionally labelled), and
:meth:`MetricsRegistry.exposition` renders the whole registry in the
Prometheus text format (version 0.0.4) — ready to serve from a
``/metrics`` endpoint or scrape off disk.

Determinism matters here the same way it does for the tracer: histogram
bucket bounds are fixed at declaration (the default
:data:`DURATION_BUCKETS` ladder never depends on observed data), and the
exposition sorts families by name and children by label values, so two
identical runs expose byte-identical text.

:func:`record_execution` maps one
:class:`~repro.mediator.execution.ExecutionReport` onto the standard
``yat_*`` taxonomy — per-source transfer/call/retry counters, per-operator
evaluation counters, and per-operator wall-time histograms when the
report carries a trace.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "record_execution",
    "record_memo_stats",
    "record_plan_cache",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Deterministic latency ladder (seconds): half-decade steps from 0.5 ms
#: to 10 s.  Chosen once; never derived from observed values.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Deterministic size ladder (bytes): powers of four from 256 B to 64 MB.
SIZE_BUCKETS: Tuple[float, ...] = tuple(256.0 * 4 ** i for i in range(10))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class _Metric:
    """One child of a family: a concrete label-value combination."""

    __slots__ = ("family", "label_values")

    def __init__(self, family: "_Family", label_values: Tuple[str, ...]) -> None:
        self.family = family
        self.label_values = label_values


class Counter(_Metric):
    """Monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, family: "_Family", label_values: Tuple[str, ...]) -> None:
        super().__init__(family, label_values)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self.family.registry._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Metric):
    """A value that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self, family: "_Family", label_values: Tuple[str, ...]) -> None:
        super().__init__(family, label_values)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self.family.registry._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self.family.registry._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Metric):
    """Cumulative-bucket histogram over fixed, declaration-time bounds."""

    __slots__ = ("_counts", "_sum", "_count")

    def __init__(self, family: "_Family", label_values: Tuple[str, ...]) -> None:
        super().__init__(family, label_values)
        self._counts = [0] * len(family.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self.family.registry._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.family.buckets):
                if value <= bound:
                    self._counts[index] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> Tuple[int, ...]:
        """Cumulative counts per bucket bound (excluding ``+Inf``)."""
        return tuple(self._counts)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """A named metric with a fixed label schema and typed children."""

    __slots__ = ("registry", "name", "help", "kind", "labelnames", "buckets",
                 "_children")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = (),
    ) -> None:
        self.registry = registry
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], _Metric] = {}

    def labels(self, *values: object, **kwvalues: object) -> _Metric:
        """The child for one label-value combination (created on demand)."""
        if kwvalues:
            if values:
                raise ValueError("pass label values positionally or by name")
            try:
                values = tuple(str(kwvalues[name]) for name in self.labelnames)
            except KeyError as missing:
                raise ValueError(f"missing label {missing} for {self.name}") from None
            if len(kwvalues) != len(self.labelnames):
                raise ValueError(f"unexpected labels for {self.name}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {values!r}"
            )
        with self.registry._lock:
            child = self._children.get(values)
            if child is None:
                child = _KINDS[self.kind](self, values)
                self._children[values] = child
            return child

    def _default(self) -> _Metric:
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled {self.labelnames}; call .labels(...)"
            )
        return self.labels()

    # Unlabelled families act as their own single child.
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        self._default().set(value)  # type: ignore[attr-defined]

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        self._default().observe(value)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        return self._default().value  # type: ignore[attr-defined]

    def children(self) -> List[_Metric]:
        with self.registry._lock:
            return [self._children[key] for key in sorted(self._children)]


class MetricsRegistry:
    """A process-local collection of metric families."""

    def __init__(self, namespace: str = "") -> None:
        if namespace and not _NAME_RE.match(namespace):
            raise ValueError(f"invalid metric namespace {namespace!r}")
        self.namespace = namespace
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}

    def _declare(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Iterable[str],
        buckets: Tuple[float, ...] = (),
    ) -> _Family:
        if self.namespace:
            name = f"{self.namespace}_{name}"
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} re-declared with a different schema"
                    )
                return family
            family = _Family(self, name, help_text, kind, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()) -> _Family:
        return self._declare(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()) -> _Family:
        return self._declare(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DURATION_BUCKETS,
    ) -> _Family:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        return self._declare(name, help_text, "histogram", labelnames, bounds)

    # -- exposition -----------------------------------------------------------

    def exposition(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        for family in families:
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                labels = _format_labels(family.labelnames, child.label_values)
                if family.kind == "histogram":
                    cumulative = child.bucket_counts()  # type: ignore[attr-defined]
                    for bound, count in zip(family.buckets, cumulative):
                        bucket_labels = _format_labels(
                            family.labelnames + ("le",),
                            child.label_values + (_format_value(bound),),
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {count}"
                        )
                    inf_labels = _format_labels(
                        family.labelnames + ("le",),
                        child.label_values + ("+Inf",),
                    )
                    lines.append(f"{family.name}_bucket{inf_labels} {child.count}")  # type: ignore[attr-defined]
                    lines.append(
                        f"{family.name}_sum{labels} {_format_value(child.sum)}"  # type: ignore[attr-defined]
                    )
                    lines.append(f"{family.name}_count{labels} {child.count}")  # type: ignore[attr-defined]
                else:
                    lines.append(
                        f"{family.name}{labels} {_format_value(child.value)}"  # type: ignore[attr-defined]
                    )
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        """Write :meth:`exposition` to *path* (scrape-off-disk pattern)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.exposition())


# ---------------------------------------------------------------------------
# The standard execution taxonomy
# ---------------------------------------------------------------------------

def record_execution(
    registry: MetricsRegistry,
    report,
    query: Optional[str] = None,
) -> None:
    """Fold one :class:`~repro.mediator.execution.ExecutionReport` into the
    ``yat_*`` metric taxonomy on *registry*.

    Per-source counters come from the report's
    :class:`~repro.core.algebra.stats.ExecutionStats`; per-operator
    wall-time histograms additionally need the report to carry a trace
    (``run_plan(..., tracer=...)`` attaches one).  *query* labels the
    per-query counters (defaults to ``"-"``).
    """
    label = query if query is not None else "-"
    stats = report.stats

    registry.counter(
        "yat_queries_total", "Plan executions recorded.", ("query",)
    ).labels(query=label).inc()
    registry.histogram(
        "yat_query_duration_seconds", "End-to-end plan execution wall time.",
        ("query",),
    ).labels(query=label).observe(report.elapsed)
    registry.counter(
        "yat_query_rows_total", "Result rows produced.", ("query",)
    ).labels(query=label).inc(len(report.tab))
    if report.degraded:
        registry.counter(
            "yat_degraded_queries_total",
            "Executions that returned a partial (degraded) answer.",
            ("query",),
        ).labels(query=label).inc()

    calls = registry.counter(
        "yat_source_calls_total", "Round trips per source.", ("source",)
    )
    rows = registry.counter(
        "yat_source_rows_transferred_total",
        "Rows received across the wrapper boundary.", ("source",),
    )
    transferred = registry.counter(
        "yat_source_bytes_transferred_total",
        "Bytes received across the wrapper boundary.", ("source",),
    )
    retries = registry.counter(
        "yat_source_retries_total", "Retried source calls.", ("source",)
    )
    failures = registry.counter(
        "yat_source_failures_total", "Failed source calls.", ("source",)
    )
    cache_hits = registry.counter(
        "yat_source_cache_hits_total",
        "Round trips avoided by the per-execution call cache.", ("source",),
    )
    for source, count in sorted(stats.source_calls.items()):
        calls.labels(source=source).inc(count)
    for source, count in sorted(stats.rows_transferred.items()):
        rows.labels(source=source).inc(count)
    for source, size in sorted(stats.bytes_transferred.items()):
        transferred.labels(source=source).inc(size)
    for source, count in sorted(stats.retries.items()):
        retries.labels(source=source).inc(count)
    for source, count in sorted(stats.failures.items()):
        failures.labels(source=source).inc(count)
    for source, count in sorted(stats.cache_hits.items()):
        cache_hits.labels(source=source).inc(count)

    evaluations = registry.counter(
        "yat_operator_evaluations_total",
        "Operator evaluations by kind.", ("operator",),
    )
    for operator, count in sorted(stats.operator_counts.items()):
        evaluations.labels(operator=operator).inc(count)
    registry.counter(
        "yat_mediator_rows_total", "Rows processed by mediator-side operators."
    ).inc(stats.mediator_rows)
    registry.counter(
        "yat_djoin_batched_calls_total",
        "DJoin right-branch evaluations served from the batch memo.",
    ).inc(stats.batched_calls)
    registry.counter(
        "yat_parallel_branches_total",
        "Plan branches dispatched to the scheduler pool.",
    ).inc(stats.parallel_branches)
    registry.counter(
        "yat_bind_index_seeks_total",
        "Document-index seeks issued by Bind (associative access).",
    ).inc(stats.bind_index_seeks)
    registry.counter(
        "yat_bind_index_hits_total",
        "Candidate nodes returned by Bind document-index seeks.",
    ).inc(stats.bind_index_hits)
    registry.counter(
        "yat_bind_index_builds_total",
        "Document indexes built lazily during execution.",
    ).inc(stats.bind_index_builds)
    registry.counter(
        "yat_bind_index_build_seconds_total",
        "Wall time spent building document indexes.",
    ).inc(stats.bind_index_build_seconds)
    registry.counter(
        "yat_twig_matches_total",
        "Bind targets matched by the holistic twig join.",
    ).inc(stats.twig_matches)
    registry.counter(
        "yat_twig_bindings_total",
        "Binding tuples produced by the holistic twig join.",
    ).inc(stats.twig_bindings)
    registry.counter(
        "yat_twig_fallbacks_total",
        "Bind targets that fell back to recursive matching.",
    ).inc(stats.twig_fallbacks)
    registry.counter(
        "yat_batch_operators_total",
        "Operator evaluations that ran on columnar batches.",
    ).inc(stats.batch_operators)
    registry.counter(
        "yat_batch_rows_total",
        "Rows carried by columnar batch operator evaluations.",
    ).inc(stats.batch_rows)
    registry.counter(
        "yat_shard_scatter_total",
        "Scatter branches evaluated over sharded logical sources.",
    ).inc(stats.shard_scatter)
    registry.counter(
        "yat_shard_pruned_total",
        "Shard branches skipped by partition-key pruning.",
    ).inc(stats.shard_pruned)
    registry.counter(
        "yat_shard_failovers_total",
        "Shard calls rerouted from a failed replica to the next one.",
    ).inc(stats.shard_failovers)
    registry.counter(
        "yat_store_pushdowns_total",
        "Pushed Binds answered by SQL interval self-joins in a document store.",
    ).inc(stats.store_pushdowns)
    registry.counter(
        "yat_store_scans_total",
        "Pushed Binds that fell back to a hydrated document scan.",
    ).inc(stats.store_scans)
    registry.counter(
        "yat_store_hydrated_nodes_total",
        "Nodes materialized from shredded document-store rows.",
    ).inc(stats.store_hydrated_nodes)
    registry.counter(
        "yat_store_bytes_avoided_total",
        "Serialized bytes pushdowns never transferred (untouched node share).",
    ).inc(stats.store_bytes_avoided)

    trace = getattr(report, "trace", None)
    if trace is not None:
        durations = registry.histogram(
            "yat_operator_duration_seconds",
            "Wall time per operator evaluation (inclusive of children).",
            ("operator",),
        )
        operator_rows = registry.counter(
            "yat_operator_rows_total", "Rows produced per operator kind.",
            ("operator",),
        )
        for span in trace.spans:
            if span.kind != "operator" or span.end is None:
                continue
            durations.labels(operator=str(span.attrs.get("operator", span.name))).observe(
                span.duration
            )
            produced = span.attrs.get("rows")
            if isinstance(produced, int):
                operator_rows.labels(
                    operator=str(span.attrs.get("operator", span.name))
                ).inc(produced)


def record_plan_cache(registry: MetricsRegistry, mediator) -> None:
    """Export a mediator's plan-cache and kernel-cache state as gauges.

    Gauges (not counters) because the numbers are cumulative snapshots
    owned by the cache itself; re-recording overwrites rather than
    double-counts.  A mediator constructed with ``plan_cache_size=0``
    records nothing for the plan-cache family.
    """
    from repro.core.algebra.compiled import kernel_cache_stats
    from repro.model.indexes import index_registry_stats

    cache = getattr(mediator, "plan_cache", None)
    if cache is not None:
        stats = cache.stats()
        gauges = (
            ("yat_plan_cache_entries", "Plans currently cached.", "entries"),
            ("yat_plan_cache_hits", "Plan cache lookups served.", "hits"),
            ("yat_plan_cache_misses", "Plan cache lookups missed.", "misses"),
            ("yat_plan_cache_invalidations",
             "Plans dropped by catalog/statistics invalidation.",
             "invalidations"),
            ("yat_plan_cache_rebinds",
             "Cache hits served by rebinding constants into a cached plan.",
             "rebinds"),
        )
        for name, help_text, field in gauges:
            registry.gauge(name, help_text).set(stats[field])
    result_cache = getattr(mediator, "result_cache", None)
    if result_cache is not None:
        stats = result_cache.stats()
        gauges = (
            ("yat_result_cache_entries", "Answers currently cached.",
             "entries"),
            ("yat_result_cache_bytes",
             "Serialized bytes held by cached answers.", "bytes"),
            ("yat_result_cache_capacity_bytes",
             "Configured result-cache byte bound.", "capacity"),
            ("yat_result_cache_hits",
             "Queries answered without execution.", "hits"),
            ("yat_result_cache_misses", "Result cache lookups missed.",
             "misses"),
            ("yat_result_cache_invalidations",
             "Answers dropped because a source data_version moved.",
             "invalidations"),
            ("yat_result_cache_evictions",
             "Answers evicted to stay under the byte bound.", "evictions"),
            ("yat_result_cache_flight_waits",
             "Concurrent misses that waited on another session's "
             "single-flight execution.", "flight_waits"),
        )
        for name, help_text, field in gauges:
            registry.gauge(name, help_text).set(stats[field])
    views = getattr(mediator, "views", None)
    if views is not None and getattr(views, "has_materialized", None):
        stats = views.materialized_stats()
        gauges = (
            ("yat_view_materialized", "Views declared materialized.",
             "declared"),
            ("yat_view_documents", "Materialized view documents held.",
             "populated"),
            ("yat_view_refreshes",
             "Materialized view refresh executions (cold + stale).",
             "refreshes"),
            ("yat_view_serves",
             "Queries served from a materialized view document.", "serves"),
        )
        for name, help_text, field in gauges:
            registry.gauge(name, help_text).set(stats[field])
    kernels = kernel_cache_stats()
    registry.gauge(
        "yat_compiled_filter_kernels", "Compiled Bind filter kernels held."
    ).set(kernels["filter_kernels"])
    registry.gauge(
        "yat_compiled_predicate_kernels",
        "Compiled Select/Join predicate kernels held.",
    ).set(kernels["predicate_kernels"])
    registry.gauge(
        "yat_kernel_cache_hits", "Kernel lookups served without compiling."
    ).set(kernels["hits"])
    registry.gauge(
        "yat_kernel_compiles", "Kernel compilations performed."
    ).set(kernels["compiles"])
    indexes = index_registry_stats()
    registry.gauge(
        "yat_document_indexes", "Document indexes currently cached."
    ).set(indexes["indexed"])
    registry.gauge(
        "yat_document_index_builds", "Document indexes built since start."
    ).set(indexes["builds"])
    registry.gauge(
        "yat_document_index_hits",
        "Document-index registry lookups served from cache.",
    ).set(indexes["hits"])
    registry.gauge(
        "yat_document_index_build_seconds",
        "Cumulative wall time spent building document indexes.",
    ).set(indexes["build_seconds"])


def record_memo_stats(registry: MetricsRegistry, mediator) -> None:
    """Export every bounded per-process memo as ``yat_memo_*`` gauges.

    Covers the process-wide kernel cache and document-index registry plus
    each connected wrapper's memos (checked fragments, exported
    documents, prepared OQL fragments and their compiled/result memos).
    One family, labelled by memo, so dashboards catch any memo whose
    eviction counter climbs — the signature of a workload churning
    through more distinct queries than the bound can hold.
    """
    from repro.core.algebra.compiled import kernel_cache_stats
    from repro.core.algebra.tab import column_map_stats
    from repro.core.algebra.twig import twig_cache_stats
    from repro.model.indexes import index_registry_stats

    entries = registry.gauge(
        "yat_memo_entries", "Entries currently held per bounded memo.",
        ("memo",),
    )
    capacity = registry.gauge(
        "yat_memo_capacity", "Configured capacity per bounded memo.",
        ("memo",),
    )
    evictions = registry.gauge(
        "yat_memo_evictions_total",
        "Entries evicted per bounded memo since process start.",
        ("memo",),
    )

    def export(memo: str, stats: Dict[str, object]) -> None:
        entries.labels(memo=memo).set(stats.get("entries", 0))
        capacity.labels(memo=memo).set(stats.get("capacity", 0))
        evictions.labels(memo=memo).set(stats.get("evictions", 0))

    kernels = kernel_cache_stats()
    export("kernels", {
        "entries": kernels["filter_kernels"] + kernels["predicate_kernels"],
        "capacity": kernels["capacity"],
        "evictions": kernels["evictions"],
    })
    export("document_indexes", index_registry_stats())
    export("twig_kernels", twig_cache_stats())
    export("column_maps", column_map_stats())
    # Mediator-level answer caches: the result cache is byte-bounded
    # (capacity in bytes), the materialized-view store is bounded by the
    # number of declared views; a refresh replaces (evicts) the old
    # document.  Both export zeros when the feature is off, so the
    # coverage guarantee of the memo family holds for every mediator.
    result_cache = getattr(mediator, "result_cache", None)
    result_stats = result_cache.stats() if result_cache is not None else {}
    export("result_cache", {
        "entries": result_stats.get("entries", 0),
        "capacity": result_stats.get("capacity", 0),
        "evictions": result_stats.get("evictions", 0),
    })
    views = getattr(mediator, "views", None)
    view_stats = (
        views.materialized_stats()
        if views is not None and getattr(views, "materialized_stats", None)
        else {}
    )
    export("materialized_views", {
        "entries": view_stats.get("populated", 0),
        "capacity": view_stats.get("declared", 0),
        "evictions": max(
            0, view_stats.get("refreshes", 0) - view_stats.get("populated", 0)
        ),
    })
    catalog = getattr(mediator, "catalog", None)
    adapters = catalog.adapters() if catalog is not None else {}
    shredded = registry.gauge(
        "yat_store_rows_shredded",
        "Node rows written into a source's document store since process start.",
        ("source",),
    )
    for source, adapter in sorted(adapters.items()):
        memo_stats = getattr(adapter, "memo_stats", None)
        if memo_stats is None:
            continue
        for memo, stats in sorted(memo_stats().items()):
            export(f"{source}.{memo}", stats)
        store_stats = getattr(adapter, "store_stats", None)
        if store_stats is not None:
            shredded.labels(source=source).set(
                store_stats().get("rows_shredded", 0)
            )
