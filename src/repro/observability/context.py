"""Per-request execution context and its cross-boundary propagation.

Earlier revisions carried two independent thread-local slots — the
active tracer and the ``compile_kernels`` flag — across the wrapper
boundary, and kept the per-execution source-call cache as an attribute
of the evaluator's environment.  Three pieces of per-execution state in
three places is exactly the shape that breaks under concurrent serving:
a pool thread that evaluates branches for two different queries must
switch *all* of it atomically, or query A's wrapper calls run with query
B's tracer, kernel mode, or call cache.

This module replaces those slots with one explicit
:class:`RequestContext` — the identity and execution state of a single
request — threaded through ``run_plan``, the evaluator environment, the
scheduler, and (via one thread-local slot, the same pattern
OpenTelemetry uses for context propagation) the wrapper boundary, whose
adapter protocol has no signature to pass it.

``run_plan`` activates the context for the duration of one evaluation;
:meth:`RequestContext.bind` re-activates it inside scheduler pool
threads, so a pool shared by many concurrent requests always observes
the dispatching request's tracer, kernel mode and cache.  When no
context is active, :func:`current_context` is a single thread-local
attribute read returning ``None`` — the disabled fast path.

:func:`current_tracer` / :func:`current_compile_kernels` (and their
``activate_*`` shapes) remain as thin views over the active context, so
wrapper-side call sites and tests keep their historical surface.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.algebra.scheduling import SourceCallCache
    from repro.observability.tracer import Tracer

_local = threading.local()


class RequestContext:
    """Everything one request carries through a federated execution.

    The context is *per request*: the serving layer builds a fresh one
    for every admitted query, and ``run_plan`` builds an anonymous one
    when the caller passes none.  Fields fall in two groups:

    * identity — ``request_id``, ``tenant``, ``priority``: who this
      execution serves, used by serving metrics and admission records;
    * execution state — ``tracer``, ``compile_kernels``, ``call_cache``,
      ``deadline``: the state that used to live in per-thread globals
      and per-environment attributes.  ``deadline`` is *absolute* (on
      the resilience policy's clock, ``time.monotonic`` by default) and
      is folded into the
      :class:`~repro.mediator.resilience.PolicyRuntime` deadline
      machinery by ``run_plan``.

    A context is owned by exactly one in-flight execution at a time;
    reusing one across sequential executions is supported (the call
    cache then spans them — only sound while the sources do not change),
    sharing one between concurrent executions is not.
    """

    __slots__ = (
        "request_id", "tenant", "priority", "deadline",
        "tracer", "compile_kernels", "call_cache",
    )

    def __init__(
        self,
        request_id: Optional[str] = None,
        tenant: str = "default",
        priority: str = "normal",
        deadline: Optional[float] = None,
        tracer: Optional["Tracer"] = None,
        compile_kernels: bool = True,
        call_cache: Optional["SourceCallCache"] = None,
    ) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.priority = priority
        self.deadline = deadline
        self.tracer = tracer
        self.compile_kernels = compile_kernels
        self.call_cache = call_cache

    def replace(self, **overrides) -> "RequestContext":
        """A copy of this context with *overrides* applied."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(overrides)
        return RequestContext(**fields)

    def bind(self, thunk):
        """Wrap *thunk* so it runs with this context active.

        The scheduler binds every submitted thunk: whichever thread
        executes it — a pool thread, or the dispatching thread itself on
        the reclaim path — sees this request's tracer, kernel mode and
        call cache for the duration, and has its previous context
        restored afterwards.
        """

        def bound():
            previous = set_context(self)
            try:
                return thunk()
            finally:
                set_context(previous)

        return bound

    def __repr__(self) -> str:
        ident = self.request_id or "anonymous"
        return (
            f"RequestContext({ident}, tenant={self.tenant!r}, "
            f"priority={self.priority!r}, compile_kernels={self.compile_kernels})"
        )


def current_context() -> Optional[RequestContext]:
    """The request context active on this thread, or ``None``."""
    return getattr(_local, "context", None)


def set_context(context: Optional[RequestContext]) -> Optional[RequestContext]:
    """Install *context* on this thread; returns the previous value."""
    previous = getattr(_local, "context", None)
    _local.context = context
    return previous


@contextmanager
def activate_context(
    context: Optional[RequestContext],
) -> Iterator[Optional[RequestContext]]:
    """Make *context* the thread's active context for the ``with`` body.

    ``activate_context(None)`` is a supported no-op shape, so callers
    can wrap unconditionally instead of branching.
    """
    previous = set_context(context)
    try:
        yield context
    finally:
        set_context(previous)


# ---------------------------------------------------------------------------
# Compatibility views: the historical tracer / kernel-flag surface
# ---------------------------------------------------------------------------

def current_tracer() -> Optional["Tracer"]:
    """The tracer of this thread's active context, or ``None``."""
    context = getattr(_local, "context", None)
    return context.tracer if context is not None else None


def set_tracer(tracer: Optional["Tracer"]) -> Optional["Tracer"]:
    """Make *tracer* this thread's active tracer; returns the previous.

    Contexts may be shared across pool threads, so the active context is
    never mutated: a *derived* context (same request identity, different
    tracer) is installed instead.
    """
    context = getattr(_local, "context", None)
    previous = context.tracer if context is not None else None
    if context is None:
        if tracer is not None:
            _local.context = RequestContext(tracer=tracer)
    elif context.tracer is not tracer:
        _local.context = context.replace(tracer=tracer)
    return previous


@contextmanager
def activate_tracer(tracer: Optional["Tracer"]) -> Iterator[Optional["Tracer"]]:
    """Make *tracer* the thread's active tracer for the ``with`` body."""
    context = getattr(_local, "context", None)
    derived = (
        RequestContext(tracer=tracer)
        if context is None
        else context.replace(tracer=tracer)
    )
    previous = set_context(derived)
    try:
        yield tracer
    finally:
        set_context(previous)


def current_compile_kernels() -> bool:
    """Whether source-side kernel compilation is on for this request.

    Defaults to ``True`` — the same default as
    :class:`~repro.core.algebra.scheduling.ExecutionPolicy` — so direct
    wrapper use outside ``run_plan`` takes the compiled path.
    """
    context = getattr(_local, "context", None)
    return context.compile_kernels if context is not None else True


@contextmanager
def activate_compile_kernels(flag: bool) -> Iterator[bool]:
    """Make *flag* the thread's kernel-compilation mode for the body."""
    context = getattr(_local, "context", None)
    derived = (
        RequestContext(compile_kernels=flag)
        if context is None
        else context.replace(compile_kernels=flag)
    )
    previous = set_context(derived)
    try:
        yield flag
    finally:
        set_context(previous)
