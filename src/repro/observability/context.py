"""Thread-local execution-context propagation (tracer, kernel policy).

Layers that receive an :class:`~repro.core.algebra.evaluator.Environment`
read its ``tracer`` attribute directly, but the wrapper boundary does not
see the environment: the evaluator calls ``adapter.execute_pushed(...)``
and the wrapper has no way to reach the tracer of the execution it is
serving.  This module carries the active tracer in a thread-local slot —
the same pattern OpenTelemetry uses for context propagation — so
:mod:`repro.wrappers.base` can add wrapper-side spans without any
signature change across the adapter protocol.

``run_plan`` activates the tracer for the duration of one evaluation;
:meth:`~repro.observability.tracer.Tracer.bind` re-activates it inside
scheduler pool threads.  When no tracer is active, :func:`current_tracer`
is a single thread-local attribute read returning ``None`` — the
disabled fast path.

The same slot-per-thread pattern carries the execution policy's
``compile_kernels`` flag across the wrapper boundary: wrappers consult
:func:`current_compile_kernels` to decide between their compiled native
path and the interpretive one, so ``ExecutionPolicy.serial()`` (the
differential oracle) stays interpretive end to end.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observability.tracer import Tracer

_local = threading.local()


def current_tracer() -> Optional["Tracer"]:
    """The tracer active on this thread, or ``None`` (tracing disabled)."""
    return getattr(_local, "tracer", None)


def set_tracer(tracer: Optional["Tracer"]) -> Optional["Tracer"]:
    """Install *tracer* on this thread; returns the previous value."""
    previous = getattr(_local, "tracer", None)
    _local.tracer = tracer
    return previous


@contextmanager
def activate_tracer(tracer: Optional["Tracer"]) -> Iterator[Optional["Tracer"]]:
    """Make *tracer* the thread's active tracer for the ``with`` body.

    ``activate_tracer(None)`` is a supported no-op shape, so callers can
    wrap unconditionally instead of branching on whether tracing is on.
    """
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def current_compile_kernels() -> bool:
    """Whether source-side kernel compilation is on for this thread.

    Defaults to ``True`` — the same default as
    :class:`~repro.core.algebra.scheduling.ExecutionPolicy` — so direct
    wrapper use outside ``run_plan`` takes the compiled path.
    """
    return getattr(_local, "compile_kernels", True)


def set_compile_kernels(flag: bool) -> bool:
    """Install *flag* on this thread; returns the previous value."""
    previous = getattr(_local, "compile_kernels", True)
    _local.compile_kernels = flag
    return previous


@contextmanager
def activate_compile_kernels(flag: bool) -> Iterator[bool]:
    """Make *flag* the thread's kernel-compilation mode for the body."""
    previous = set_compile_kernels(flag)
    try:
        yield flag
    finally:
        set_compile_kernels(previous)
