"""The generic wrapper over sqlite-shredded documents.

Where the Wais wrapper can only bind whole ``work`` documents, the
store's pre/post interval encoding supports a qualitatively richer
Fmodel (:func:`~repro.capabilities.fmodel.store_fmodel`): any
literal-labeled element anchors a filter at any depth, leaf contents and
subtrees bind freely, and the descendant axis (``**``) is declared
acceptable everywhere (``descend="any"``) — the first source in this
reproduction to advertise it.

A validated fragment executes through one of two access paths:

``store-pushdown``
    :func:`~repro.store.pushdown.compile_pushdown` translated the filter
    into a SQL interval self-join.  The database returns binding tuples;
    atoms decode straight from the rows and subtree variables hydrate
    lazily — for selective filters a small fraction of the document's
    nodes ever becomes a Python object.

``store-scan``
    The filter left the translatable fragment (``FRest``, label
    variables, lossy constants) or the document holds references/shared
    subtrees, where interval semantics are unsound.  The document is
    hydrated once (memoized per data version) and matched by the same
    engines every in-memory source uses — the compiled twig join when
    the fragment and index qualify, the recursive matcher otherwise —
    so answers are byte-identical to the in-memory path by construction.

The choice is exposed to EXPLAIN as ``[bind: store-pushdown]`` /
``[bind: store-scan]`` via :meth:`StoreWrapper.pushdown_access`, and the
store's counters flow into ``ExecutionStats`` through
:meth:`StoreWrapper.pop_store_stats` after every pushed call.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SourceError
from repro.capabilities.fmodel import store_fmodel
from repro.capabilities.interface import ArgSpec, OperationDecl, SourceInterface
from repro.core.algebra.bind import FilterMatcher
from repro.core.algebra.operators import Plan
from repro.core.algebra.tab import Row, Tab
from repro.core.algebra.twig import compiled_twig
from repro.model.filters import Filter
from repro.model.indexes import document_index
from repro.model.patterns import PAny, PNode, PStar, PatternLibrary
from repro.model.trees import DataNode
from repro.model.values import parse_atom
from repro.sources.stored.source import StoredXmlSource
from repro.store.pushdown import PushdownQuery, compile_pushdown
from repro.wrappers.base import PushedFragment, Wrapper

#: Name of the structural model exported by the wrapper.
STRUCTURE_MODEL = "Store_Structure"


class StoreWrapper(Wrapper):
    """Wraps one :class:`StoredXmlSource` as a YAT source."""

    #: Per-tree binding bound, byte-identical to the matcher's default.
    MAX_MATCHES = 1_000_000

    #: Bound on the compiled-pushdown memo (keyed by filter identity).
    PUSHDOWN_MEMO_CAPACITY = 256

    def __init__(
        self, name: str, source: StoredXmlSource, enable_pushdown: bool = True
    ) -> None:
        super().__init__(name)
        self._source = source
        self._store = source.store
        self._enable_pushdown = enable_pushdown
        #: ``id(filter) -> (filter, compiled-or-None)``; compilation is
        #: pure in the filter and plans replay the same filter objects.
        self._pushdowns: Dict[int, Tuple[Filter, Optional[PushdownQuery]]] = {}
        self._pushdown_evictions = 0

    # -- capability export ------------------------------------------------------

    def build_interface(self) -> SourceInterface:
        interface = SourceInterface(self.name)
        library = PatternLibrary(STRUCTURE_MODEL)
        library.define("document", PAny())
        for name in self._store.document_names():
            if name != "document":
                library.define(
                    name, PNode(self._store.root_label(name), [PStar(PAny())])
                )
        interface.add_structure(library)
        interface.add_fmodel(store_fmodel())
        for name in self._store.document_names():
            pattern = name if name != "document" else "document"
            interface.add_document(name, STRUCTURE_MODEL, pattern)
        interface.add_operation(
            OperationDecl(
                "bind",
                "algebra",
                inputs=[
                    ArgSpec.value(STRUCTURE_MODEL, "document"),
                    ArgSpec.filter("storefmodel", "Felement"),
                ],
                output=ArgSpec.value("yat", "Tab"),
            )
        )
        return interface

    # -- SourceAdapter ------------------------------------------------------------

    def document_names(self) -> Tuple[str, ...]:
        return self._store.document_names()

    def data_version(self) -> int:
        return self._store.version

    def build_document(self, name: str) -> DataNode:
        return self._store.hydrate_document(name)

    def document_stats(self) -> Dict[str, Tuple[int, int]]:
        # Straight from the documents metadata table: size hints cost
        # two indexed reads per document, never a hydration.
        return {
            name: (self._store.byte_size(name), self._store.root_cardinality(name))
            for name in self.document_names()
        }

    def memo_stats(self) -> Dict[str, Dict[str, int]]:
        stats = super().memo_stats()
        hydration = self._store.memo_stats()
        stats["hydration"] = {
            "entries": hydration["entries"],
            "capacity": hydration["capacity"],
            "evictions": hydration["evictions"],
        }
        with self._memo_lock:
            stats["pushdowns"] = {
                "entries": len(self._pushdowns),
                "capacity": self.PUSHDOWN_MEMO_CAPACITY,
                "evictions": self._pushdown_evictions,
            }
        return stats

    def pop_store_stats(self) -> Dict[str, int]:
        """Store counter delta since the last pop (evaluator hook)."""
        return self._store.pop_stats()

    def store_stats(self) -> Dict[str, int]:
        """Cumulative store counters (metrics export)."""
        return self._store.stats()

    # -- access-path choice --------------------------------------------------------

    def compiled_pushdown(self, flt: Filter) -> Optional[PushdownQuery]:
        """Memoized :func:`compile_pushdown` (keyed by filter identity)."""
        with self._memo_lock:
            entry = self._pushdowns.get(id(flt))
            if entry is not None and entry[0] is flt:
                return entry[1]
        compiled = compile_pushdown(flt)
        with self._memo_lock:
            if len(self._pushdowns) >= self.PUSHDOWN_MEMO_CAPACITY:
                self._pushdowns.pop(next(iter(self._pushdowns)))
                self._pushdown_evictions += 1
            self._pushdowns[id(flt)] = (flt, compiled)
        return compiled

    def pushdown_access(self, flt: Filter, document: Optional[str] = None) -> str:
        """The access path a pushed Bind of *flt* would take (EXPLAIN)."""
        if (
            self._enable_pushdown
            and (document is None or self._store.pushdown_safe(document))
            and self.compiled_pushdown(flt) is not None
        ):
            return "store-pushdown"
        return "store-scan"

    # -- pushed execution --------------------------------------------------------------

    def run_fragment(
        self, fragment: PushedFragment, plan: Plan, outer: Optional[Row]
    ) -> Tuple[Tab, str]:
        if fragment.selections or fragment.projection is not None:
            raise SourceError(
                "store sources execute bare Bind fragments only; selections "
                "stay mediator-side"
            )
        columns = plan.output_columns()
        variables = fragment.filter.variables()
        if tuple(columns) != tuple(variables):
            raise SourceError(
                f"store fragments bind exactly the filter variables "
                f"{tuple(variables)}, plan declares {tuple(columns)}"
            )
        document = fragment.document
        compiled = None
        if self._enable_pushdown and self._store.pushdown_safe(document):
            compiled = self.compiled_pushdown(fragment.filter)
        if compiled is not None:
            return self._run_pushdown(document, compiled, columns)
        return self._run_scan(document, fragment.filter, columns)

    def _run_pushdown(
        self, document: str, compiled: PushdownQuery, columns: Tuple[str, ...]
    ) -> Tuple[Tab, str]:
        raw = self._store.fetch_bounded(
            compiled.sql, compiled.bind_params(document), self.MAX_MATCHES
        )
        width = len(compiled.variables)
        touched: Dict[int, int] = {}
        rows = []
        for record in raw:
            cells = []
            for i in range(width):
                pre, kind, vtype, value = record[4 * i : 4 * i + 4]
                if kind == "atom":
                    touched.setdefault(pre, 1)
                    cells.append(parse_atom(vtype, value))
                else:
                    node = self._store.hydrate(document, pre)
                    touched.setdefault(pre, node.size())
                    cells.append(node)
            rows.append(Row(columns, tuple(cells)))
        self._store.note_pushdown(document, sum(touched.values()))
        native = f"store-pushdown {document}: {compiled.sql}"
        return Tab(columns, rows), native

    def _run_scan(
        self, document: str, flt: Filter, columns: Tuple[str, ...]
    ) -> Tuple[Tab, str]:
        root = self.document(document)
        self._store.note_scan(document)
        index, _built = document_index(root)
        usable = index if index is not None and index.covers(root) else None
        twig = compiled_twig(flt)
        if twig is not None and usable is not None:
            rows = [Row(columns, cells) for cells in twig.match(root, usable)]
            engine = "twig"
        else:
            bindings = FilterMatcher(
                max_matches=self.MAX_MATCHES, document_index=usable
            ).match(root, flt)
            rows = [
                Row(columns, tuple(binding[name] for name in columns))
                for binding in bindings
            ]
            engine = "matcher"
        native = f"store-scan {document} ({engine}, full hydration)"
        return Tab(columns, rows), native
