"""The generic O2 wrapper: exports an object database and wraps OQL.

"simeon wraps the O2 object database.  For this, he simply needs to run
the o2-wrapper program that can export structural information from any O2
database ... as well as the system query capabilities (i.e., it wraps
OQL)" (paper, Section 2).

The wrapper is *generic*: everything it exports — schema patterns, the
Fmodel, extents, methods — is derived mechanically from the
:class:`~repro.sources.objectdb.schema.Schema`, with no per-application
code.  Pushed fragments are translated to OQL text (the Section 4.1
example), evaluated by the OQL engine, and returned as a Tab.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import SourceError
from repro.capabilities.fmodel import o2_fmodel
from repro.capabilities.interface import ArgSpec, OperationDecl, SourceInterface
from repro.core.algebra.expressions import (
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    FunCall,
    Var,
)
from repro.core.algebra.operators import Plan
from repro.core.algebra.tab import Row, Tab
from repro.model.filters import (
    FConst,
    FElem,
    Filter,
    FStar,
    FVar,
)
from repro.model.trees import DataNode
from repro.model.values import COLLECTION_KINDS
from repro.sources.objectdb.database import ObjectDatabase, OdmgObject, Oid
from repro.sources.objectdb.oql.ast import (
    OqlAnd,
    OqlCompare,
    OqlLiteral,
    OqlMethodCall,
    OqlNode,
    OqlNot,
    OqlOr,
    OqlPath,
    OqlProjection,
    OqlRange,
    OqlSelect,
)
from repro.sources.objectdb.oql.compiled import CompiledSelect, compile_select
from repro.sources.objectdb.oql.evaluator import evaluate_oql
from repro.observability.context import current_compile_kernels
from repro.wrappers.base import PushedFragment, Wrapper, outer_constant

_ATOMIC_RESULTS = {"Int": "Int", "Float": "Float", "String": "String", "Bool": "Bool"}


class O2Wrapper(Wrapper):
    """Wraps one :class:`ObjectDatabase` as a YAT source."""

    #: Bound on the per-wrapper prepared-fragment memo.
    PREPARED_MEMO_CAPACITY = 256

    def __init__(self, name: str, database: ObjectDatabase) -> None:
        super().__init__(name)
        self._db = database
        #: ``id(plan) -> (plan, prepared)``; the plan reference keeps the
        #: id stable for the lifetime of the entry.
        self._prepared: Dict[int, Tuple[Plan, "_PreparedFragment"]] = {}
        self._prepared_evictions = 0

    # -- capability export ---------------------------------------------------

    def build_interface(self) -> SourceInterface:
        interface = SourceInterface(self.name)
        library = self._db.schema.to_pattern_library()
        interface.add_structure(library)
        interface.add_fmodel(o2_fmodel())
        for extent in self._db.extent_names():
            interface.add_document(extent, library.name, extent)
        interface.add_operation(
            OperationDecl(
                "bind",
                "algebra",
                inputs=[
                    ArgSpec.value(library.name, "Type"),
                    ArgSpec.filter("o2fmodel", "Ftype"),
                ],
                output=ArgSpec.value("yat", "Tab"),
            )
        )
        for operation in ("select", "map", "project"):
            interface.add_operation(OperationDecl(operation, "algebra"))
        for predicate in ("eq", "neq", "lt", "lte", "gt", "gte"):
            interface.add_operation(OperationDecl(predicate, "boolean"))
        for method in self._db.schema.methods.values():
            result_name = getattr(method.result, "name", "Float")
            interface.add_operation(
                OperationDecl(
                    method.name,
                    "method",
                    inputs=[ArgSpec.value(library.name, method.class_name)],
                    output=ArgSpec.leaf(_ATOMIC_RESULTS.get(result_name, "String")),
                )
            )
        return interface

    # -- SourceAdapter ----------------------------------------------------------

    def document_names(self) -> Tuple[str, ...]:
        return self._db.extent_names()

    def data_version(self) -> int:
        return self._db.version

    def build_document(self, name: str) -> DataNode:
        return self._db.export_extent(name)

    def ident_index(self) -> Dict[str, DataNode]:
        return self._db.ident_index()

    # -- pushed execution ----------------------------------------------------------

    def run_fragment(
        self, fragment: PushedFragment, plan: Plan, outer: Optional[Row]
    ) -> Tuple[Tab, str]:
        if current_compile_kernels():
            prepared = self._prepared_fragment(fragment, plan)
            return prepared.run(outer)
        # The interpretive path, byte for byte the seed behavior:
        # translate and evaluate from scratch on every call.
        translator = _OqlTranslator(self._db, fragment.document, outer)
        translator.translate_filter(fragment.filter)
        for predicate in fragment.selections:
            translator.add_predicate(predicate)
        columns = plan.output_columns()
        query = translator.build_select(columns, fragment.projection)
        native = query.text()
        oql_rows = evaluate_oql(query, self._db)
        rows = [
            Row(columns, tuple(self._to_cell(raw.get(c)) for c in columns))
            for raw in oql_rows
        ]
        return Tab(columns, rows), native

    def _prepared_fragment(
        self, fragment: PushedFragment, plan: Plan
    ) -> "_PreparedFragment":
        with self._memo_lock:
            entry = self._prepared.get(id(plan))
            if entry is not None and entry[0] is plan:
                return entry[1]
        prepared = _PreparedFragment(self._db, fragment, plan, self._to_cell)
        with self._memo_lock:
            if len(self._prepared) >= self.PREPARED_MEMO_CAPACITY:
                self._prepared.pop(next(iter(self._prepared)))
                self._prepared_evictions += 1
            self._prepared[id(plan)] = (plan, prepared)
        return prepared

    def memo_stats(self) -> Dict[str, Dict[str, int]]:
        stats = super().memo_stats()
        with self._memo_lock:
            prepared = list(entry[1] for entry in self._prepared.values())
            stats["prepared"] = {
                "entries": len(prepared),
                "capacity": self.PREPARED_MEMO_CAPACITY,
                "evictions": self._prepared_evictions,
            }
        values_evictions = sum(p.values_evictions for p in prepared)
        results_evictions = sum(p.results_evictions for p in prepared)
        stats["oql_values"] = {
            "entries": sum(p.values_entries for p in prepared),
            "capacity": _PreparedFragment.VALUES_MEMO_CAPACITY,
            "evictions": values_evictions,
        }
        stats["oql_results"] = {
            "entries": sum(p.results_entries for p in prepared),
            "capacity": _PreparedFragment.RESULTS_MEMO_CAPACITY,
            "evictions": results_evictions,
        }
        return stats

    def _to_cell(self, value: object):
        if isinstance(value, OdmgObject):
            return self._db.export_object(value.oid)
        if isinstance(value, Oid):
            return self._db.export_object(value.value)
        if isinstance(value, list):
            return tuple(self._to_cell(item) for item in value)
        if isinstance(value, dict):
            raise SourceError("cannot return a bare tuple value from OQL")
        return value


class _OqlTranslator:
    """Builds one OQL select from a pushed fragment.

    Variables of the filter become OQL projections; nested collection
    navigation becomes dependent ``from`` ranges (the OQL counterpart of
    the algebra's DJoin, Section 5.1); mediator predicates translate to
    the ``where`` clause, with outer-row variables inlined as literals
    (information passing).
    """

    def __init__(
        self, database: ObjectDatabase, document: str, outer: Optional[Row]
    ) -> None:
        self._db = database
        self._document = document
        self._outer = outer
        self._ranges: List[OqlRange] = []
        self._projections: Dict[str, OqlNode] = {}
        self._wheres: List[OqlNode] = []
        self._paths: Dict[str, OqlNode] = {}
        self._range_counter = 0

    # -- range allocation -------------------------------------------------------

    def _new_range(self, collection: OqlNode) -> str:
        self._range_counter += 1
        variable = f"R{self._range_counter}"
        self._ranges.append(OqlRange(variable, collection))
        return variable

    # -- filter translation --------------------------------------------------------

    def translate_filter(self, flt: Filter) -> None:
        if not isinstance(flt, FElem) or not isinstance(flt.label, str):
            raise SourceError("O2 filter root must be a concrete element")
        if flt.label not in ("set",) + COLLECTION_KINDS:
            raise SourceError(
                f"O2 filter root must be an extent collection, got {flt.label!r}"
            )
        stars = [item for item in flt.children if isinstance(item, FStar)]
        if len(stars) != 1 or len(flt.children) != 1:
            raise SourceError(
                "O2 extent filter must iterate its members with exactly one star"
            )
        variable = self._new_range(OqlPath(self._document))
        self._class_filter(stars[0].child, OqlPath(variable))

    def _class_filter(self, flt: Filter, base: OqlPath) -> None:
        if isinstance(flt, FVar):
            self._projections[flt.name] = base
            self._paths[flt.name] = base
            return
        if not isinstance(flt, FElem) or flt.label != "class":
            raise SourceError(
                f"expected a class filter over extent members, got {flt!r}"
            )
        if flt.var is not None:
            self._projections[flt.var] = base
            self._paths[flt.var] = base
        if not flt.children:
            return
        if len(flt.children) != 1 or not isinstance(flt.children[0], FElem):
            raise SourceError("a class filter holds exactly one class-name element")
        named = flt.children[0]
        if not isinstance(named.label, str):
            raise SourceError("the class name must be ground in an O2 filter")
        # Class-membership check: only objects of that class match.
        definition = self._db.schema.classes.get(named.label)
        if definition is None:
            raise SourceError(f"unknown class {named.label!r} in pushed filter")
        if len(named.children) != 1:
            raise SourceError("the class-name element holds exactly the tuple filter")
        self._tuple_filter(named.children[0], base)

    def _tuple_filter(self, flt: Filter, base: OqlPath) -> None:
        if not isinstance(flt, FElem) or flt.label != "tuple":
            raise SourceError(f"expected a tuple filter, got {flt!r}")
        for item in flt.children:
            if not isinstance(item, FElem) or not isinstance(item.label, str):
                raise SourceError(
                    "tuple attributes must be ground elements in an O2 filter"
                )
            attribute_path = OqlPath(base.root, base.steps + (item.label,))
            if not item.children:
                continue
            if len(item.children) != 1:
                raise SourceError(
                    f"attribute {item.label!r} admits exactly one content filter"
                )
            self._attribute_content(item.children[0], attribute_path)

    def _attribute_content(self, content: Filter, path: OqlPath) -> None:
        if isinstance(content, FVar):
            self._projections[content.name] = path
            self._paths[content.name] = path
            return
        if isinstance(content, FConst):
            self._wheres.append(OqlCompare("=", path, OqlLiteral(content.value)))
            return
        if isinstance(content, FElem) and isinstance(content.label, str):
            if content.label in COLLECTION_KINDS:
                self._collection_content(content, path)
                return
            if content.label == "class":
                # Direct (single) reference attribute: path navigation
                # dereferences it transparently in the OQL engine.
                self._class_filter(content, path)
                return
            if content.label == "tuple":
                self._tuple_filter(content, path)
                return
        raise SourceError(f"unsupported attribute content filter: {content!r}")

    def _collection_content(self, content: FElem, path: OqlPath) -> None:
        stars = [item for item in content.children if isinstance(item, FStar)]
        if len(stars) != 1 or len(content.children) != 1:
            raise SourceError(
                "a collection filter iterates its members with exactly one star"
            )
        variable = self._new_range(path)
        inner = stars[0].child
        if isinstance(inner, FVar):
            self._projections[inner.name] = OqlPath(variable)
            self._paths[inner.name] = OqlPath(variable)
            return
        self._class_filter(inner, OqlPath(variable))

    # -- per-call specialization ---------------------------------------------------

    def specialized(self, outer: Optional[Row]) -> "_OqlTranslator":
        """A per-call view sharing this translator's structural state.

        The filter translation (ranges, projected paths, constant
        predicates) never depends on the outer row; only predicates added
        afterwards do.  The clone shares those structures read-only and
        gets its own where list and outer row, so one filter translation
        serves every information-passing round trip without mutation —
        which also keeps concurrent DJoin dispatch safe.
        """
        clone = _OqlTranslator.__new__(_OqlTranslator)
        clone._db = self._db
        clone._document = self._document
        clone._outer = outer
        clone._ranges = self._ranges
        clone._projections = self._projections
        clone._paths = self._paths
        clone._wheres = list(self._wheres)
        clone._range_counter = self._range_counter
        return clone

    # -- predicate translation ---------------------------------------------------------

    def add_predicate(self, predicate: Expr) -> None:
        self._wheres.append(self._expr(predicate))

    def _expr(self, expr: Expr) -> OqlNode:
        if isinstance(expr, Var):
            if expr.name in self._paths:
                return self._paths[expr.name]
            return OqlLiteral(outer_constant(self._outer, expr.name))
        if isinstance(expr, Const):
            return OqlLiteral(expr.value)
        if isinstance(expr, Cmp):
            return OqlCompare(expr.op, self._expr(expr.left), self._expr(expr.right))
        if isinstance(expr, BoolAnd):
            return OqlAnd([self._expr(op) for op in expr.operands])
        if isinstance(expr, BoolOr):
            return OqlOr([self._expr(op) for op in expr.operands])
        if isinstance(expr, BoolNot):
            return OqlNot(self._expr(expr.operand))
        if isinstance(expr, FunCall):
            return self._method_call(expr)
        raise SourceError(f"cannot translate expression {expr!r} to OQL")

    def _method_call(self, expr: FunCall) -> OqlNode:
        method = self._db.schema.methods.get(expr.name)
        if method is None:
            raise SourceError(f"unknown O2 method {expr.name!r}")
        if not expr.args or not isinstance(expr.args[0], Var):
            raise SourceError(
                f"method {expr.name!r} needs an object variable receiver"
            )
        receiver = self._paths.get(expr.args[0].name)
        if not isinstance(receiver, OqlPath):
            raise SourceError(
                f"receiver ${expr.args[0].name} of {expr.name!r} is not bound "
                "by the pushed filter"
            )
        args = [self._expr(arg) for arg in expr.args[1:]]
        return OqlMethodCall(receiver, expr.name, args)

    # -- assembly -----------------------------------------------------------------------

    def build_select(
        self,
        columns: Tuple[str, ...],
        projection: Optional[Tuple[Tuple[str, str], ...]],
    ) -> OqlSelect:
        if projection is not None:
            wanted = {column for column, _alias in projection}
            alias_of = {column: alias for column, alias in projection}
        else:
            wanted = set(self._projections)
            alias_of = {name: name for name in self._projections}
        items: List[OqlProjection] = []
        for name, node in self._projections.items():
            if name in wanted:
                items.append(OqlProjection(alias_of[name], node))
        missing = set(columns) - {item.alias for item in items}
        if missing:
            raise SourceError(
                f"pushed plan expects columns {sorted(missing)} the filter "
                "does not bind"
            )
        where: Optional[OqlNode] = None
        if self._wheres:
            where = self._wheres[0] if len(self._wheres) == 1 else OqlAnd(self._wheres)
        return OqlSelect(items, self._ranges, where)


class _PreparedFragment:
    """Compile-once execution state for one pushed plan.

    Built on the first crossing and keyed by plan identity in the
    wrapper: the filter translates once, and each distinct vector of
    inlined outer constants (information passing) compiles its OQL select
    into closures exactly once.  A DJoin replaying the same outer rows on
    every warm plan-cache hit therefore lands on an already-compiled
    select and pays only the evaluation loop.

    On top of the compiled selects sits a result memo: a *pure* select
    (no schema method calls — see ``CompiledSelect.pure``) is a function
    of the database contents alone, so its converted Tab is cached under
    ``(database version, constant vector)``.  Any update bumps the
    version and strands the stale entries.
    """

    #: Bound on distinct constant vectors memoized per fragment.
    VALUES_MEMO_CAPACITY = 64
    #: Bound on cached result Tabs per fragment.
    RESULTS_MEMO_CAPACITY = 64

    __slots__ = ("_db", "_fragment", "columns", "_base", "_outer_names",
                 "_compiled", "_convert", "_results", "_memo_lock",
                 "values_evictions", "results_evictions")

    def __init__(
        self,
        database: ObjectDatabase,
        fragment: PushedFragment,
        plan: Plan,
        convert,
    ) -> None:
        self._db = database
        self._fragment = fragment
        self._convert = convert
        self.columns = plan.output_columns()
        base = _OqlTranslator(database, fragment.document, None)
        base.translate_filter(fragment.filter)
        self._base = base
        names: List[str] = []
        seen: set = set()
        for predicate in fragment.selections:
            _collect_outer_variables(predicate, base._paths, names, seen)
        self._outer_names = tuple(names)
        #: ``constants -> (native text, CompiledSelect)``.
        self._compiled: Dict[tuple, Tuple[str, CompiledSelect]] = {}
        #: ``(database version, constants) -> Tab`` for pure selects.
        self._results: Dict[tuple, Tab] = {}
        #: One prepared fragment serves every concurrent session hitting
        #: its plan; the memos mutate under this lock (the compile and
        #: the native evaluation run outside it).
        self._memo_lock = threading.Lock()
        self.values_evictions = 0
        self.results_evictions = 0

    @property
    def values_entries(self) -> int:
        return len(self._compiled)

    @property
    def results_entries(self) -> int:
        return len(self._results)

    def run(self, outer: Optional[Row]) -> Tuple[Tab, str]:
        values: Optional[tuple] = tuple(
            outer_constant(outer, name) for name in self._outer_names
        )
        try:
            with self._memo_lock:
                entry = self._compiled.get(values)
        except TypeError:  # an unhashable outer constant (a tree cell)
            entry = None
            values = None
        if entry is None:
            translator = self._base.specialized(outer)
            for predicate in self._fragment.selections:
                translator.add_predicate(predicate)
            query = translator.build_select(
                self.columns, self._fragment.projection
            )
            entry = (query.text(), compile_select(query))
            if values is not None:
                with self._memo_lock:
                    if len(self._compiled) >= self.VALUES_MEMO_CAPACITY:
                        self.values_evictions += len(self._compiled)
                        self._compiled.clear()
                    self._compiled[values] = entry
        native, compiled = entry
        if compiled.pure and values is not None:
            key = (self._db.version, values)
            with self._memo_lock:
                tab = self._results.get(key)
            if tab is None:
                tab = self._build_tab(compiled)
                with self._memo_lock:
                    if len(self._results) >= self.RESULTS_MEMO_CAPACITY:
                        self.results_evictions += len(self._results)
                        self._results.clear()
                    self._results[key] = tab
            return tab, native
        return self._build_tab(compiled), native

    def _build_tab(self, compiled: CompiledSelect) -> Tab:
        convert = self._convert
        columns = self.columns
        rows = [
            Row(columns, tuple(convert(raw.get(c)) for c in columns))
            for raw in compiled.run(self._db)
        ]
        return Tab(columns, rows)


def _collect_outer_variables(
    expr: Expr, paths: Dict[str, OqlNode], names: List[str], seen: set
) -> None:
    """Variables the translator will resolve against the outer row.

    Walks *expr* in the translator's own ``_expr`` order, so constant
    resolution raises for a missing variable in the same order the
    interpretive per-call translation would.  Method receivers never go
    through ``_expr``; only trailing arguments do.
    """
    if isinstance(expr, Var):
        if expr.name not in paths and expr.name not in seen:
            seen.add(expr.name)
            names.append(expr.name)
    elif isinstance(expr, Cmp):
        _collect_outer_variables(expr.left, paths, names, seen)
        _collect_outer_variables(expr.right, paths, names, seen)
    elif isinstance(expr, (BoolAnd, BoolOr)):
        for operand in expr.operands:
            _collect_outer_variables(operand, paths, names, seen)
    elif isinstance(expr, BoolNot):
        _collect_outer_variables(expr.operand, paths, names, seen)
    elif isinstance(expr, FunCall):
        for argument in expr.args[1:]:
            _collect_outer_variables(argument, paths, names, seen)
