"""Generic wrappers (paper, Sections 2 and 4).

Each wrapper derives its exported structure and capabilities mechanically
from its source and translates pushed algebra fragments to native queries
(OQL, Wais searches, SQL).
"""

from repro.wrappers.base import PushedFragment, Wrapper, analyze_fragment
from repro.wrappers.o2_wrapper import O2Wrapper
from repro.wrappers.sql_wrapper import SqlWrapper, sql_fmodel
from repro.wrappers.store_wrapper import StoreWrapper
from repro.wrappers.wais_wrapper import STRUCTURE_MODEL, WaisWrapper

__all__ = [
    "O2Wrapper",
    "PushedFragment",
    "STRUCTURE_MODEL",
    "SqlWrapper",
    "StoreWrapper",
    "WaisWrapper",
    "Wrapper",
    "analyze_fragment",
    "sql_fmodel",
]
