"""The generic XML-Wais wrapper: full-text queries over XML documents.

"christop wraps the cultural source with another generic wrapper.  The
xmlwais wrapper understands XML data, typed with our type system and
full-text indexed by Wais" (paper, Section 2).

The wrapper exports:

* the ``Artworks_Structure`` model (``works`` root, ``work`` documents
  with their mandatory elements plus ``*`` for optional fields);
* the very restrictive ``waisfmodel`` of Section 4.2 — only whole ``work``
  subtrees can be bound;
* ``bind``, ``select`` and the external ``contains`` predicate, together
  with the declared equivalence connecting ``contains`` to equality.

Pushed fragments must be ``[Select contains]* (Bind works*$w (Source))``;
they translate to a :class:`~repro.sources.wais.query.WaisQuery` answered
by the inverted index, and only the matching documents are transferred.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SourceError
from repro.capabilities.equivalences import SelectionImplication
from repro.capabilities.fmodel import wais_fmodel
from repro.capabilities.interface import ArgSpec, OperationDecl, SourceInterface
from repro.core.algebra.expressions import Const, Expr, FunCall, Var
from repro.core.algebra.operators import Plan
from repro.core.algebra.tab import Row, Tab
from repro.model.filters import FElem, FStar, FVar, Filter
from repro.model.patterns import (
    PAny,
    PAtomic,
    PNode,
    PRef,
    PStar,
    PatternLibrary,
)
from repro.model.trees import DataNode
from repro.sources.wais.query import WaisQuery, WaisTerm
from repro.sources.wais.store import WaisStore
from repro.wrappers.base import PushedFragment, Wrapper, outer_constant

#: Name of the structural model exported by the wrapper (Figure 3).
STRUCTURE_MODEL = "Artworks_Structure"


class WaisWrapper(Wrapper):
    """Wraps one :class:`WaisStore` as a YAT source."""

    def __init__(
        self,
        name: str,
        store: WaisStore,
        document_name: str = "artworks",
        mandatory_fields: Tuple[str, ...] = ("artist", "title", "style", "size"),
    ) -> None:
        super().__init__(name)
        self._store = store
        self._document_name = document_name
        self._mandatory_fields = mandatory_fields

    # -- capability export ------------------------------------------------------

    def build_interface(self) -> SourceInterface:
        interface = SourceInterface(self.name)
        library = PatternLibrary(STRUCTURE_MODEL)
        work_children = [
            PNode(field, [PAtomic("String")]) for field in self._mandatory_fields
        ]
        work_children.append(PStar(PAny()))
        library.define("work", PNode("work", work_children))
        library.define(
            "works", PNode(self._store.collection_label, [PStar(PRef("work"))])
        )
        interface.add_structure(library)
        interface.add_fmodel(wais_fmodel(STRUCTURE_MODEL))
        interface.add_document(self._document_name, STRUCTURE_MODEL, "works")
        interface.add_operation(
            OperationDecl(
                "bind",
                "algebra",
                inputs=[
                    ArgSpec.value(STRUCTURE_MODEL, "works"),
                    ArgSpec.filter("waisfmodel", "Fworks"),
                ],
                output=ArgSpec.value("yat", "Tab"),
            )
        )
        interface.add_operation(OperationDecl("select", "algebra"))
        interface.add_operation(
            OperationDecl(
                "contains",
                "external",
                inputs=[
                    ArgSpec.value(STRUCTURE_MODEL, "work"),
                    ArgSpec.leaf("String"),
                ],
                output=ArgSpec.leaf("Bool"),
            )
        )
        # Z39.50 structured fields: one predicate per queryable field,
        # "declaring a predicate for each queried field and exporting
        # them to the mediator" (paper, Section 4.2).
        for field in self._queryable_fields():
            interface.add_operation(
                OperationDecl(
                    f"contains_{field}",
                    "external",
                    inputs=[
                        ArgSpec.value(STRUCTURE_MODEL, "work"),
                        ArgSpec.leaf("String"),
                    ],
                    output=ArgSpec.leaf("Bool"),
                )
            )
        interface.add_equivalence(
            SelectionImplication("=", "contains", "String", field_scoped=True)
        )
        return interface

    def _queryable_fields(self) -> Tuple[str, ...]:
        """Element labels clients may search on, per the store's policy."""
        skip = {self._store.collection_label, "work"}
        return tuple(
            label
            for label in self._store.element_labels()
            if label not in skip and self._store.field_queryable(label)
        )

    # -- SourceAdapter ------------------------------------------------------------

    def document_names(self) -> Tuple[str, ...]:
        return (self._document_name,)

    def data_version(self) -> int:
        return self._store.version

    def build_document(self, name: str) -> DataNode:
        if name != self._document_name:
            raise SourceError(f"Wais source exports no document {name!r}")
        return self._store.collection_tree()

    def ident_index(self) -> Dict[str, DataNode]:
        return {}

    def estimate_text_selectivity(self, text: str) -> Optional[float]:
        """Document frequency of *text*, straight from the inverted index."""
        total = len(self._store)
        if total == 0:
            return None
        matches = len(self._store.search(WaisQuery([WaisTerm(text)])))
        return matches / total

    # -- pushed execution --------------------------------------------------------------

    def run_fragment(
        self, fragment: PushedFragment, plan: Plan, outer: Optional[Row]
    ) -> Tuple[Tab, str]:
        work_var = self._work_variable(fragment.filter)
        terms: List[WaisTerm] = []
        for predicate in fragment.selections:
            terms.append(self._predicate_term(predicate, work_var, outer))
        query = WaisQuery(terms)
        doc_ids = self._store.search(query)
        columns = plan.output_columns()
        if columns != (work_var,):
            raise SourceError(
                f"Wais fragments bind exactly the work variable; expected "
                f"column {work_var!r}, plan declares {columns}"
            )
        rows = [
            Row(columns, (self._store.fetch(doc_id),)) for doc_id in doc_ids
        ]
        native = f"wais-search {query.render()}"
        return Tab(columns, rows), native

    def _work_variable(self, flt: Filter) -> str:
        if (
            not isinstance(flt, FElem)
            or flt.label != self._store.collection_label
            or len(flt.children) != 1
            or not isinstance(flt.children[0], FStar)
        ):
            raise SourceError(
                "Wais filters have the shape works [ * work $w ] "
                f"(collection label {self._store.collection_label!r})"
            )
        inner = flt.children[0].child
        if isinstance(inner, FVar):
            return inner.name
        if (
            isinstance(inner, FElem)
            and inner.label == "work"
            and inner.var is not None
            and not inner.children
        ):
            return inner.var
        raise SourceError(
            "Wais sources only bind whole work documents (tree variable)"
        )

    def _predicate_term(
        self, predicate: Expr, work_var: str, outer: Optional[Row]
    ) -> WaisTerm:
        if not isinstance(predicate, FunCall) or not (
            predicate.name == "contains" or predicate.name.startswith("contains_")
        ):
            raise SourceError(
                f"Wais sources only evaluate contains predicates, got "
                f"{predicate.text()}"
            )
        field: Optional[str] = None
        if predicate.name.startswith("contains_"):
            field = predicate.name.removeprefix("contains_")
            if not self._store.field_queryable(field):
                raise SourceError(f"field {field!r} is not queryable")
        if len(predicate.args) != 2:
            raise SourceError("contains takes (document, text)")
        target, text = predicate.args
        if not isinstance(target, Var) or target.name != work_var:
            raise SourceError(
                f"contains must test the bound work variable ${work_var}"
            )
        if isinstance(text, Const):
            value = text.value
        elif isinstance(text, Var):
            value = outer_constant(outer, text.name)
        else:
            raise SourceError("the contains text must be a constant or parameter")
        if not isinstance(value, str):
            raise SourceError("the contains text must be a string")
        return WaisTerm(value, field=field)
