"""The generic wrapper protocol.

A wrapper (paper, Section 2 and Figure 2) makes one source available to
mediators.  It exports, *in XML*:

* structural information (pattern libraries at the right genericity);
* query capabilities (the operational interface of Section 4);

and it answers two kinds of requests:

* fetch a named document (full transfer — the expensive path);
* execute a pushed algebraic fragment natively and return a Tab (the
  cheap path enabled by capability-based rewriting).

Every wrapper validates pushed fragments against its own declared
capabilities before executing them, so a mediator bug cannot make a
source do something it never promised.
"""

from __future__ import annotations

import threading
from abc import abstractmethod
from typing import Dict, List, Optional, Tuple

from repro.errors import PushdownRejectedError, SourceError
from repro.capabilities.interface import SourceInterface
from repro.capabilities.matcher import CapabilityMatcher
from repro.capabilities.xml_codec import interface_to_xml
from repro.core.algebra.evaluator import SourceAdapter
from repro.core.algebra.operators import (
    BindOp,
    Plan,
    ProjectOp,
    SelectOp,
    SourceOp,
)
from repro.core.algebra.tab import Row, Tab
from repro.core.algebra.expressions import Expr
from repro.model.filters import Filter
from repro.model.trees import DataNode
from repro.observability.context import current_tracer


class PushedFragment:
    """Normal form of a pushable plan fragment.

    Every wrapper in this reproduction accepts the same fragment shape —
    the shape capability-based rewriting produces (Section 5.3)::

        [Project] ( [Select]* ( Bind ( Source ) ) )

    ``analyze_fragment`` decomposes a plan into this normal form or
    raises :class:`PushdownRejectedError` when the plan does not fit —
    a deterministic rejection resilience policies never retry.
    """

    __slots__ = ("document", "filter", "selections", "projection")

    def __init__(
        self,
        document: str,
        filter: Filter,
        selections: Tuple[Expr, ...],
        projection: Optional[Tuple[Tuple[str, str], ...]],
    ) -> None:
        self.document = document
        self.filter = filter
        self.selections = selections
        self.projection = projection


def analyze_fragment(plan: Plan, source_name: str) -> PushedFragment:
    """Decompose *plan* into the pushable normal form."""
    projection: Optional[Tuple[Tuple[str, str], ...]] = None
    if isinstance(plan, ProjectOp):
        projection = plan.items
        plan = plan.input
    selections: List[Expr] = []
    while isinstance(plan, SelectOp):
        selections.append(plan.predicate)
        plan = plan.input
    if not isinstance(plan, BindOp):
        raise PushdownRejectedError(
            f"pushed plan for {source_name!r} must bottom out in Bind(Source); "
            f"got {plan.describe()}"
        )
    bind = plan
    if not isinstance(bind.input, SourceOp):
        raise PushdownRejectedError(
            f"pushed Bind for {source_name!r} must read a Source directly"
        )
    source_op = bind.input
    if source_op.source != source_name:
        raise PushdownRejectedError(
            f"pushed plan targets source {source_op.source!r}, "
            f"but was sent to {source_name!r}"
        )
    if bind.on != source_op.document:
        raise PushdownRejectedError(
            f"pushed Bind must match the source document "
            f"({bind.on!r} != {source_op.document!r})"
        )
    # Selections were collected top-down; apply bottom-up.
    selections.reverse()
    return PushedFragment(source_op.document, bind.filter, tuple(selections), projection)


class Wrapper(SourceAdapter):
    """Base class of generic wrappers."""

    #: Bound on the per-wrapper fragment memo (``checked_fragment``).
    FRAGMENT_MEMO_CAPACITY = 256

    def __init__(self, name: str) -> None:
        self.name = name
        self._interface: Optional[SourceInterface] = None
        self._document_name_set: Optional[frozenset] = None
        self._matcher: Optional[CapabilityMatcher] = None
        #: Guards the per-wrapper memos below: one wrapper serves every
        #: concurrent session, so memo mutation must be atomic.  The
        #: expensive work (fragment analysis, document builds) runs
        #: outside the lock.
        self._memo_lock = threading.Lock()
        #: ``id(plan) -> (plan, fragment)``; the plan reference keeps the
        #: id stable for the lifetime of the entry (same idiom as the
        #: evaluator's per-plan memos).
        self._fragments: Dict[int, Tuple[Plan, PushedFragment]] = {}
        #: ``name -> (data version, tree)`` memo behind :meth:`document`.
        self._documents: Dict[str, Tuple[int, DataNode]] = {}
        #: Entries dropped from the memos above (capacity or staleness),
        #: exported through :meth:`memo_stats` into the ``yat_memo_*``
        #: metrics.
        self._fragment_evictions = 0
        self._document_evictions = 0

    def document_name_set(self) -> frozenset:
        """Exported document names as a set, cached after the first call.

        ``SourceOp`` evaluation checks membership here on every
        evaluation; wrappers export a fixed document list, so scanning
        the tuple each time is pure waste.
        """
        if self._document_name_set is None:
            self._document_name_set = frozenset(self.document_names())
        return self._document_name_set

    # -- capability export -------------------------------------------------------

    @abstractmethod
    def build_interface(self) -> SourceInterface:
        """Construct this source's interface (structures + capabilities)."""

    def interface(self) -> SourceInterface:
        """The exported interface (built once, then cached)."""
        if self._interface is None:
            self._interface = self.build_interface()
        return self._interface

    def interface_xml(self) -> str:
        """The interface as the XML document sent to mediators.

        Mediators re-parse this text rather than sharing Python objects,
        which keeps the wire format honest end to end.
        """
        return interface_to_xml(self.interface())

    def matcher(self) -> CapabilityMatcher:
        """Admissibility checker over this wrapper's own interface.

        Built once and reused: the interface is immutable after
        :meth:`interface` caches it, and the matcher holds no per-check
        state, so every pushed call sharing one instance is sound.
        """
        if self._matcher is None:
            self._matcher = CapabilityMatcher(self.interface())
        return self._matcher

    # -- validation --------------------------------------------------------------

    def validate_fragment(self, fragment: PushedFragment) -> None:
        """Reject fragments outside the declared capabilities."""
        matcher = self.matcher()
        admissible = matcher.bind_admissible(fragment.filter)
        if not admissible:
            raise PushdownRejectedError(
                f"wrapper {self.name!r} rejects pushed filter: {admissible.reason}"
            )
        for predicate in fragment.selections:
            pushable = matcher.predicate_pushable(predicate)
            if not pushable:
                raise PushdownRejectedError(
                    f"wrapper {self.name!r} rejects pushed predicate "
                    f"{predicate.text()}: {pushable.reason}"
                )
        if fragment.projection is not None:
            pushable = matcher.operation_pushable("project")
            if not pushable:
                raise PushdownRejectedError(
                    f"wrapper {self.name!r} rejects pushed projection: "
                    f"{pushable.reason}"
                )

    def checked_fragment(self, plan: Plan) -> PushedFragment:
        """Analyze and validate *plan* once per plan object.

        Plans are immutable and the interface is fixed, so both the
        decomposition and the capability check are pure in the plan.
        The mediator's plan cache replays the very same plan objects on
        every warm hit, and a DJoin sends the same fragment once per
        outer row — this memo makes every crossing after the first a
        dictionary lookup.  Rejections are not memoized; the error path
        is cold by construction.
        """
        with self._memo_lock:
            entry = self._fragments.get(id(plan))
            if entry is not None and entry[0] is plan:
                return entry[1]
        fragment = analyze_fragment(plan, self.name)
        self.validate_fragment(fragment)
        with self._memo_lock:
            if len(self._fragments) >= self.FRAGMENT_MEMO_CAPACITY:
                self._fragments.pop(next(iter(self._fragments)))
                self._fragment_evictions += 1
            self._fragments[id(plan)] = (plan, fragment)
        return fragment

    # -- statistics ----------------------------------------------------------------

    def document_stats(self) -> Dict[str, Tuple[int, int]]:
        """``{document: (serialized bytes, root cardinality)}``.

        Computed locally at the source (the wrapper owns the data), so
        the mediator can obtain size hints without transferring anything.
        Wrappers with cheaper ways to know their sizes may override this.
        """
        from repro.model.xml_io import serialized_size

        stats: Dict[str, Tuple[int, int]] = {}
        for name in self.document_names():
            document = self.document(name)
            stats[name] = (serialized_size(document), len(document.children))
        return stats

    def estimate_text_selectivity(self, text: str) -> Optional[float]:
        """Estimated fraction of this source's entries matching *text*.

        ``None`` when the source has no cheap way to know.  Full-text
        sources override this using their index's document frequencies.
        """
        return None

    # -- document export ----------------------------------------------------------

    def data_version(self) -> int:
        """Monotonic version of the source's data; any change bumps it.

        Wrappers over mutable stores override this with the store's own
        version counter.  The default (a constant) means "immutable",
        which keeps the document memo valid forever.
        """
        return 0

    def document(self, name: str) -> DataNode:
        """The named document tree, memoized per data version.

        Rebuilding the export on every call would give each query a
        *different* root object, defeating both the mediator's document
        indexes (keyed by tree identity) and any caching above us; the
        memo serves one stable tree until :meth:`data_version` moves.
        """
        version = self.data_version()
        with self._memo_lock:
            entry = self._documents.get(name)
            if entry is not None and entry[0] == version:
                return entry[1]
        tree = self.build_document(name)
        with self._memo_lock:
            # A concurrent builder may have stored the same version first;
            # keep the incumbent so every session sees one stable tree
            # (document indexes key on tree identity).
            entry = self._documents.get(name)
            if entry is not None and entry[0] == version:
                return entry[1]
            if entry is not None:
                self._document_evictions += 1
            self._documents[name] = (version, tree)
        return tree

    @abstractmethod
    def build_document(self, name: str) -> DataNode:
        """Construct the named document's tree (one full export)."""

    # -- memo accounting ----------------------------------------------------------

    def memo_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-memo occupancy and eviction counters for metrics export.

        Keyed by memo name; each value holds ``entries`` / ``capacity`` /
        ``evictions``.  Subclasses with additional memos extend the dict.
        """
        with self._memo_lock:
            return {
                "fragments": {
                    "entries": len(self._fragments),
                    "capacity": self.FRAGMENT_MEMO_CAPACITY,
                    "evictions": self._fragment_evictions,
                },
                "documents": {
                    "entries": len(self._documents),
                    "capacity": len(self.document_name_set()),
                    "evictions": self._document_evictions,
                },
            }

    # -- SourceAdapter defaults ---------------------------------------------------

    def ident_index(self) -> Dict[str, DataNode]:
        return {}

    def execute_pushed(
        self, plan: Plan, outer: Optional[Row] = None
    ) -> Tuple[Tab, str]:
        tracer = current_tracer()
        if tracer is None:
            fragment = self.checked_fragment(plan)
            return self.run_fragment(fragment, plan, outer)
        # Wrapper-side view of the pushed call: fragment analysis and
        # capability validation are mediator-protocol work, the native
        # run is the source's own; the span separates the two and records
        # the generated native text.
        with tracer.start(
            f"wrapper:{self.name}", kind="wrapper", source=self.name
        ) as span:
            fragment = self.checked_fragment(plan)
            with tracer.start(
                f"{self.name}:native", kind="native", source=self.name
            ):
                tab, native = self.run_fragment(fragment, plan, outer)
            span.annotate(rows=len(tab), native=native)
            return tab, native

    @abstractmethod
    def run_fragment(
        self, fragment: PushedFragment, plan: Plan, outer: Optional[Row]
    ) -> Tuple[Tab, str]:
        """Execute a validated fragment; returns ``(tab, native text)``."""


def outer_constant(outer: Optional[Row], name: str):
    """Resolve an information-passing parameter from the outer row.

    Raises :class:`SourceError` when the variable is genuinely unknown —
    the optimizer only builds parameterized fragments under a DJoin that
    supplies the row.
    """
    if outer is not None and name in outer:
        return outer[name]
    raise SourceError(
        f"pushed plan references ${name}, which is neither bound by the "
        "fragment nor supplied by an outer row"
    )
