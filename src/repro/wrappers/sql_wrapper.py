"""The generic SQL wrapper.

"Obviously, SQL can be described in a similar manner [to OQL], eventhough
the wrapper's implementation is more complex due to the non-functional
nature of SQL" (paper, Section 4.1).  This wrapper demonstrates that
claim: the same interface machinery — structure patterns, an Fmodel with
``bind``/``inst`` flags, declared algebra operations and predicates —
describes a relational source, and pushed fragments translate to
parameterized SQL executed over DB-API (:mod:`sqlite3`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SourceError
from repro.capabilities.fmodel import FModel, fleaf, fnode, fref, fstar, funion
from repro.capabilities.interface import ArgSpec, OperationDecl, SourceInterface
from repro.core.algebra.expressions import (
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    Var,
)
from repro.core.algebra.operators import Plan
from repro.core.algebra.tab import Row, Tab
from repro.model.filters import FConst, FElem, FStar, FVar, Filter
from repro.model.patterns import SYMBOL
from repro.model.trees import DataNode
from repro.sources.relational.engine import SqlDatabase
from repro.wrappers.base import PushedFragment, Wrapper, outer_constant

_SQL_OPS = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def sql_fmodel(model_name: str = "sqlfmodel") -> FModel:
    """Filter restrictions for a relational source.

    Rows can be bound as trees; columns must be named (ground) and bind
    only their values; the row star stays a star (no positional access).
    """
    model = FModel(model_name)
    model.define(
        "Frow",
        fnode(
            "row",
            fstar(
                fnode(
                    SYMBOL,
                    funion(fleaf("Int"), fleaf("Bool"), fleaf("Float"),
                           fleaf("String")),
                    bind="none",
                ),
                inst="ground",
            ),
            bind="tree",
        ),
    )
    model.define(
        "Frows",
        fnode(
            "rows",
            fstar(fref(model_name, "Frow"), inst="none"),
            bind="none",
            inst="ground",
        ),
    )
    return model


class SqlWrapper(Wrapper):
    """Wraps one :class:`SqlDatabase` as a YAT source."""

    def __init__(self, name: str, database: SqlDatabase) -> None:
        super().__init__(name)
        self._db = database

    # -- capability export ----------------------------------------------------

    def build_interface(self) -> SourceInterface:
        interface = SourceInterface(self.name)
        library = self._db.to_pattern_library()
        interface.add_structure(library)
        interface.add_fmodel(sql_fmodel())
        for table in self._db.table_names():
            interface.add_document(table, library.name, table)
        interface.add_operation(
            OperationDecl(
                "bind",
                "algebra",
                inputs=[
                    ArgSpec.value(library.name, "row"),
                    ArgSpec.filter("sqlfmodel", "Frows"),
                ],
                output=ArgSpec.value("yat", "Tab"),
            )
        )
        for operation in ("select", "project"):
            interface.add_operation(OperationDecl(operation, "algebra"))
        for predicate in ("eq", "neq", "lt", "lte", "gt", "gte"):
            interface.add_operation(OperationDecl(predicate, "boolean"))
        return interface

    # -- SourceAdapter -----------------------------------------------------------

    def document_names(self) -> Tuple[str, ...]:
        return self._db.table_names()

    def data_version(self) -> int:
        return self._db.version

    def build_document(self, name: str) -> DataNode:
        return self._db.export_table(name)

    def ident_index(self) -> Dict[str, DataNode]:
        return {}

    # -- pushed execution ----------------------------------------------------------

    def run_fragment(
        self, fragment: PushedFragment, plan: Plan, outer: Optional[Row]
    ) -> Tuple[Tab, str]:
        table = self._db.table(fragment.document)
        var_columns, constants = self._filter_columns(fragment.filter, table)
        where_parts: List[str] = []
        params: List[object] = []
        for column, value in constants:
            where_parts.append(f"{column} = ?")
            params.append(value)
        for predicate in fragment.selections:
            part = self._predicate_sql(predicate, var_columns, params, outer)
            where_parts.append(part)

        if fragment.projection is not None:
            wanted = {column for column, _alias in fragment.projection}
            alias_of = dict(fragment.projection)
        else:
            wanted = set(var_columns)
            alias_of = {name: name for name in var_columns}
        select_items = [
            f"{column} AS {alias_of[var]}"
            for var, column in var_columns.items()
            if var in wanted
        ]
        if not select_items:
            raise SourceError("pushed SQL fragment projects no columns")
        sql = f"SELECT {', '.join(select_items)} FROM {table.name}"
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        raw_rows = self._db.query(sql, params)
        columns = plan.output_columns()
        missing = set(columns) - set(alias_of[v] for v in var_columns if v in wanted)
        if missing:
            raise SourceError(
                f"pushed SQL plan expects columns {sorted(missing)} the filter "
                "does not bind"
            )
        rows = [
            Row(
                columns,
                tuple(
                    self._to_cell(raw[c], table, var_columns, c, alias_of)
                    for c in columns
                ),
            )
            for raw in raw_rows
        ]
        native = sql if not params else f"{sql} -- params {tuple(params)!r}"
        return Tab(columns, rows), native

    def _to_cell(self, value, table, var_columns, alias, alias_of):
        # SQLite loses the Bool/Int distinction; restore it from the schema.
        for var, column in var_columns.items():
            if alias_of.get(var) == alias:
                declared = table.column(column).type_name
                if declared == "Bool" and isinstance(value, int):
                    return bool(value)
                if declared == "Float" and isinstance(value, int):
                    return float(value)
        return value

    def _filter_columns(self, flt: Filter, table):
        """Extract ``{variable: column}`` and constant equality constraints."""
        if (
            not isinstance(flt, FElem)
            or flt.label != "rows"
            or len(flt.children) != 1
            or not isinstance(flt.children[0], FStar)
        ):
            raise SourceError("SQL filters have the shape rows [ * row [...] ]")
        row_filter = flt.children[0].child
        if not isinstance(row_filter, FElem) or row_filter.label != "row":
            raise SourceError("SQL filters iterate over row elements")
        if row_filter.var is not None:
            raise SourceError(
                "binding whole rows as trees is not implemented by this wrapper; "
                "bind the needed columns instead"
            )
        var_columns: Dict[str, str] = {}
        constants: List[Tuple[str, object]] = []
        for item in row_filter.children:
            if not isinstance(item, FElem) or not isinstance(item.label, str):
                raise SourceError("SQL column filters must be ground elements")
            table.column(item.label)  # raises for unknown columns
            if len(item.children) != 1:
                raise SourceError(
                    f"column {item.label!r} admits exactly one content filter"
                )
            content = item.children[0]
            if isinstance(content, FVar):
                var_columns[content.name] = item.label
            elif isinstance(content, FConst):
                constants.append((item.label, content.value))
            else:
                raise SourceError(
                    f"column content must be a variable or constant, got {content!r}"
                )
        return var_columns, constants

    def _predicate_sql(
        self,
        predicate: Expr,
        var_columns: Dict[str, str],
        params: List[object],
        outer: Optional[Row],
    ) -> str:
        if isinstance(predicate, BoolAnd):
            return "(" + " AND ".join(
                self._predicate_sql(op, var_columns, params, outer)
                for op in predicate.operands
            ) + ")"
        if isinstance(predicate, BoolOr):
            return "(" + " OR ".join(
                self._predicate_sql(op, var_columns, params, outer)
                for op in predicate.operands
            ) + ")"
        if isinstance(predicate, BoolNot):
            return "NOT " + self._predicate_sql(
                predicate.operand, var_columns, params, outer
            )
        if isinstance(predicate, Cmp):
            left = self._scalar_sql(predicate.left, var_columns, params, outer)
            right = self._scalar_sql(predicate.right, var_columns, params, outer)
            return f"{left} {_SQL_OPS[predicate.op]} {right}"
        raise SourceError(f"cannot translate predicate {predicate!r} to SQL")

    def _scalar_sql(
        self,
        expr: Expr,
        var_columns: Dict[str, str],
        params: List[object],
        outer: Optional[Row],
    ) -> str:
        if isinstance(expr, Var):
            if expr.name in var_columns:
                return var_columns[expr.name]
            params.append(outer_constant(outer, expr.name))
            return "?"
        if isinstance(expr, Const):
            value = expr.value
            params.append(int(value) if isinstance(value, bool) else value)
            return "?"
        raise SourceError(f"cannot translate expression {expr!r} to SQL")
