"""Testing utilities: deterministic fault injection for federated runs."""

from repro.testing.faults import (
    Fault,
    FaultInjector,
    FaultSchedule,
    FaultyAdapter,
    FaultyWrapper,
    InjectedFaultError,
    VirtualClock,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "FaultyAdapter",
    "FaultyWrapper",
    "InjectedFaultError",
    "VirtualClock",
]
