"""Deterministic fault injection for federated execution.

The paper's Figure 2 architecture assumes every wrapped source answers
every fetch and every pushed fragment; real mediation stacks treat
source unavailability as the common case.  This module makes failure a
*first-class, reproducible* input: a :class:`FaultSchedule` decides, per
source operation and per call index, whether to inject a transient
error, a permanent error, or artificial latency, and
:class:`FaultyAdapter` / :class:`FaultyWrapper` apply that schedule in
front of any :class:`~repro.core.algebra.evaluator.SourceAdapter` or
:class:`~repro.wrappers.base.Wrapper`.

Determinism rules:

* scripted schedules (``fail`` / ``fail_forever`` / ``delay``) depend
  only on the per-operation call count;
* seeded schedules draw every decision from a hash of
  ``(seed, operation, call index)``, so the same seed always produces
  the same failure sequence regardless of wall-clock time or the order
  in which *other* operations are called.

Time is injectable: pass a :class:`VirtualClock`'s ``sleep`` so latency
faults and deadline tests run instantly and deterministically.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SourceError
from repro.core.algebra.evaluator import SourceAdapter
from repro.core.algebra.operators import Plan
from repro.core.algebra.tab import Row, Tab
from repro.model.trees import DataNode
from repro.wrappers.base import Wrapper

#: Source operations a schedule can target.
OPERATIONS = ("document", "ident_index", "execute_pushed")

TRANSIENT = "transient"
PERMANENT = "permanent"
LATENCY = "latency"


class InjectedFaultError(SourceError):
    """An error injected by a :class:`FaultSchedule` (never raised by real
    sources).  ``kind`` is ``"transient"`` or ``"permanent"``; the
    distinction is descriptive — a resilience policy cannot tell them
    apart, exactly as a mediator cannot tell a crashed source from a
    slow one."""

    def __init__(self, source: str, operation: str, index: int, kind: str) -> None:
        super().__init__(
            f"injected {kind} fault: {source}.{operation} (call #{index})"
        )
        self.source = source
        self.operation = operation
        self.index = index
        self.kind = kind


class Fault:
    """One scheduled fault: an error kind and/or added latency."""

    __slots__ = ("kind", "latency")

    def __init__(self, kind: str, latency: float = 0.0) -> None:
        if kind not in (TRANSIENT, PERMANENT, LATENCY):
            raise ValueError(f"unknown fault kind {kind!r}")
        self.kind = kind
        self.latency = latency

    def __repr__(self) -> str:
        if self.latency:
            return f"Fault({self.kind!r}, latency={self.latency})"
        return f"Fault({self.kind!r})"


class VirtualClock:
    """A manually-advanced clock, so latency and deadlines are testable
    without real sleeping.  ``time``/``sleep`` mirror the :mod:`time`
    functions a :class:`~repro.mediator.resilience.ResiliencePolicy`
    takes."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def time(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += max(0.0, float(seconds))

    advance = sleep


class FaultSchedule:
    """Per-operation fault plan, scripted and/or seeded.

    Scripted entries are consumed by per-operation call count; a seeded
    component (from :meth:`seeded`) adds hash-derived faults on top.
    The builder methods return ``self`` so schedules chain::

        FaultSchedule().fail("document", times=2).delay("execute_pushed", 0.5)
    """

    def __init__(self) -> None:
        #: operation -> list of (first_index, last_index or None, Fault)
        self._windows: Dict[str, List[Tuple[int, Optional[int], Fault]]] = {}
        self._seed: Optional[int] = None
        self._fault_rate = 0.0
        self._permanent_rate = 0.0
        self._max_latency = 0.0
        self._seeded_operations: Tuple[str, ...] = OPERATIONS

    # -- builders -----------------------------------------------------------------

    def fail(
        self, operation: str = "document", times: int = 1, latency: float = 0.0
    ) -> "FaultSchedule":
        """Fail the next *times* calls to *operation* transiently, then
        let every later call through (a recover-after-*times* source)."""
        self._windows.setdefault(operation, []).append(
            (0, times - 1, Fault(TRANSIENT, latency))
        )
        return self

    def fail_forever(
        self, operation: str = "document", after: int = 0
    ) -> "FaultSchedule":
        """Fail every call to *operation* from call index *after* on —
        a permanently dead operation."""
        self._windows.setdefault(operation, []).append(
            (after, None, Fault(PERMANENT))
        )
        return self

    def delay(
        self, operation: str = "document", seconds: float = 0.1,
        times: Optional[int] = None,
    ) -> "FaultSchedule":
        """Add *seconds* of latency to calls to *operation* (the first
        *times* calls, or all of them when ``times`` is ``None``)."""
        last = None if times is None else times - 1
        self._windows.setdefault(operation, []).append(
            (0, last, Fault(LATENCY, seconds))
        )
        return self

    def dead_source(self) -> "FaultSchedule":
        """Every operation fails permanently — the source is down."""
        for operation in OPERATIONS:
            self.fail_forever(operation)
        return self

    @classmethod
    def seeded(
        cls,
        seed: int,
        fault_rate: float = 0.3,
        permanent_rate: float = 0.0,
        max_latency: float = 0.0,
        operations: Tuple[str, ...] = OPERATIONS,
    ) -> "FaultSchedule":
        """A pseudo-random schedule fully determined by *seed*.

        Each ``(operation, call index)`` pair independently draws: with
        probability *fault_rate* a fault, which is permanent with
        probability *permanent_rate*, else transient; latency (when
        *max_latency* > 0) is a deterministic fraction of it.
        """
        schedule = cls()
        schedule._seed = seed
        schedule._fault_rate = fault_rate
        schedule._permanent_rate = permanent_rate
        schedule._max_latency = max_latency
        schedule._seeded_operations = tuple(operations)
        return schedule

    # -- decisions ----------------------------------------------------------------

    @staticmethod
    def _draw(seed: int, operation: str, index: int, what: str) -> float:
        """Deterministic uniform [0, 1) from a hash — no global RNG state."""
        digest = hashlib.sha256(
            f"{seed}:{operation}:{index}:{what}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def fault_for(self, operation: str, index: int) -> Optional[Fault]:
        """The fault to inject on call *index* of *operation*, if any.
        Scripted windows win over the seeded component."""
        for first, last, fault in self._windows.get(operation, ()):
            if index >= first and (last is None or index <= last):
                return fault
        if self._seed is not None and operation in self._seeded_operations:
            if self._draw(self._seed, operation, index, "fault") < self._fault_rate:
                permanent = (
                    self._draw(self._seed, operation, index, "kind")
                    < self._permanent_rate
                )
                latency = (
                    self._draw(self._seed, operation, index, "latency")
                    * self._max_latency
                )
                return Fault(PERMANENT if permanent else TRANSIENT, latency)
            if self._max_latency and self._draw(
                self._seed, operation, index, "slow"
            ) < self._fault_rate:
                return Fault(
                    LATENCY,
                    self._draw(self._seed, operation, index, "latency")
                    * self._max_latency,
                )
        return None


class FaultInjector:
    """Applies a :class:`FaultSchedule` call by call, keeping a log.

    ``injected`` records ``(operation, index, kind)`` for every fault
    actually applied — tests assert reproducibility against it.
    """

    def __init__(
        self,
        source: str,
        schedule: FaultSchedule,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.source = source
        self.schedule = schedule
        self._lock = threading.Lock()
        self.call_counts: Counter = Counter()
        self.injected: List[Tuple[str, int, str]] = []
        self._sleep = sleep if sleep is not None else time.sleep

    def before(self, operation: str) -> None:
        """Consume one call slot for *operation*; sleep and/or raise.

        Call-slot allocation and the injection log are guarded by a lock
        (parallel branches may hit one injector concurrently); the
        latency sleep happens outside it so injected delays overlap the
        way real source latency does.
        """
        with self._lock:
            index = self.call_counts[operation]
            self.call_counts[operation] += 1
            fault = self.schedule.fault_for(operation, index)
            if fault is not None:
                self.injected.append((operation, index, fault.kind))
        if fault is None:
            return
        if fault.latency:
            self._sleep(fault.latency)
        if fault.kind != LATENCY:
            raise InjectedFaultError(self.source, operation, index, fault.kind)


class FaultyAdapter(SourceAdapter):
    """Wrap any :class:`SourceAdapter`, injecting scheduled faults.

    ``document_names`` is treated as catalog metadata and never faulted —
    the failure modes of interest are the data-plane calls the paper's
    mediator makes mid-query.
    """

    def __init__(
        self,
        inner: SourceAdapter,
        schedule: FaultSchedule,
        name: Optional[str] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.inner = inner
        self.name = name or getattr(inner, "name", "source")
        self.injector = FaultInjector(self.name, schedule, sleep)

    @property
    def injected(self) -> List[Tuple[str, int, str]]:
        return self.injector.injected

    def document_names(self) -> Tuple[str, ...]:
        return self.inner.document_names()

    def document_name_set(self) -> frozenset:
        return self.inner.document_name_set()

    def document(self, name: str) -> DataNode:
        self.injector.before("document")
        return self.inner.document(name)

    def ident_index(self) -> Dict[str, DataNode]:
        self.injector.before("ident_index")
        return self.inner.ident_index()

    def execute_pushed(
        self, plan: Plan, outer: Optional[Row] = None
    ) -> Tuple[Tab, str]:
        self.injector.before("execute_pushed")
        return self.inner.execute_pushed(plan, outer)


class FaultyWrapper(Wrapper):
    """A faulty :class:`Wrapper`: connectable to a mediator.

    Planning-time surfaces (interface export, document statistics,
    selectivity probes) pass through un-faulted; the execution-time
    calls — ``document``, ``ident_index``, ``execute_pushed`` — go
    through the same :class:`FaultInjector` as :class:`FaultyAdapter`.
    """

    def __init__(
        self,
        inner: Wrapper,
        schedule: FaultSchedule,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        super().__init__(inner.name)
        self.inner = inner
        self.injector = FaultInjector(inner.name, schedule, sleep)

    @property
    def injected(self) -> List[Tuple[str, int, str]]:
        return self.injector.injected

    # -- planning-time passthrough ------------------------------------------------

    def build_interface(self):
        return self.inner.interface()

    def document_stats(self):
        return self.inner.document_stats()

    def estimate_text_selectivity(self, text: str):
        return self.inner.estimate_text_selectivity(text)

    def document_names(self) -> Tuple[str, ...]:
        return self.inner.document_names()

    def data_version(self) -> int:
        # Forwarded un-faulted: the result cache's version vector must
        # see the real source move even through an injected fault.
        return self.inner.data_version()

    # -- execution-time fault injection --------------------------------------------

    def build_document(self, name: str) -> DataNode:
        # Unreachable through the faulted ``document`` override below;
        # defined so this class satisfies the Wrapper ABC.
        return self.inner.document(name)

    def document(self, name: str) -> DataNode:
        self.injector.before("document")
        return self.inner.document(name)

    def ident_index(self) -> Dict[str, DataNode]:
        self.injector.before("ident_index")
        return self.inner.ident_index()

    def execute_pushed(
        self, plan: Plan, outer: Optional[Row] = None
    ) -> Tuple[Tab, str]:
        self.injector.before("execute_pushed")
        return self.inner.execute_pushed(plan, outer)

    def run_fragment(self, fragment, plan, outer):
        return self.inner.run_fragment(fragment, plan, outer)
