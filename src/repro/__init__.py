"""Reproduction of "On Wrapping Query Languages and Efficient XML Integration".

Christophides, Cluet & Simeon, SIGMOD 2000.

The package implements the paper's three contributions — the YAT XML
algebra, the source-capability description language, and the three-round
mediator optimizer — plus every substrate they need: a mini O2/ODMG
object database with an OQL engine, a Wais-style full-text XML store, a
sqlite3-backed SQL source, generic wrappers, and the YAT_L language.

Quickstart::

    from repro import Mediator, O2Wrapper, WaisWrapper
    from repro.datasets import CulturalDataset

    db, store = CulturalDataset(n_artifacts=20).build()
    mediator = Mediator()
    mediator.connect(O2Wrapper("o2artifact", db))
    mediator.connect(WaisWrapper("xmlartwork", store))
    mediator.load_program(VIEW1_YAT)           # the paper's view1.yat
    result = mediator.query(Q1)                 # the paper's Q1
    print(result.document().pretty())
"""

from repro.core.algebra import evaluate
from repro.core.optimizer import Optimizer, OptimizerContext, optimize
from repro.errors import OverloadedError, QuotaExceededError
from repro.mediator import (
    ExecutionPolicy,
    Mediator,
    QueryResult,
    ResiliencePolicy,
    ResultCache,
    RetryPolicy,
)
from repro.observability import (
    Explanation,
    MetricsRegistry,
    RequestContext,
    Tracer,
    record_execution,
)
from repro.server import MediatorServer, ServerConfig
from repro.sources.stored import StoredXmlSource
from repro.wrappers import O2Wrapper, SqlWrapper, StoreWrapper, WaisWrapper
from repro.yatl import parse_program, parse_query

__version__ = "1.0.0"

__all__ = [
    "ExecutionPolicy",
    "Explanation",
    "Mediator",
    "MediatorServer",
    "MetricsRegistry",
    "O2Wrapper",
    "Optimizer",
    "OptimizerContext",
    "OverloadedError",
    "QueryResult",
    "QuotaExceededError",
    "RequestContext",
    "ResiliencePolicy",
    "ResultCache",
    "RetryPolicy",
    "ServerConfig",
    "SqlWrapper",
    "StoreWrapper",
    "StoredXmlSource",
    "Tracer",
    "WaisWrapper",
    "evaluate",
    "optimize",
    "parse_program",
    "parse_query",
    "record_execution",
    "__version__",
]
