"""Translating Bind filters into SQL interval self-joins.

The store keeps every node's pre-order position and half-open subtree
interval ``[pre, post)``, so the structural axes of a filter are single
range predicates instead of recursive walks::

    child of s            t.parent = s.pre
    strict descendant     s.pre < t.pre AND t.pre < s.post
    descendant-or-self    s.pre <= t.pre AND t.pre < s.post

:func:`compile_pushdown` walks a filter once and emits one table alias
per structural filter node, ``AND``-ing the axis predicates together —
the classic interval self-join of the relational XML mappings.  The
result is **binding tuples**, not documents: the mediator never sees
nodes the query did not touch.

Byte-identical parity with the recursive matcher
------------------------------------------------

The compiled query must reproduce :class:`repro.core.algebra.bind
.FilterMatcher` exactly — rows, duplicates *and enumeration order* —
because the differential fuzz compares serialized answers byte for
byte.  Three observations carry the proof:

* The matcher enumerates each element's items with ``itertools.product``
  (first item slowest, last fastest) and each item's alternatives in
  child pre order, recursively.  Unfolding the recursion, bindings are
  produced in lexicographic order of the matched nodes' pre positions,
  taken in DFS order of the filter's structural nodes.  Aliases are
  created in exactly that DFS order, so ``ORDER BY a0.pre, a1.pre, ...``
  reproduces the enumeration (the order is total: two distinct rows
  differ at some alias, and pre positions are unique within a document).
* A ``**`` step under an element ``s`` pairs each child of ``s`` with
  that child's descendants-or-self; every strict descendant of ``s`` is
  reached through exactly one child, so one strict-descendant alias is
  a bijection — same rows, same duplicates.  Nested ``**`` steps are
  *not* bijective (the matcher re-reaches a node once per intermediate
  anchor); the intermediate alias stays in the join and in ``ORDER BY``
  to reproduce that multiplicity exactly.
* An element filter with one bare variable/constant item matches leaf
  *content* when the node is an atom leaf but a *child* when it is an
  element.  One alias covers both runtime shapes with
  ``(g.parent = s.pre OR (s.kind = 'atom' AND g.pre = s.pre))``.

Anything outside the provable fragment — label variables or regexes,
``FRest`` (needs the unclaimed-sibling set), constants whose REAL key
is lossy — makes :func:`compile_pushdown` return ``None`` and the
wrapper falls back to a hydrated scan through the matcher itself.

One divergence is accepted and documented in DESIGN.md: the matcher's
cartesian-explosion guard can fire while enumerating an element whose
*later* sibling item turns out unmatched, where SQL simply returns no
rows.  The common case — more than ``max_matches`` result rows — raises
the byte-identical :class:`~repro.errors.BindError` from the bounded
fetch instead.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.model.filters import (
    FConst,
    FDescend,
    FElem,
    Filter,
    FRest,
    FStar,
    FVar,
)


class PushdownQuery:
    """A compiled interval self-join for one filter.

    ``sql`` selects, for every filter variable in document order, the
    four columns ``(pre, kind, vtype, value)`` of the matched node —
    enough to decode an atom binding without touching the store again,
    and to hydrate a subtree binding lazily from its ``pre``.  The first
    bind parameter is always the document name; :meth:`bind_params`
    prepends it.
    """

    __slots__ = ("sql", "params", "variables")

    def __init__(
        self, sql: str, params: Tuple[object, ...], variables: Tuple[str, ...]
    ) -> None:
        self.sql = sql
        self.params = params
        self.variables = variables

    def bind_params(self, document: str) -> Tuple[object, ...]:
        return (document, *self.params)

    def __repr__(self) -> str:
        return f"PushdownQuery({len(self.variables)} vars: {self.sql})"


class _Abort(Exception):
    """The filter left the translatable fragment; fall back to a scan."""


class _Compiler:
    def __init__(self, table: str) -> None:
        self._table = table
        self.aliases: List[str] = []
        self.conditions: List[str] = []
        self.params: List[object] = []
        self.var_alias: dict = {}

    def alias(self) -> str:
        name = f"n{len(self.aliases)}"
        self.aliases.append(name)
        return name

    def bind(self, var: str, alias: str) -> None:
        if var in self.var_alias:
            raise _Abort()
        self.var_alias[var] = alias

    # -- filter walk (one alias per structural node, DFS order) ----------------

    def root(self, flt: Filter) -> None:
        if isinstance(flt, FElem):
            anchor = self.alias()
            self.conditions.append(f"{anchor}.doc = ?")
            self.conditions.append(f"{anchor}.pre = 0")
            self.element(anchor, flt)
        elif isinstance(flt, FDescend):
            # Descendant-or-self of the document root: every node.
            anchor = self.alias()
            self.conditions.append(f"{anchor}.doc = ?")
            self.apply(anchor, flt.child)
        else:
            raise _Abort()

    def apply(self, alias: str, flt: Filter) -> None:
        """Constrain *alias* to nodes the filter matches at that point."""
        if isinstance(flt, FElem):
            self.element(alias, flt)
        elif isinstance(flt, FVar):
            self.bind(flt.name, alias)
        elif isinstance(flt, FConst):
            self.constant(alias, flt.value)
        elif isinstance(flt, FDescend):
            self.descend(alias, flt, strict=False)
        else:
            raise _Abort()

    def element(self, alias: str, flt: FElem) -> None:
        if not isinstance(flt.label, str):
            raise _Abort()  # label variables/regexes stay mediator-side
        self.conditions.append(f"{alias}.name = ?")
        self.params.append(flt.label)
        if flt.var is not None:
            self.bind(flt.var, alias)
        items = flt.children
        if not items:
            return
        if len(items) == 1 and isinstance(items[0], (FVar, FConst)):
            self.leaf_or_child(alias, items[0])
            return
        for item in items:
            if isinstance(item, FRest):
                raise _Abort()  # needs the unclaimed-sibling set
            target = item.child if isinstance(item, FStar) else item
            self.item(alias, target)

    def leaf_or_child(self, alias: str, item: Filter) -> None:
        """One bare variable/constant item: leaf content *or* a child.

        Atom leaves have no child rows, so the parent disjunct is vacuous
        for them and the self disjunct is vacuous for elements — exactly
        one disjunct fires per runtime shape, like the matcher's
        ``_match_leaf_content`` / ``_match_children`` split.

        The disjunction itself is unindexable, so both disjuncts' implied
        subtree bounds (``pre >= parent.pre AND pre < parent.post``) are
        stated explicitly: sqlite then drives the join through the
        ``(doc, pre)`` primary key — an interval probe — and applies the
        disjunction as a residual filter over that tiny range.
        """
        item_alias = self.alias()
        self.conditions.append(f"{item_alias}.doc = {alias}.doc")
        self.conditions.append(f"{item_alias}.pre >= {alias}.pre")
        self.conditions.append(f"{item_alias}.pre < {alias}.post")
        self.conditions.append(
            f"({item_alias}.parent = {alias}.pre"
            f" OR ({alias}.kind = 'atom' AND {item_alias}.pre = {alias}.pre))"
        )
        if isinstance(item, FVar):
            self.bind(item.name, item_alias)
        else:
            self.constant(item_alias, item.value)

    def item(self, alias: str, target: Filter) -> None:
        if isinstance(target, FDescend):
            self.descend(alias, target, strict=True)
            return
        item_alias = self.alias()
        self.conditions.append(f"{item_alias}.doc = {alias}.doc")
        # The implied interval bound gives the planner an indexable
        # alternative to the parent-equality join (same rows: children
        # are strict descendants).
        self.conditions.append(f"{item_alias}.pre > {alias}.pre")
        self.conditions.append(f"{item_alias}.pre < {alias}.post")
        self.conditions.append(f"{item_alias}.parent = {alias}.pre")
        if isinstance(target, FElem):
            self.element(item_alias, target)
        elif isinstance(target, FVar):
            self.bind(target.name, item_alias)
        elif isinstance(target, FConst):
            self.constant(item_alias, target.value)
        else:
            raise _Abort()

    def descend(self, scope: str, flt: FDescend, strict: bool) -> None:
        descendant = self.alias()
        self.conditions.append(f"{descendant}.doc = {scope}.doc")
        comparison = ">" if strict else ">="
        self.conditions.append(f"{descendant}.pre {comparison} {scope}.pre")
        self.conditions.append(f"{descendant}.pre < {scope}.post")
        self.apply(descendant, flt.child)

    def constant(self, alias: str, value: object) -> None:
        self.conditions.append(f"{alias}.kind = 'atom'")
        if isinstance(value, str):
            # String equality never crosses types; match on the stored text.
            self.conditions.append(f"{alias}.vtype = 'String'")
            self.conditions.append(f"{alias}.value = ?")
            self.params.append(value)
        else:
            # Numerics compare through the REAL key, which the store only
            # populates for exactly-representable values; a constant whose
            # own key is lossy cannot be matched faithfully in SQL.
            try:
                key = float(value)
            except OverflowError:
                raise _Abort() from None
            if key != key or key != value:
                raise _Abort()
            self.conditions.append(f"{alias}.num = ?")
            self.params.append(key)


def compile_pushdown(flt: Filter, table: str = "nodes") -> Optional[PushdownQuery]:
    """Compile *flt* into an interval self-join, or ``None`` to scan."""
    variables = tuple(flt.variables())
    if len(set(variables)) != len(variables):
        return None
    compiler = _Compiler(table)
    try:
        compiler.root(flt)
    except _Abort:
        return None
    if set(compiler.var_alias) != set(variables):
        return None
    select = []
    for var in variables:
        alias = compiler.var_alias[var]
        select.extend(
            (f"{alias}.pre", f"{alias}.kind", f"{alias}.vtype", f"{alias}.value")
        )
    if not select:  # variable-free filter: row count still matters
        select.append(f"{compiler.aliases[0]}.pre")
    sql = (
        "SELECT "
        + ", ".join(select)
        + " FROM "
        + ", ".join(f"{table} {alias}" for alias in compiler.aliases)
        + " WHERE "
        + " AND ".join(compiler.conditions)
        + " ORDER BY "
        + ", ".join(f"{alias}.pre" for alias in compiler.aliases)
    )
    return PushdownQuery(sql, tuple(compiler.params), variables)
