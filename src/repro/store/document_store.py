"""Out-of-core document storage: sqlite-shredded trees (ROADMAP item 2).

Every other source in this reproduction materializes whole documents as
Python trees before a single ``Bind`` runs, so data is capped by RAM and
cold-start pays full materialization even when a query touches one
subtree.  :class:`DocumentStore` persists the *shredded* form instead —
one row per node::

    nodes(doc, pre, post, parent, name, kind, vtype, value, num, ident, col)

``pre`` is the node's pre-order position and ``post`` is the half-open
end of its subtree interval (``post = pre + subtree size``), computed by
exactly the traversal :class:`~repro.model.indexes.DocumentIndex` uses,
so the two encodings are interchangeable position-for-position:

* *descendant of s*  ⇔  ``s.pre < t.pre AND t.pre < s.post``
* *child of s*       ⇔  ``t.parent = s.pre``

which is what lets the pushdown pass (:mod:`repro.store.pushdown`)
translate ``**`` descents into interval self-joins the database runs.

Reads come in three granularities, cheapest first:

* positional metadata only (:class:`StoreDocumentIndex`) — the
  ``DocumentIndex``-compatible arrays straight from the rows, no
  :class:`~repro.model.trees.DataNode` ever built;
* lazy subtree hydration (:meth:`DocumentStore.hydrate`) — one pre/post
  range read materializes just the subtree a binding needs, memoized per
  ``(doc, pre)`` and data version;
* full document hydration (:meth:`DocumentStore.hydrate_document`) —
  the compatibility path behind ``Wrapper.document()``.

All state is guarded by one lock (sqlite connections are shared across
the server's request threads) and the hydration memo is bounded, the
same ``RequestContext``-safety rules every process-wide memo follows
since PR 6.  The ``version`` counter bumps on every insert/update so
wrapper document memos, plan-cache epochs and the ``IndexRegistry``
never serve stale shredded rows.
"""

from __future__ import annotations

import bisect
import sqlite3
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SourceError
from repro.model.trees import DataNode
from repro.model.values import Atom, atom_type_name, parse_atom
from repro.model.xml_io import serialized_size

_SCHEMA = """
CREATE TABLE IF NOT EXISTS documents (
    doc TEXT PRIMARY KEY,
    nodes INTEGER NOT NULL,
    bytes INTEGER NOT NULL,
    root_children INTEGER NOT NULL,
    pushdown_safe INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS nodes (
    doc TEXT NOT NULL,
    pre INTEGER NOT NULL,
    post INTEGER NOT NULL,
    parent INTEGER,
    name TEXT NOT NULL,
    kind TEXT NOT NULL,
    vtype TEXT,
    value TEXT,
    num REAL,
    ident TEXT,
    col TEXT,
    PRIMARY KEY (doc, pre)
);
CREATE INDEX IF NOT EXISTS nodes_by_name ON nodes (doc, name, pre);
CREATE INDEX IF NOT EXISTS nodes_by_parent ON nodes (doc, parent, pre);
CREATE INDEX IF NOT EXISTS nodes_by_num ON nodes (doc, num);
CREATE INDEX IF NOT EXISTS nodes_by_value ON nodes (doc, value);
"""


def _atom_text(atom: Atom) -> str:
    """Round-trippable text for an atom (inverse of ``parse_atom``)."""
    if isinstance(atom, bool):
        return "true" if atom else "false"
    if isinstance(atom, float):
        return repr(atom)
    return str(atom)


def _atom_num(atom: Atom) -> Optional[float]:
    """The REAL comparison key for numeric atoms, ``None`` when unsafe.

    Stored only when ``float(atom) == atom`` exactly: then two exactly-
    representable numerics are Python-equal iff their REALs are equal
    (``True == 1 == 1.0``), and a lossy value (a > 2**53 integer, NaN)
    can never equal an exactly-representable constant, so leaving its
    ``num`` NULL is the correct "matches no pushed constant" encoding.
    """
    if isinstance(atom, str):
        return None
    try:
        key = float(atom)
    except OverflowError:
        return None
    if key != key or key != atom:  # NaN, or not exactly representable
        return None
    return key


def shred(root: DataNode) -> Tuple[list, int, bool]:
    """Flatten *root* into node rows with pre/post interval positions.

    Returns ``(rows, count, pushdown_safe)`` where each row is the
    ``nodes`` tuple minus the leading document name.  The traversal is
    the :class:`~repro.model.indexes.DocumentIndex` one — iterative
    pre-order with a backward subtree-size accumulation — so positions
    agree with the in-memory index byte for byte.  Reference nodes and
    shared subtrees make the document *pushdown-unsafe* (the mirror of
    ``DocumentIndex.supports_seek``): its queries fall back to hydrated
    scans where the recursive matcher owns the semantics.
    """
    nodes: List[DataNode] = []
    parents: List[int] = []
    seen_ids: set = set()
    shared = False
    has_references = False
    stack: List[Tuple[DataNode, int]] = [(root, -1)]
    while stack:
        node, parent = stack.pop()
        position = len(nodes)
        if id(node) in seen_ids:
            shared = True
        seen_ids.add(id(node))
        nodes.append(node)
        parents.append(parent)
        if node.is_reference:
            has_references = True
        for child in reversed(node.children):
            stack.append((child, position))

    count = len(nodes)
    sizes = [1] * count
    for position in range(count - 1, 0, -1):
        sizes[parents[position]] += sizes[position]

    rows = []
    for position, node in enumerate(nodes):
        parent = parents[position] if position else None
        if node.is_atom_leaf:
            kind, vtype = "atom", atom_type_name(node.atom)
            value, num = _atom_text(node.atom), _atom_num(node.atom)
        elif node.is_reference:
            kind, vtype, value, num = "ref", None, node.ref_target, None
        else:
            kind, vtype, value, num = "elem", None, None, None
        rows.append(
            (
                position,
                position + sizes[position],
                parent,
                node.label,
                kind,
                vtype,
                value,
                num,
                node.ident,
                node.collection,
            )
        )
    return rows, count, not has_references and not shared


def _build_subtree(rows: Sequence[tuple]) -> DataNode:
    """Rebuild a tree from its ``(pre, parent, name, kind, vtype, value,
    ident, col)`` rows, which must be a complete subtree in pre order."""
    pending: Dict[int, List[DataNode]] = {}
    node: Optional[DataNode] = None
    for pre, parent, name, kind, vtype, value, ident, col in reversed(rows):
        children = pending.pop(pre, [])
        children.reverse()
        if kind == "atom":
            node = DataNode(
                name, atom=parse_atom(vtype, value), ident=ident, collection=col
            )
        elif kind == "ref":
            node = DataNode(name, ref_target=value, ident=ident, collection=col)
        else:
            node = DataNode(name, children=children, ident=ident, collection=col)
        pending.setdefault(parent if parent is not None else -1, []).append(node)
    assert node is not None
    return node


class StoreDocumentIndex:
    """``DocumentIndex``-compatible positional metadata from stored rows.

    Loaded with four ``SELECT``-sized arrays and *no* tree
    materialization: labels, parents and subtree ends in pre order, plus
    the per-label position lists the associative paths use.  Tests
    assert the arrays equal a :class:`~repro.model.indexes.DocumentIndex`
    built over the hydrated tree, which is what entitles twig kernels
    and interval pushdowns to treat stored positions as index positions.
    """

    __slots__ = (
        "document",
        "labels",
        "parents",
        "subtree_ends",
        "label_positions",
        "supports_seek",
    )

    def __init__(
        self,
        document: str,
        labels: Sequence[str],
        parents: Sequence[Optional[int]],
        subtree_ends: Sequence[int],
        supports_seek: bool,
    ) -> None:
        self.document = document
        self.labels = tuple(labels)
        self.parents = tuple(parents)
        self.subtree_ends = tuple(subtree_ends)
        self.supports_seek = supports_seek
        positions: Dict[str, List[int]] = {}
        for position, label in enumerate(self.labels):
            positions.setdefault(label, []).append(position)
        self.label_positions = positions

    @property
    def node_count(self) -> int:
        return len(self.labels)

    def label_list(self, label: str) -> Sequence[int]:
        """Pre-order positions of every node carrying *label*."""
        return self.label_positions.get(label, ())

    def descendants_with_label(self, scope: int, label: str) -> Sequence[int]:
        """Positions of *label* inside the subtree at *scope* (incl. self)."""
        positions = self.label_positions.get(label, ())
        end = self.subtree_ends[scope]
        lo = bisect.bisect_left(positions, scope)
        hi = bisect.bisect_left(positions, end, lo)
        return positions[lo:hi]

    def children_with_label(self, scope: int, label: str) -> Sequence[int]:
        """Positions of *label* children of the node at *scope*."""
        return tuple(
            position
            for position in self.descendants_with_label(scope, label)
            if self.parents[position] == scope
        )


class DocumentStore:
    """A sqlite-backed store of shredded documents with lazy hydration."""

    #: Bound on the ``(doc, pre) -> subtree`` hydration memo.
    HYDRATION_MEMO_CAPACITY = 128

    def __init__(
        self, path: str = ":memory:", hydration_memo_capacity: Optional[int] = None
    ) -> None:
        self.path = path
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._lock = threading.RLock()
        #: Monotonic data version; every insert/update bumps it so the
        #: wrapper document memo, the mediator's plan-cache epoch and the
        #: ``IndexRegistry`` can detect stale shredded rows.
        self.version = 0
        self._memo_capacity = (
            self.HYDRATION_MEMO_CAPACITY
            if hydration_memo_capacity is None
            else hydration_memo_capacity
        )
        self._hydration: Dict[Tuple[str, int], Tuple[int, DataNode]] = {}
        self._memo_evictions = 0
        self._memo_hits = 0
        # Cumulative counters (exported as yat_store_* gauges) and the
        # since-last-pop delta fed into per-execution ExecutionStats.
        self._counters = {
            "rows_shredded": 0,
            "pushdowns": 0,
            "scans": 0,
            "hydrated_nodes": 0,
            "bytes_avoided": 0,
        }
        self._delta = {
            "pushdowns": 0,
            "scans": 0,
            "hydrated_nodes": 0,
            "bytes_avoided": 0,
        }

    # -- writes ------------------------------------------------------------------

    def add(self, name: str, tree: DataNode) -> int:
        """Shred *tree* as document *name*, replacing any previous rows.

        Returns the number of node rows written.  Bumps :attr:`version`:
        stale hydrations and downstream document memos die with the old
        version number.
        """
        rows, count, safe = shred(tree)
        byte_size = serialized_size(tree)
        with self._lock:
            self._conn.execute("DELETE FROM nodes WHERE doc = ?", (name,))
            self._conn.executemany(
                "INSERT INTO nodes (doc, pre, post, parent, name, kind, vtype,"
                " value, num, ident, col) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
                [(name, *row) for row in rows],
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO documents"
                " (doc, nodes, bytes, root_children, pushdown_safe)"
                " VALUES (?,?,?,?,?)",
                (name, count, byte_size, len(tree.children), int(safe)),
            )
            # Refresh planner statistics: interval self-joins pick join
            # orders from these, and stale/absent stats turn an indexed
            # probe into a per-row table scan.
            self._conn.execute("ANALYZE")
            self._conn.commit()
            self.version += 1
            self._counters["rows_shredded"] += count
            # Stale hydrations are dropped eagerly rather than waiting
            # for capacity eviction: an update typically precedes reads
            # of the same document.
            for key in [k for k in self._hydration if k[0] == name]:
                del self._hydration[key]
        return count

    # -- metadata ----------------------------------------------------------------

    def document_names(self) -> Tuple[str, ...]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT doc FROM documents ORDER BY doc"
            ).fetchall()
        return tuple(row[0] for row in rows)

    def _meta(self, name: str) -> Tuple[int, int, int, bool]:
        row = self._conn.execute(
            "SELECT nodes, bytes, root_children, pushdown_safe"
            " FROM documents WHERE doc = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise SourceError(f"document store holds no document {name!r}")
        return row[0], row[1], row[2], bool(row[3])

    def node_count(self, name: str) -> int:
        with self._lock:
            return self._meta(name)[0]

    def byte_size(self, name: str) -> int:
        with self._lock:
            return self._meta(name)[1]

    def root_cardinality(self, name: str) -> int:
        with self._lock:
            return self._meta(name)[2]

    def root_label(self, name: str) -> str:
        with self._lock:
            row = self._conn.execute(
                "SELECT name FROM nodes WHERE doc = ? AND pre = 0", (name,)
            ).fetchone()
        if row is None:
            raise SourceError(f"document store holds no document {name!r}")
        return row[0]

    def pushdown_safe(self, name: str) -> bool:
        """Whether interval pushdown is sound for *name*.

        ``False`` for documents with reference nodes or shared subtrees
        — the same shapes ``DocumentIndex.supports_seek`` refuses —
        whose queries must run through the recursive matcher instead.
        """
        with self._lock:
            return self._meta(name)[3]

    def positional_index(self, name: str) -> StoreDocumentIndex:
        """Positional metadata for *name* without materializing the tree."""
        with self._lock:
            safe = self._meta(name)[3]
            rows = self._conn.execute(
                "SELECT name, parent, post FROM nodes WHERE doc = ?"
                " ORDER BY pre",
                (name,),
            ).fetchall()
        return StoreDocumentIndex(
            name,
            labels=[row[0] for row in rows],
            parents=[row[1] if row[1] is not None else -1 for row in rows],
            subtree_ends=[row[2] for row in rows],
            supports_seek=safe,
        )

    # -- hydration ---------------------------------------------------------------

    def hydrate(self, name: str, pre: int = 0) -> DataNode:
        """Materialize the subtree rooted at position *pre* of *name*.

        One pre/post range read, memoized per ``(doc, pre)`` and data
        version so repeated bindings of the same subtree share one node
        object (document indexes and distinct() key on tree identity).
        """
        with self._lock:
            version = self.version
            entry = self._hydration.get((name, pre))
            if entry is not None and entry[0] == version:
                self._memo_hits += 1
                return entry[1]
            rows = self._conn.execute(
                "SELECT pre, parent, name, kind, vtype, value, ident, col"
                " FROM nodes WHERE doc = ? AND pre >= ? AND pre <"
                " (SELECT post FROM nodes WHERE doc = ? AND pre = ?)"
                " ORDER BY pre",
                (name, pre, name, pre),
            ).fetchall()
        if not rows:
            raise SourceError(
                f"document {name!r} has no node at position {pre}"
            )
        node = _build_subtree(rows)
        with self._lock:
            self._counters["hydrated_nodes"] += len(rows)
            self._delta["hydrated_nodes"] += len(rows)
            if self.version == version and self._memo_capacity > 0:
                incumbent = self._hydration.get((name, pre))
                if incumbent is not None and incumbent[0] == version:
                    # A concurrent hydration won; keep its node so every
                    # caller sees one stable object.
                    self._memo_hits += 1
                    return incumbent[1]
                while len(self._hydration) >= self._memo_capacity:
                    self._hydration.pop(next(iter(self._hydration)))
                    self._memo_evictions += 1
                self._hydration[(name, pre)] = (version, node)
        return node

    def hydrate_document(self, name: str) -> DataNode:
        """Materialize the whole document (the full-transfer path)."""
        self._meta_checked(name)
        return self.hydrate(name, 0)

    def _meta_checked(self, name: str) -> None:
        with self._lock:
            self._meta(name)

    # -- pushdown plumbing ---------------------------------------------------------

    def fetch_bounded(
        self, sql: str, params: Sequence[object], bound: int
    ) -> List[tuple]:
        """Run a pushdown query, refusing result sets past *bound* rows."""
        with self._lock:
            cursor = self._conn.execute(sql, tuple(params))
            rows = cursor.fetchmany(bound + 1)
        if len(rows) > bound:
            from repro.errors import BindError

            raise BindError(
                f"filter produces more than {bound} bindings for one tree; "
                f"refusing the cartesian explosion"
            )
        return rows

    def note_pushdown(self, name: str, touched_nodes: int) -> None:
        """Account one pushdown execution that touched *touched_nodes*.

        ``bytes_avoided`` is the serialized size of the document scaled
        by the untouched node fraction — an estimate, but one computed
        from real stored metadata, not a guess.
        """
        with self._lock:
            total_nodes, total_bytes, _children, _safe = self._meta(name)
            touched = min(touched_nodes, total_nodes)
            avoided = (
                total_bytes * (total_nodes - touched) // total_nodes
                if total_nodes
                else 0
            )
            self._counters["pushdowns"] += 1
            self._delta["pushdowns"] += 1
            self._counters["bytes_avoided"] += avoided
            self._delta["bytes_avoided"] += avoided

    def note_scan(self, name: str) -> None:
        with self._lock:
            self._counters["scans"] += 1
            self._delta["scans"] += 1

    # -- statistics ----------------------------------------------------------------

    def pop_stats(self) -> Dict[str, int]:
        """Per-execution counter delta since the last pop (may be empty)."""
        with self._lock:
            delta = {key: value for key, value in self._delta.items() if value}
            for key in self._delta:
                self._delta[key] = 0
        return delta

    def stats(self) -> Dict[str, int]:
        """Cumulative counters (process lifetime)."""
        with self._lock:
            stats = dict(self._counters)
            stats["documents"] = self._conn.execute(
                "SELECT COUNT(*) FROM documents"
            ).fetchone()[0]
            stats["version"] = self.version
        return stats

    def memo_stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._hydration),
                "capacity": self._memo_capacity,
                "evictions": self._memo_evictions,
                "hits": self._memo_hits,
            }

    def close(self) -> None:
        with self._lock:
            self._conn.close()
