"""Out-of-core document storage (ROADMAP item 2).

Shreds YAT trees into a sqlite ``nodes`` table keyed by pre-order
position with half-open ``[pre, post)`` subtree intervals, reconstructs
positional metadata without materializing trees, hydrates subtrees on
demand, and compiles the constant-restricted Bind fragment — child
steps, ``**`` descents, leaf constants — into SQL interval self-joins.
"""

from repro.store.document_store import (
    DocumentStore,
    StoreDocumentIndex,
    shred,
)
from repro.store.pushdown import PushdownQuery, compile_pushdown

__all__ = [
    "DocumentStore",
    "PushdownQuery",
    "StoreDocumentIndex",
    "compile_pushdown",
    "shred",
]
