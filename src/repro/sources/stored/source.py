"""A source whose documents live shredded in a :class:`DocumentStore`.

The in-memory sources (O2, Wais, SQL) hold Python object graphs and
export trees by construction; this source holds *rows*.  Documents enter
as XML text or as already-built trees, are shredded once on ingest, and
are only ever rehydrated lazily — the wrapper reads positional metadata
and subtree ranges, not the whole document.

The class is deliberately thin: ingest, catalog, and a handle on the
underlying store.  All query capability lives in
:class:`repro.wrappers.store_wrapper.StoreWrapper`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.model.trees import DataNode
from repro.model.xml_io import xml_to_tree
from repro.store.document_store import DocumentStore


class StoredXmlSource:
    """XML documents persisted in a sqlite shred.

    ``path`` is the sqlite database file (``":memory:"`` keeps the shred
    process-local, which the tests and benchmarks use; a real deployment
    points at a file so documents outlive the process and scale past
    RAM).
    """

    def __init__(
        self, path: str = ":memory:", store: Optional[DocumentStore] = None
    ) -> None:
        self.store = store if store is not None else DocumentStore(path)

    # -- ingest -------------------------------------------------------------

    def add_tree(self, name: str, tree: DataNode) -> int:
        """Shred *tree* as document *name*; returns rows written."""
        return self.store.add(name, tree)

    def add_xml(self, name: str, text: str) -> int:
        """Parse and shred an XML document; returns rows written."""
        return self.add_tree(name, xml_to_tree(text))

    def load_file(self, path: str, name: Optional[str] = None) -> int:
        """Shred the XML document at *path* (named after its stem by
        default); returns rows written."""
        if name is None:
            stem = path.rsplit("/", 1)[-1]
            name = stem[:-4] if stem.endswith(".xml") else stem
        with open(path, "r", encoding="utf-8") as handle:
            return self.add_xml(name, handle.read())

    # -- catalog ------------------------------------------------------------

    def document_names(self) -> Tuple[str, ...]:
        return self.store.document_names()

    @property
    def version(self) -> int:
        return self.store.version

    def close(self) -> None:
        self.store.close()
