"""The stored-XML source: documents living in a sqlite shred."""

from repro.sources.stored.source import StoredXmlSource

__all__ = ["StoredXmlSource"]
