"""Sharded and replicated logical sources.

See :mod:`repro.sources.sharded.partition` for the placement/pruning
contract, :mod:`repro.sources.sharded.adapter` for the adapters, and
:mod:`repro.sources.sharded.wais` for the Wais sharding helpers.
"""

from repro.sources.sharded.adapter import (
    ReplicaSet,
    ShardTopology,
    ShardedSourceAdapter,
    shard_name,
)
from repro.sources.sharded.partition import (
    HashPartition,
    RangePartition,
    canonical_key,
    document_key_value,
)
from repro.sources.sharded.wais import (
    build_sharded_wais,
    shard_major_store,
    shard_wais_store,
)

__all__ = [
    "HashPartition",
    "RangePartition",
    "ReplicaSet",
    "ShardTopology",
    "ShardedSourceAdapter",
    "build_sharded_wais",
    "canonical_key",
    "document_key_value",
    "shard_major_store",
    "shard_name",
    "shard_wais_store",
]
