"""Partitioning functions for sharded logical sources.

A partition scheme maps the value of one *partition-key label* (e.g.
every work's ``artist`` element) to the shard that owns the document.
The same function serves two masters, and soundness of shard pruning is
exactly their agreement:

* **placement** — :func:`shard_wais_store` (and any other shard loader)
  calls :meth:`shard_of` on each document's key value to decide where
  the document lives;
* **pruning** — the shard-expansion rule calls :meth:`prune` on the
  constant of a partition-key restriction to decide which shards could
  possibly hold a matching document.

Values are canonicalized exactly like the evaluator's ``=`` (see
``_eq_key`` in :mod:`repro.core.algebra.evaluator`): atom leaves unwrap
to their atoms, and booleans/ints/floats collapse to one numeric class —
so a REAL-keyed label partitioned on ``5`` owns queries restricted to
``5.0`` too.  A value outside the scheme's comparable domain simply
yields no pruning (:meth:`prune` returns ``None``), never a wrong shard.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, bisect_right
from typing import Optional, Sequence, Tuple

from repro.errors import SourceError
from repro.model.filters import MissingValue
from repro.model.trees import DataNode


def canonical_key(value) -> Optional[tuple]:
    """``("num", float)`` / ``("str", str)`` mirror of ``=`` semantics.

    ``None`` for values equality can never relate to a partition-key
    constant (missing values, whole subtrees, references): placement
    may still put the document somewhere, but pruning must not assume
    anything about it.
    """
    if isinstance(value, DataNode):
        if not value.is_atom_leaf:
            return None
        value = value.atom
    if isinstance(value, MissingValue) or value is None:
        return None
    if isinstance(value, (bool, int, float)):
        return ("num", float(value))
    if isinstance(value, str):
        return ("str", value)
    return None


class HashPartition:
    """Hash partitioning on one key label: ``sha256(canonical) mod N``.

    Deterministic across processes (no Python hash randomization), so a
    topology built today routes identically tomorrow.  Only equality
    restrictions prune — a hash preserves nothing about order.
    """

    kind = "hash"

    __slots__ = ("key", "shards")

    def __init__(self, key: str, shards: int) -> None:
        if shards < 1:
            raise ValueError("a partition needs at least one shard")
        self.key = key
        self.shards = shards

    def shard_of(self, value) -> int:
        canonical = canonical_key(value)
        if canonical is None:
            # Documents without a usable key value can never satisfy an
            # equality on the key, so any fixed home is sound.
            return 0
        digest = hashlib.sha256(repr(canonical).encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.shards

    def prune(self, op: str, value) -> Optional[frozenset]:
        """Shards that could hold a document whose key *op* *value*."""
        if op != "=":
            return None
        if canonical_key(value) is None:
            return None
        return frozenset((self.shard_of(value),))

    def spec_key(self) -> tuple:
        return ("hash", self.key, self.shards)

    def __repr__(self) -> str:
        return f"HashPartition(key={self.key!r}, shards={self.shards})"


class RangePartition:
    """Range partitioning on one key label over sorted split bounds.

    ``bounds`` are the N-1 split points of N shards: shard 0 holds
    values below ``bounds[0]``, shard i holds ``bounds[i-1] <= v <
    bounds[i]``, and the last shard holds everything from the final
    bound up.  All bounds must canonicalize to one class (all numeric
    or all string); equality *and* bounded comparisons prune.
    """

    kind = "range"

    __slots__ = ("key", "bounds", "_class", "_edges")

    def __init__(self, key: str, bounds: Sequence) -> None:
        if not bounds:
            raise ValueError("a range partition needs at least one bound")
        self.key = key
        self.bounds = tuple(bounds)
        canonicals = [canonical_key(bound) for bound in self.bounds]
        if any(c is None for c in canonicals):
            raise ValueError("range bounds must be atoms (numbers or strings)")
        classes = {c[0] for c in canonicals}
        if len(classes) != 1:
            raise ValueError("range bounds must all be numeric or all strings")
        self._class = classes.pop()
        self._edges = tuple(c[1] for c in canonicals)
        if list(self._edges) != sorted(self._edges):
            raise ValueError("range bounds must be strictly increasing")
        if len(set(self._edges)) != len(self._edges):
            raise ValueError("range bounds must be strictly increasing")

    @property
    def shards(self) -> int:
        return len(self.bounds) + 1

    def _edge_value(self, value) -> Optional[object]:
        canonical = canonical_key(value)
        if canonical is None or canonical[0] != self._class:
            return None
        return canonical[1]

    def shard_of(self, value) -> int:
        edge = self._edge_value(value)
        if edge is None:
            return 0
        return bisect_right(self._edges, edge)

    def prune(self, op: str, value) -> Optional[frozenset]:
        edge = self._edge_value(value)
        if edge is None:
            return None
        total = self.shards
        if op == "=":
            return frozenset((bisect_right(self._edges, edge),))
        if op == "<":
            return frozenset(range(0, bisect_left(self._edges, edge) + 1))
        if op == "<=":
            return frozenset(range(0, bisect_right(self._edges, edge) + 1))
        if op in (">", ">="):
            return frozenset(range(bisect_right(self._edges, edge), total))
        return None

    def spec_key(self) -> tuple:
        return ("range", self.key, self._class, self._edges)

    def __repr__(self) -> str:
        return f"RangePartition(key={self.key!r}, bounds={self.bounds!r})"


def document_key_value(document: DataNode, key: str):
    """The partition-key value of one document: its first *key*-labeled
    top-level child (``None`` when absent or not an atom leaf).

    Raises :class:`SourceError` on a multi-valued key — a document with
    two key children could match an equality through either value, which
    would break the placement/pruning agreement.
    """
    found = [child for child in document.children if child.label == key]
    if len(found) > 1:
        raise SourceError(
            f"document {document.ident or document.label!r} has "
            f"{len(found)} {key!r} children; partition keys must be "
            "single-valued"
        )
    if not found or not found[0].is_atom_leaf:
        return None
    return found[0].atom
