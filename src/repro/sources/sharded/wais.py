"""Sharding helpers for Wais collections.

:func:`shard_wais_store` splits one :class:`WaisStore` into N shard
stores by routing each document through the partition scheme —
placement and pruning share one function, which is the soundness
contract of :mod:`repro.sources.sharded.partition`.  Within a shard,
documents keep their original relative order, so the shard-major
concatenation (shard 0's documents, then shard 1's, ...) is a stable
permutation of the input; :func:`shard_major_store` materializes that
permutation as a monolithic store, which is the differential oracle the
sharded federation must match byte for byte.

:func:`build_sharded_wais` goes one step further and builds the
per-shard adapters ready for ``connect_sharded``: one
:class:`~repro.wrappers.wais_wrapper.WaisWrapper` per shard, or a
:class:`~repro.sources.sharded.adapter.ReplicaSet` of them when
``replicas > 1``.  The optional ``wrap`` hook interposes on every
replica wrapper (fault injection in tests and benchmarks).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.sources.sharded.adapter import ReplicaSet, shard_name
from repro.sources.sharded.partition import document_key_value
from repro.sources.wais.store import WaisStore
from repro.wrappers.wais_wrapper import WaisWrapper


def shard_wais_store(store: WaisStore, partition) -> Tuple[WaisStore, ...]:
    """Split *store* into ``partition.shards`` stores by the key label."""
    shards = [
        WaisStore(collection_label=store.collection_label)
        for _ in range(partition.shards)
    ]
    for doc_id in store.document_ids():
        document = store.fetch(doc_id)
        value = document_key_value(document, partition.key)
        shards[partition.shard_of(value)].add(document, doc_id=doc_id)
    return tuple(shards)


def shard_major_store(shards: Sequence[WaisStore]) -> WaisStore:
    """One monolithic store holding the shards' documents in shard-major
    order — the oracle a scatter-gather execution must equal."""
    merged = WaisStore(collection_label=shards[0].collection_label)
    for shard in shards:
        for doc_id in shard.document_ids():
            merged.add(shard.fetch(doc_id), doc_id=doc_id)
    return merged


def build_sharded_wais(
    logical: str,
    stores: Sequence[WaisStore],
    document_name: str = "artworks",
    replicas: int = 1,
    wrap: Optional[Callable[[WaisWrapper, int, int], object]] = None,
):
    """Per-shard adapters for ``connect_sharded``.

    One wrapper per shard named ``logical#i``; with ``replicas > 1``
    each shard becomes a :class:`ReplicaSet` of that many wrappers over
    the same shard store.  ``wrap(wrapper, shard, replica)`` may replace
    any replica wrapper (e.g. with a
    :class:`~repro.testing.faults.FaultyWrapper`).
    """
    adapters: List[object] = []
    for index, store in enumerate(stores):
        name = shard_name(logical, index)
        members = []
        for replica in range(max(1, replicas)):
            wrapper: object = WaisWrapper(name, store, document_name=document_name)
            if wrap is not None:
                wrapper = wrap(wrapper, index, replica)
            members.append(wrapper)
        if len(members) == 1 and replicas <= 1:
            adapters.append(members[0])
        else:
            adapters.append(ReplicaSet(name, members))
    return tuple(adapters)
