"""Sharded and replicated source adapters.

A *sharded* logical source is N shard sources registered together under
one logical name: the catalog claims the exported documents for the
logical name only, while the per-shard adapters (and their capability
interfaces) register under the shard names ``logical#0 .. logical#N-1``.
Three adapters cooperate:

* :class:`ReplicaSet` — one shard served by several interchangeable
  replicas.  Direct (policy-less) execution fails over in-adapter: each
  call tries replicas in declaration order and the first healthy answer
  wins.  Under a :class:`~repro.mediator.resilience.PolicyRuntime` the
  runtime's :class:`~repro.mediator.resilience.FailoverAdapter` takes
  over instead, giving every replica its own circuit breaker and
  :class:`~repro.mediator.resilience.SourceOutcome` record.
* :class:`ShardedSourceAdapter` — the logical source itself.  Its
  ``document()`` is *defined* as the shard-major concatenation of the
  shard documents (shard 0's entries, then shard 1's, ...), which is the
  order every scatter-gather plan reproduces; un-expanded plans that
  read the logical source directly therefore agree byte-for-byte with
  expanded ones.
* :class:`ShardTopology` — the catalog-side metadata (partition scheme
  plus shard names) the shard-expansion rule plans against.

``data_version()`` of a replica set is the tuple of its replicas'
versions, and the logical adapter's is the tuple of its shards' — the
result cache compares version vectors by equality, so a write to one
shard invalidates exactly the entries whose plans read that shard.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SourceError, SourceUnavailableError
from repro.core.algebra.evaluator import SourceAdapter
from repro.core.algebra.operators import Plan, SourceOp
from repro.core.algebra.tab import Row, Tab
from repro.model.trees import DataNode


def shard_name(logical: str, index: int) -> str:
    """Catalog name of shard *index* of the logical source *logical*."""
    return f"{logical}#{index}"


def _retarget(plan: Plan, old: str, new: str) -> Plan:
    """The same fragment with its Source leaves renamed *old* → *new*."""
    if isinstance(plan, SourceOp) and plan.source == old:
        return SourceOp(new, plan.document)
    children = plan.children()
    if not children:
        return plan
    return plan.with_children(
        [_retarget(child, old, new) for child in children]
    )


class ShardTopology:
    """Catalog metadata of one sharded logical source."""

    __slots__ = ("logical", "partition", "shard_names")

    def __init__(
        self, logical: str, partition, shard_names: Sequence[str]
    ) -> None:
        if len(shard_names) != partition.shards:
            raise SourceError(
                f"topology for {logical!r} names {len(shard_names)} shards "
                f"but the partition defines {partition.shards}"
            )
        self.logical = logical
        self.partition = partition
        self.shard_names = tuple(shard_names)

    @property
    def total(self) -> int:
        return len(self.shard_names)

    def __repr__(self) -> str:
        return (
            f"ShardTopology({self.logical!r}, {self.partition!r}, "
            f"{self.total} shards)"
        )


class ReplicaSet(SourceAdapter):
    """One shard behind several interchangeable replicas.

    All replicas must serve the same data (same documents, same
    versions); the set exists for availability, not capacity.  Replica
    scope names (``shard/r0``, ``shard/r1``, ...) key the per-replica
    circuit breakers and outcome records under a resilience policy.
    """

    def __init__(self, name: str, replicas: Sequence[SourceAdapter]) -> None:
        if not replicas:
            raise SourceError(f"replica set {name!r} needs at least one replica")
        self.name = name
        self.replicas = tuple(replicas)
        self._document_name_set: Optional[frozenset] = None

    def replica_name(self, index: int) -> str:
        return f"{self.name}/r{index}"

    # -- catalog metadata (never faulted, served by the primary) -----------------

    def interface_xml(self) -> str:
        return self.replicas[0].interface_xml()

    def document_names(self) -> Tuple[str, ...]:
        return self.replicas[0].document_names()

    def document_name_set(self) -> frozenset:
        if self._document_name_set is None:
            self._document_name_set = frozenset(self.document_names())
        return self._document_name_set

    def data_version(self):
        return tuple(
            getattr(replica, "data_version", lambda: 0)()
            for replica in self.replicas
        )

    # -- data plane with in-adapter failover --------------------------------------

    def _failover(self, operation, invoke):
        errors: List[SourceError] = []
        for replica in self.replicas:
            try:
                return invoke(replica)
            except SourceError as error:
                errors.append(error)
        raise SourceUnavailableError(
            f"every replica of {self.name!r} failed {operation}: "
            f"{errors[-1]}",
            source=self.name,
            attempts=len(self.replicas),
        ) from errors[-1]

    def document(self, name: str) -> DataNode:
        return self._failover("document", lambda r: r.document(name))

    def ident_index(self) -> Dict[str, DataNode]:
        return self._failover("ident_index", lambda r: r.ident_index())

    def execute_pushed(
        self, plan: Plan, outer: Optional[Row] = None
    ) -> Tuple[Tab, str]:
        return self._failover(
            "execute_pushed", lambda r: r.execute_pushed(plan, outer)
        )


class ShardedSourceAdapter(SourceAdapter):
    """The logical source: shard-major concatenation of shard documents.

    Reading the logical source transfers *every* shard — it exists so
    that un-expanded plans (and the optimizer-off baseline) stay
    correct.  The shard-expansion rule rewrites Bind chains over this
    source into per-shard scatter branches that reproduce exactly this
    adapter's document order.
    """

    def __init__(self, name: str, shards: Sequence[SourceAdapter]) -> None:
        if not shards:
            raise SourceError(f"sharded source {name!r} needs at least one shard")
        self.name = name
        self.shards = tuple(shards)
        self._document_name_set: Optional[frozenset] = None
        #: ``name -> (version vector, tree)``: repeated reads at one
        #: version serve one stable tree, keeping identity-keyed caches
        #: (document indexes) effective across queries.
        self._documents: Dict[str, Tuple[tuple, DataNode]] = {}
        self._memo_lock = threading.Lock()

    def document_names(self) -> Tuple[str, ...]:
        return self.shards[0].document_names()

    def document_name_set(self) -> frozenset:
        if self._document_name_set is None:
            self._document_name_set = frozenset(self.document_names())
        return self._document_name_set

    def data_version(self):
        return tuple(
            getattr(shard, "data_version", lambda: 0)()
            for shard in self.shards
        )

    def document(self, name: str) -> DataNode:
        version = self.data_version()
        with self._memo_lock:
            entry = self._documents.get(name)
            if entry is not None and entry[0] == version:
                return entry[1]
        parts = [shard.document(name) for shard in self.shards]
        label = parts[0].label
        children: List[DataNode] = []
        for part in parts:
            if part.label != label:
                raise SourceError(
                    f"shards of {self.name!r} disagree on the root label of "
                    f"{name!r}: {label!r} vs {part.label!r}"
                )
            children.extend(part.children)
        tree = DataNode(
            label, children=children, collection=parts[0].collection
        )
        with self._memo_lock:
            entry = self._documents.get(name)
            if entry is not None and entry[0] == version:
                return entry[1]
            self._documents[name] = (version, tree)
        return tree

    def ident_index(self) -> Dict[str, DataNode]:
        # The shard adapters are registered sources themselves, so the
        # environment already merges their ident indexes; contributing
        # them twice here would only duplicate work.
        return {}

    def execute_pushed(
        self, plan: Plan, outer: Optional[Row] = None
    ) -> Tuple[Tab, str]:
        """Scatter a fragment pushed at the *logical* source.

        Reached only when shard expansion declined the chain but
        capability pushdown still matched it.  Every admissible fragment
        binds per-work rows (``bind.on`` is the document and ``keep_on``
        is false), so the shard-major concatenation of the per-shard
        answers equals the answer over the concatenated document.
        """
        for node in plan.walk():
            if getattr(node, "keep_on", False):
                raise SourceError(
                    f"fragment keeps the whole document of {self.name!r}; "
                    "a sharded source cannot scatter it"
                )
        tabs = []
        native = ""
        for shard in self.shards:
            retargeted = _retarget(plan, self.name, shard.name)
            tab, native = shard.execute_pushed(retargeted, outer)
            tabs.append(tab)
        rows: List[Row] = []
        for tab in tabs:
            rows.extend(tab.rows)
        return (
            Tab(tabs[0].columns, rows),
            f"scatter[{len(self.shards)} shards]: {native}",
        )
