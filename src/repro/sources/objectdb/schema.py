"""ODMG-style schemas for the mini-O2 object database.

The paper's structured source is an O2 database whose data model "conforms
to the ODMG standard" (Section 2, Figure 3): atomic types, tuples of named
attributes, collections (``set``/``bag``/``list``/``array``) and references
to classes; classes have extents and may carry methods (Section 4's
``current_price`` example).

A :class:`Schema` can export itself as YAT type patterns in the encoding
of Figure 3 — ``class`` node → class-name node → ``tuple`` node → attribute
nodes — which is also the encoding the O2 wrapper uses for data trees, so
that the paper's filters (``set *class: artifact: tuple [title: $t, ...]``)
apply verbatim.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.model.patterns import (
    PAtomic,
    PNode,
    PRef,
    PStar,
    Pattern,
    PatternLibrary,
)
from repro.model.values import ATOMIC_TYPE_NAMES, COLLECTION_KINDS


class OdmgType:
    """Base class of ODMG types."""

    __slots__ = ()

    def to_pattern(self, schema: "Schema") -> Pattern:
        """The YAT type pattern for values of this type."""
        raise NotImplementedError


class AtomicType(OdmgType):
    """``Int``, ``Bool``, ``Float`` or ``String``."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if name not in ATOMIC_TYPE_NAMES:
            raise SchemaError(f"unknown atomic type: {name!r}")
        self.name = name

    def to_pattern(self, schema: "Schema") -> Pattern:
        return PAtomic(self.name)

    def __repr__(self) -> str:
        return f"AtomicType({self.name!r})"


class TupleType(OdmgType):
    """A tuple of named attributes (order preserved for display only)."""

    __slots__ = ("attributes",)

    def __init__(self, attributes: Sequence[Tuple[str, OdmgType]]) -> None:
        names = [name for name, _t in attributes]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute names in tuple: {names}")
        self.attributes: Tuple[Tuple[str, OdmgType], ...] = tuple(attributes)

    def attribute(self, name: str) -> OdmgType:
        for attr_name, attr_type in self.attributes:
            if attr_name == name:
                return attr_type
        raise SchemaError(f"tuple has no attribute {name!r}")

    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _t in self.attributes)

    def to_pattern(self, schema: "Schema") -> Pattern:
        children = [
            PNode(name, [attr_type.to_pattern(schema)])
            for name, attr_type in self.attributes
        ]
        return PNode("tuple", children, collection="set")

    def __repr__(self) -> str:
        return f"TupleType({[n for n, _t in self.attributes]})"


class CollectionType(OdmgType):
    """``set``/``bag``/``list``/``array`` of an element type."""

    __slots__ = ("kind", "element")

    def __init__(self, kind: str, element: OdmgType) -> None:
        if kind not in COLLECTION_KINDS:
            raise SchemaError(f"unknown collection kind: {kind!r}")
        self.kind = kind
        self.element = element

    def to_pattern(self, schema: "Schema") -> Pattern:
        return PNode(
            self.kind, [PStar(self.element.to_pattern(schema))], collection=self.kind
        )

    def __repr__(self) -> str:
        return f"CollectionType({self.kind!r}, {self.element!r})"


class RefType(OdmgType):
    """A reference to a class (``&Person`` in Figure 3)."""

    __slots__ = ("class_name",)

    def __init__(self, class_name: str) -> None:
        self.class_name = class_name

    def to_pattern(self, schema: "Schema") -> Pattern:
        return PRef(self.class_name)

    def __repr__(self) -> str:
        return f"RefType({self.class_name!r})"


class MethodDef:
    """A schema method: name, receiver class, result type, implementation.

    The implementation takes ``(database, oid)`` and returns a Python
    value of the declared result type; the wrapper exports the signature
    (paper, Section 4: ``current_price`` on ``Artifact``).
    """

    __slots__ = ("name", "class_name", "result", "implementation")

    def __init__(
        self,
        name: str,
        class_name: str,
        result: OdmgType,
        implementation: Callable,
    ) -> None:
        self.name = name
        self.class_name = class_name
        self.result = result
        self.implementation = implementation

    def __repr__(self) -> str:
        return f"MethodDef({self.class_name}.{self.name})"


class ClassDef:
    """One class: a name, a tuple type, and optionally an extent name."""

    __slots__ = ("name", "type", "extent")

    def __init__(self, name: str, type: TupleType, extent: Optional[str] = None) -> None:
        self.name = name
        self.type = type
        self.extent = extent

    def __repr__(self) -> str:
        return f"ClassDef({self.name!r}, extent={self.extent!r})"


class Schema:
    """A set of classes, their extents, and their methods."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.classes: Dict[str, ClassDef] = {}
        self.methods: Dict[str, MethodDef] = {}
        self._extents: Dict[str, str] = {}  # extent name -> class name

    def add_class(self, definition: ClassDef) -> None:
        if definition.name in self.classes:
            raise SchemaError(f"class {definition.name!r} already defined")
        self.classes[definition.name] = definition
        if definition.extent is not None:
            if definition.extent in self._extents:
                raise SchemaError(f"extent {definition.extent!r} already defined")
            self._extents[definition.extent] = definition.name

    def add_method(self, method: MethodDef) -> None:
        if method.class_name not in self.classes:
            raise SchemaError(
                f"method {method.name!r} declared on unknown class "
                f"{method.class_name!r}"
            )
        if method.name in self.methods:
            raise SchemaError(f"method {method.name!r} already defined")
        self.methods[method.name] = method

    def class_of(self, name: str) -> ClassDef:
        try:
            return self.classes[name]
        except KeyError:
            raise SchemaError(f"unknown class: {name!r}") from None

    def extents(self) -> Dict[str, str]:
        """``{extent name: class name}`` for all classes with extents."""
        return dict(self._extents)

    def extent_class(self, extent: str) -> ClassDef:
        try:
            return self.classes[self._extents[extent]]
        except KeyError:
            raise SchemaError(f"unknown extent: {extent!r}") from None

    def validate(self) -> None:
        """Check that every reference targets a defined class."""
        for definition in self.classes.values():
            self._validate_type(definition.type, definition.name)

    def _validate_type(self, odmg_type: OdmgType, context: str) -> None:
        if isinstance(odmg_type, RefType):
            if odmg_type.class_name not in self.classes:
                raise SchemaError(
                    f"class {context!r} references unknown class "
                    f"{odmg_type.class_name!r}"
                )
        elif isinstance(odmg_type, TupleType):
            for _name, attr_type in odmg_type.attributes:
                self._validate_type(attr_type, context)
        elif isinstance(odmg_type, CollectionType):
            self._validate_type(odmg_type.element, context)

    # -- exported structural information --------------------------------------

    def to_pattern_library(self) -> PatternLibrary:
        """Schema-level patterns in the Figure 3 encoding.

        Each class ``C`` becomes the pattern
        ``class [ C [ <type pattern> ] ]`` under the name ``C``; each
        extent becomes ``<extent> := set [ * &C ]`` under the extent name.
        """
        library = PatternLibrary(self.name)
        for definition in self.classes.values():
            library.define(
                definition.name,
                PNode(
                    "class",
                    [PNode(definition.name, [definition.type.to_pattern(self)])],
                ),
            )
        for extent, class_name in self._extents.items():
            library.define(
                extent,
                PNode("set", [PStar(PRef(class_name))], collection="set"),
            )
        return library
