"""In-memory object storage for the mini-O2 database.

Objects are tuples of attribute values identified by an OID.  Attribute
values are plain Python values mirroring the ODMG types:

* atoms — ``int``/``float``/``str``/``bool``;
* tuples — ``dict`` (attribute name → value);
* collections — ``list`` (order kept even for sets; set semantics are a
  query-time concern);
* references — :class:`Oid` wrappers around the target's OID string.

The module also implements the XML export used by the O2 wrapper: extents
serialize to the ``set * class`` encoding of Figure 3, so that YATL
filters from the paper apply to the exported trees verbatim.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SchemaError, SourceError
from repro.model.trees import DataNode
from repro.sources.objectdb.schema import (
    AtomicType,
    CollectionType,
    OdmgType,
    RefType,
    Schema,
    TupleType,
)


class Oid:
    """A reference value: wraps the target object's identifier."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Oid) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("oid", self.value))

    def __repr__(self) -> str:
        return f"Oid({self.value!r})"


class OdmgObject:
    """One stored object: OID, class, and attribute values."""

    __slots__ = ("oid", "class_name", "values")

    def __init__(self, oid: str, class_name: str, values: Dict[str, object]) -> None:
        self.oid = oid
        self.class_name = class_name
        self.values = dict(values)

    def __repr__(self) -> str:
        return f"OdmgObject({self.oid!r}, {self.class_name!r})"


class ObjectDatabase:
    """Schema-validated in-memory object store with named extents."""

    def __init__(self, schema: Schema) -> None:
        schema.validate()
        self.schema = schema
        self._objects: Dict[str, OdmgObject] = {}
        self._extents: Dict[str, List[str]] = {
            extent: [] for extent in schema.extents()
        }
        self._counter = 0
        self._ident_index: Optional[Dict[str, DataNode]] = None
        #: Bumped on every update; result memos key on it so a cached
        #: query answer can never outlive the data it was computed from.
        self.version = 0

    # -- updates ---------------------------------------------------------------

    def insert(
        self, class_name: str, values: Dict[str, object], oid: Optional[str] = None
    ) -> str:
        """Insert an object; returns its OID.

        Values are checked against the class tuple type; the object is
        appended to the class extent when one is declared.
        """
        definition = self.schema.class_of(class_name)
        self._check_tuple(definition.type, values, class_name)
        if oid is None:
            self._counter += 1
            oid = f"{class_name[:1]}{self._counter}"
        if oid in self._objects:
            raise SourceError(f"duplicate OID: {oid!r}")
        self._objects[oid] = OdmgObject(oid, class_name, values)
        if definition.extent is not None:
            self._extents[definition.extent].append(oid)
        self._ident_index = None  # exported trees are stale now
        self.version += 1
        return oid

    def _check_tuple(self, tuple_type: TupleType, values: Dict[str, object], context: str) -> None:
        declared = set(tuple_type.attribute_names())
        provided = set(values)
        if declared != provided:
            raise SourceError(
                f"object of class {context!r} must provide exactly the attributes "
                f"{sorted(declared)}; got {sorted(provided)}"
            )
        for name, attr_type in tuple_type.attributes:
            self._check_value(attr_type, values[name], f"{context}.{name}")

    def _check_value(self, odmg_type: OdmgType, value: object, context: str) -> None:
        if isinstance(odmg_type, AtomicType):
            expected = {
                "Int": int,
                "Float": (int, float),
                "String": str,
                "Bool": bool,
            }[odmg_type.name]
            if odmg_type.name == "Int" and isinstance(value, bool):
                raise SourceError(f"{context}: expected Int, got bool")
            if not isinstance(value, expected):
                raise SourceError(
                    f"{context}: expected {odmg_type.name}, got {type(value).__name__}"
                )
        elif isinstance(odmg_type, TupleType):
            if not isinstance(value, dict):
                raise SourceError(f"{context}: expected a tuple (dict)")
            self._check_tuple(odmg_type, value, context)
        elif isinstance(odmg_type, CollectionType):
            if not isinstance(value, list):
                raise SourceError(f"{context}: expected a collection (list)")
            for index, item in enumerate(value):
                self._check_value(odmg_type.element, item, f"{context}[{index}]")
        elif isinstance(odmg_type, RefType):
            if not isinstance(value, Oid):
                raise SourceError(f"{context}: expected a reference (Oid)")
        else:
            raise SchemaError(f"unknown ODMG type: {odmg_type!r}")

    # -- reads -------------------------------------------------------------------

    def get(self, oid: str) -> OdmgObject:
        obj = self._objects.get(oid if not isinstance(oid, Oid) else oid.value)
        if obj is None:
            raise SourceError(f"unknown OID: {oid!r}")
        return obj

    def deref(self, value: object) -> OdmgObject:
        """Follow a reference value to its object."""
        if isinstance(value, Oid):
            return self.get(value.value)
        raise SourceError(f"not a reference: {value!r}")

    def extent(self, name: str) -> Tuple[str, ...]:
        """OIDs in the named extent, in insertion order."""
        try:
            return tuple(self._extents[name])
        except KeyError:
            raise SourceError(f"unknown extent: {name!r}") from None

    def extent_names(self) -> Tuple[str, ...]:
        return tuple(self._extents)

    def check_integrity(self) -> None:
        """Verify every stored reference targets an existing object."""
        for obj in self._objects.values():
            definition = self.schema.class_of(obj.class_name)
            self._check_refs(definition.type, obj.values, obj.oid)

    def _check_refs(self, odmg_type: OdmgType, value: object, context: str) -> None:
        if isinstance(odmg_type, RefType):
            assert isinstance(value, Oid)
            if value.value not in self._objects:
                raise SourceError(f"{context}: dangling reference {value.value!r}")
        elif isinstance(odmg_type, TupleType):
            assert isinstance(value, dict)
            for name, attr_type in odmg_type.attributes:
                self._check_refs(attr_type, value[name], f"{context}.{name}")
        elif isinstance(odmg_type, CollectionType):
            assert isinstance(value, list)
            for item in value:
                self._check_refs(odmg_type.element, item, context)

    def __len__(self) -> int:
        return len(self._objects)

    def objects(self) -> Iterable[OdmgObject]:
        return self._objects.values()

    # -- XML export (Figure 3 encoding) -------------------------------------------

    def export_extent(self, extent: str) -> DataNode:
        """The extent as a document tree: ``set [ class [...] * ]``."""
        oids = self.extent(extent)
        return DataNode(
            "set",
            children=[self.export_object(oid) for oid in oids],
            collection="set",
        )

    def export_object(self, oid: str) -> DataNode:
        """One object as ``class [ <class name> [ <value> ] ]``.

        Served from the :meth:`ident_index` cache when it is built:
        exported trees are immutable, so handing out the indexed tree is
        indistinguishable from re-exporting — and pushed OQL results are
        exported once instead of once per information-passing round trip.
        """
        index = self._ident_index
        if index is not None:
            cached = index.get(oid)
            if cached is not None:
                return cached
        obj = self.get(oid)
        definition = self.schema.class_of(obj.class_name)
        value_tree = self._export_value(definition.type, obj.values)
        return DataNode(
            "class",
            children=[DataNode(obj.class_name, children=[value_tree])],
            ident=obj.oid,
        )

    def _export_value(self, odmg_type: OdmgType, value: object) -> DataNode:
        if isinstance(odmg_type, TupleType):
            assert isinstance(value, dict)
            children = []
            for name, attr_type in odmg_type.attributes:
                children.append(self._export_attribute(name, attr_type, value[name]))
            return DataNode("tuple", children=children, collection="set")
        if isinstance(odmg_type, CollectionType):
            assert isinstance(value, list)
            children = [
                self._export_collection_item(odmg_type.element, item)
                for item in value
            ]
            return DataNode(odmg_type.kind, children=children,
                            collection=odmg_type.kind)
        if isinstance(odmg_type, RefType):
            assert isinstance(value, Oid)
            return DataNode("class", ref_target=value.value)
        raise SchemaError(f"cannot export value of type {odmg_type!r}")

    def _export_attribute(self, name: str, attr_type: OdmgType, value: object) -> DataNode:
        if isinstance(attr_type, AtomicType):
            return DataNode(name, atom=value)
        return DataNode(name, children=[self._export_value(attr_type, value)])

    def _export_collection_item(self, element_type: OdmgType, item: object) -> DataNode:
        if isinstance(element_type, AtomicType):
            return DataNode("value", atom=item)
        return self._export_value(element_type, item)

    def ident_index(self) -> Dict[str, DataNode]:
        """``{oid: exported class tree}`` for reference dereferencing.

        The export is cached until the next :meth:`insert` — exported
        trees are immutable, so sharing them across executions is safe.
        Callers must treat the returned mapping as read-only.
        """
        index = self._ident_index
        if index is None:
            index = self._ident_index = {
                oid: self.export_object(oid) for oid in self._objects
            }
        return index
