"""Evaluation of the OQL subset over an :class:`ObjectDatabase`.

``from`` ranges build nested loops — a range over a path expression
depends on the variables bound by earlier ranges, which gives OQL its
dependent-join flavour (the algebra's ``DJoin``, paper Section 5.1).
References are dereferenced transparently while navigating paths, so
``O.name`` works when ``O`` ranges over ``A.owners`` (a list of
references).

Results are lists of ``{alias: python value}`` dictionaries; the O2
wrapper converts them to Tab rows.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import OqlError
from repro.sources.objectdb.database import ObjectDatabase, OdmgObject, Oid
from repro.sources.objectdb.oql.ast import (
    OqlAnd,
    OqlCompare,
    OqlExtent,
    OqlLiteral,
    OqlMethodCall,
    OqlNode,
    OqlNot,
    OqlOr,
    OqlPath,
    OqlSelect,
)
from repro.sources.objectdb.oql.parser import parse_oql

Bindings = Dict[str, object]


def evaluate_oql(query: object, database: ObjectDatabase) -> List[Bindings]:
    """Evaluate *query* (AST or text) against *database*.

    A ``select`` returns one dictionary per result row.  A bare extent
    returns one ``{"object": OdmgObject}`` dictionary per member.
    """
    if isinstance(query, str):
        query = parse_oql(query)
    engine = _Engine(database)
    if isinstance(query, OqlExtent):
        return [
            {"object": database.get(oid)} for oid in database.extent(query.name)
        ]
    if isinstance(query, OqlSelect):
        return engine.run_select(query)
    raise OqlError(f"cannot evaluate query node {query!r}")


class _Engine:
    def __init__(self, database: ObjectDatabase) -> None:
        self._db = database

    def run_select(self, query: OqlSelect) -> List[Bindings]:
        results: List[Bindings] = []
        for bindings in self._loop(query.ranges, 0, {}):
            if query.where is not None and not self._truth(query.where, bindings):
                continue
            row = {
                projection.alias: self._scalar(projection.expr, bindings)
                for projection in query.projections
            }
            results.append(row)
        return results

    # -- range loops -------------------------------------------------------------

    def _loop(self, ranges, index: int, bindings: Bindings) -> Iterator[Bindings]:
        if index == len(ranges):
            yield dict(bindings)
            return
        rng = ranges[index]
        for value in self._collection(rng.collection, bindings):
            bindings[rng.variable] = value
            yield from self._loop(ranges, index + 1, bindings)
        bindings.pop(rng.variable, None)

    def _collection(self, expr: OqlNode, bindings: Bindings) -> List[object]:
        if isinstance(expr, OqlPath) and not expr.steps and expr.root not in bindings:
            # A bare identifier that is not a bound variable names an extent.
            return [self._db.get(oid) for oid in self._db.extent(expr.root)]
        value = self._scalar(expr, bindings)
        if isinstance(value, list):
            return [self._deref_if_ref(item) for item in value]
        raise OqlError(f"range expression {expr.text()} is not a collection")

    def _deref_if_ref(self, value: object) -> object:
        if isinstance(value, Oid):
            return self._db.get(value.value)
        return value

    # -- scalars --------------------------------------------------------------------

    def _scalar(self, expr: OqlNode, bindings: Bindings) -> object:
        if isinstance(expr, OqlLiteral):
            return expr.value
        if isinstance(expr, OqlPath):
            return self._path(expr, bindings)
        if isinstance(expr, OqlMethodCall):
            return self._method(expr, bindings)
        raise OqlError(f"not a scalar expression: {expr.text()}")

    def _path(self, expr: OqlPath, bindings: Bindings) -> object:
        if expr.root not in bindings:
            raise OqlError(f"unbound variable {expr.root!r} in {expr.text()}")
        value: object = bindings[expr.root]
        for step in expr.steps:
            value = self._step(value, step, expr)
        return value

    def _step(self, value: object, step: str, expr: OqlPath) -> object:
        if isinstance(value, Oid):
            value = self._db.get(value.value)
        if isinstance(value, OdmgObject):
            value = value.values
        if isinstance(value, dict):
            if step not in value:
                raise OqlError(f"no attribute {step!r} along {expr.text()}")
            return value[step]
        raise OqlError(
            f"cannot navigate {step!r} from a {type(value).__name__} in {expr.text()}"
        )

    def _method(self, expr: OqlMethodCall, bindings: Bindings) -> object:
        receiver = self._path_receiver(expr.receiver, bindings)
        method = self._db.schema.methods.get(expr.method)
        if method is None:
            raise OqlError(f"unknown method {expr.method!r}")
        if receiver.class_name != method.class_name:
            raise OqlError(
                f"method {expr.method!r} is declared on {method.class_name!r}, "
                f"not {receiver.class_name!r}"
            )
        args = [self._scalar(arg, bindings) for arg in expr.args]
        return method.implementation(self._db, receiver.oid, *args)

    def _path_receiver(self, path: OqlPath, bindings: Bindings) -> OdmgObject:
        value = self._path(path, bindings)
        if isinstance(value, Oid):
            value = self._db.get(value.value)
        if not isinstance(value, OdmgObject):
            raise OqlError(f"method receiver {path.text()} is not an object")
        return value

    # -- predicates ----------------------------------------------------------------

    def _truth(self, expr: OqlNode, bindings: Bindings) -> bool:
        if isinstance(expr, OqlAnd):
            return all(self._truth(op, bindings) for op in expr.operands)
        if isinstance(expr, OqlOr):
            return any(self._truth(op, bindings) for op in expr.operands)
        if isinstance(expr, OqlNot):
            return not self._truth(expr.operand, bindings)
        if isinstance(expr, OqlCompare):
            left = self._scalar(expr.left, bindings)
            right = self._scalar(expr.right, bindings)
            try:
                if expr.op == "=":
                    return left == right
                if expr.op == "!=":
                    return left != right
                if expr.op == "<":
                    return left < right
                if expr.op == "<=":
                    return left <= right
                if expr.op == ">":
                    return left > right
                return left >= right
            except TypeError as exc:
                raise OqlError(
                    f"cannot compare {left!r} {expr.op} {right!r}"
                ) from exc
        value = self._scalar(expr, bindings)
        if isinstance(value, bool):
            return value
        raise OqlError(f"predicate {expr.text()} did not evaluate to a boolean")
