"""The OQL-subset parser and evaluator."""

from repro.sources.objectdb.oql.ast import (
    OqlAnd,
    OqlCompare,
    OqlExtent,
    OqlLiteral,
    OqlMethodCall,
    OqlNode,
    OqlNot,
    OqlOr,
    OqlPath,
    OqlProjection,
    OqlRange,
    OqlSelect,
)
from repro.sources.objectdb.oql.evaluator import evaluate_oql
from repro.sources.objectdb.oql.parser import parse_oql

__all__ = [
    "OqlAnd",
    "OqlCompare",
    "OqlExtent",
    "OqlLiteral",
    "OqlMethodCall",
    "OqlNode",
    "OqlNot",
    "OqlOr",
    "OqlPath",
    "OqlProjection",
    "OqlRange",
    "OqlSelect",
    "evaluate_oql",
    "parse_oql",
]
