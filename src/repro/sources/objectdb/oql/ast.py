"""Abstract syntax of the OQL subset evaluated by the mini-O2 engine.

The subset covers what the paper's wrapper generates (Section 4.1):
``select``/``from``/``where`` with named projections, dependent ranges
(``O in A.owners``), path expressions, method calls, comparisons and
boolean connectives — plus bare extent queries.
"""

from __future__ import annotations

from typing import Optional, Sequence


class OqlNode:
    """Base class of OQL AST nodes."""

    __slots__ = ()

    def text(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<oql {self.text()}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OqlNode):
            return NotImplemented
        return self.text() == other.text()

    def __hash__(self) -> int:
        return hash(self.text())


class OqlLiteral(OqlNode):
    """An int/float/string/bool literal."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def text(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            escaped = self.value.replace('"', '\\"')
            return f'"{escaped}"'
        return str(self.value)


class OqlPath(OqlNode):
    """A path expression ``A.owners.name`` rooted at a range variable."""

    __slots__ = ("root", "steps")

    def __init__(self, root: str, steps: Sequence[str] = ()) -> None:
        self.root = root
        self.steps = tuple(steps)

    def text(self) -> str:
        return ".".join((self.root,) + self.steps)


class OqlMethodCall(OqlNode):
    """A method call at the end of a path: ``A.current_price()``."""

    __slots__ = ("receiver", "method", "args")

    def __init__(self, receiver: OqlPath, method: str, args: Sequence[OqlNode] = ()) -> None:
        self.receiver = receiver
        self.method = method
        self.args = tuple(args)

    def text(self) -> str:
        args = ", ".join(arg.text() for arg in self.args)
        return f"{self.receiver.text()}.{self.method}({args})"


class OqlCompare(OqlNode):
    """A comparison between two scalar expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: OqlNode, right: OqlNode) -> None:
        self.op = op
        self.left = left
        self.right = right

    def text(self) -> str:
        return f"{self.left.text()} {self.op} {self.right.text()}"


class OqlAnd(OqlNode):
    __slots__ = ("operands",)

    def __init__(self, operands: Sequence[OqlNode]) -> None:
        self.operands = tuple(operands)

    def text(self) -> str:
        return " and ".join(f"({op.text()})" for op in self.operands)


class OqlOr(OqlNode):
    __slots__ = ("operands",)

    def __init__(self, operands: Sequence[OqlNode]) -> None:
        self.operands = tuple(operands)

    def text(self) -> str:
        return " or ".join(f"({op.text()})" for op in self.operands)


class OqlNot(OqlNode):
    __slots__ = ("operand",)

    def __init__(self, operand: OqlNode) -> None:
        self.operand = operand

    def text(self) -> str:
        return f"not ({self.operand.text()})"


class OqlRange(OqlNode):
    """One ``from`` item: ``variable in <extent or path>``."""

    __slots__ = ("variable", "collection")

    def __init__(self, variable: str, collection: OqlNode) -> None:
        self.variable = variable
        self.collection = collection

    def text(self) -> str:
        return f"{self.variable} in {self.collection.text()}"


class OqlProjection(OqlNode):
    """One ``select`` item: ``alias: expression``."""

    __slots__ = ("alias", "expr")

    def __init__(self, alias: str, expr: OqlNode) -> None:
        self.alias = alias
        self.expr = expr

    def text(self) -> str:
        return f"{self.alias}: {self.expr.text()}"


class OqlSelect(OqlNode):
    """A ``select ... from ... where ...`` query."""

    __slots__ = ("projections", "ranges", "where")

    def __init__(
        self,
        projections: Sequence[OqlProjection],
        ranges: Sequence[OqlRange],
        where: Optional[OqlNode] = None,
    ) -> None:
        self.projections = tuple(projections)
        self.ranges = tuple(ranges)
        self.where = where

    def text(self) -> str:
        projections = ", ".join(p.text() for p in self.projections)
        ranges = ", ".join(r.text() for r in self.ranges)
        where = f" where {self.where.text()}" if self.where is not None else ""
        return f"select {projections} from {ranges}{where}"


class OqlExtent(OqlNode):
    """A bare extent query: the whole named collection."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def text(self) -> str:
        return self.name
