"""Tokenizer for the OQL subset."""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.errors import OqlSyntaxError

#: Keywords are case-insensitive, per OQL tradition.
KEYWORDS = frozenset({"select", "from", "where", "in", "and", "or", "not",
                      "true", "false"})

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),.:])
    """,
    re.VERBOSE,
)


class Token(NamedTuple):
    kind: str       # 'kw', 'ident', 'int', 'float', 'string', 'op', 'punct', 'eof'
    value: str
    position: int


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens, ending with a single ``eof`` token."""
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise OqlSyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            continue
        if kind == "ident" and value.lower() in KEYWORDS:
            yield Token("kw", value.lower(), match.start())
        else:
            yield Token(kind, value, match.start())
    yield Token("eof", "", len(text))
