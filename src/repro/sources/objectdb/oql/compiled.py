"""Compiled evaluation of OQL selects: one closure chain per AST.

The interpretive :class:`~repro.sources.objectdb.oql.evaluator._Engine`
re-dispatches on AST node types for every object of every range — and a
pushed fragment under a DJoin re-executes once per outer row, so that
dispatch dominates the source-side cost of information passing.
:func:`compile_select` walks the AST once and returns a
:class:`CompiledSelect` of nested closures: paths become
attribute-chasing loops, predicates become boolean closures, ranges
become loop drivers.  The O2 wrapper keys compiled selects on the pushed
plan and its inlined constants, so repeated executions pay the walk
once.

Differential contract (enforced by ``tests/test_oql_compiled.py``): the
compiled form produces the same rows in the same order as the
interpretive engine, and raises :class:`~repro.errors.OqlError` with the
same message on the same inputs.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import OqlError
from repro.sources.objectdb.database import ObjectDatabase, OdmgObject, Oid
from repro.sources.objectdb.oql.ast import (
    OqlAnd,
    OqlCompare,
    OqlLiteral,
    OqlMethodCall,
    OqlNode,
    OqlNot,
    OqlOr,
    OqlPath,
    OqlSelect,
)

# Mirrors the interpretive comparison ladder, including its fallthrough:
# any operator outside the first five evaluates as ``>=``.
_COMPARE_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
}

Scalar = Callable[[ObjectDatabase, Dict[str, object]], object]
Truth = Callable[[ObjectDatabase, Dict[str, object]], bool]


class CompiledSelect:
    """Executable form of one ``OqlSelect``; run with :meth:`run`.

    Holds no database reference: the closures read whatever database is
    passed to :meth:`run`, so a compiled select stays valid across
    updates to the store (it compiles the *query*, never the data).

    ``ranges`` carries each loop's guard conjuncts: the compiler hoists
    every ``where`` conjunct to the shallowest range that binds all of
    its variables, so a failing predicate on an outer range prunes the
    inner loops instead of being re-tested per combination — the loop
    structure the interpretive engine would need a query rewrite for.
    """

    __slots__ = ("_ranges", "_pre_guards", "_projections", "pure")

    def __init__(
        self,
        ranges: Tuple[Tuple[str, Scalar, Tuple[Truth, ...]], ...],
        pre_guards: Tuple[Truth, ...],
        projections: Tuple[Tuple[str, Scalar], ...],
        pure: bool = False,
    ) -> None:
        self._ranges = ranges
        self._pre_guards = pre_guards
        self._projections = projections
        #: ``True`` when the select calls no schema methods, i.e. its
        #: result is a function of the database contents alone — the
        #: soundness condition for caching its answer against a database
        #: version.  Method implementations are arbitrary Python, so any
        #: select invoking one is never result-cached.
        self.pure = pure

    def run(self, db: ObjectDatabase) -> List[Dict[str, object]]:
        results: List[Dict[str, object]] = []
        env: Dict[str, object] = {}
        ranges = self._ranges
        projections = self._projections
        depth = len(ranges)
        for guard in self._pre_guards:  # non-empty only for range-free selects
            if not guard(db, env):
                return results

        def loop(index: int) -> None:
            if index == depth:
                results.append(
                    {alias: scalar(db, env) for alias, scalar in projections}
                )
                return
            variable, collection, guards = ranges[index]
            for value in collection(db, env):
                env[variable] = value
                for guard in guards:
                    if not guard(db, env):
                        break
                else:
                    loop(index + 1)
            # The interpretive loop pops its variable on exhaustion, so a
            # sibling range never observes a stale binding; mirror that.
            env.pop(variable, None)

        loop(0)
        return results


def compile_select(query: OqlSelect) -> CompiledSelect:
    """Compile *query* into closures; see the module docstring."""
    bound: set = set()
    compiled_ranges: List[Tuple[str, Scalar]] = []
    for rng in query.ranges:
        compiled_ranges.append(
            (rng.variable, _compile_collection(rng.collection, bound))
        )
        bound.add(rng.variable)
    guards: List[List[Truth]] = [[] for _ in range(len(query.ranges) + 1)]
    if query.where is not None:
        conjuncts = (
            query.where.operands
            if isinstance(query.where, OqlAnd)
            else (query.where,)
        )
        positions = {
            rng.variable: index + 1 for index, rng in enumerate(query.ranges)
        }
        for conjunct in conjuncts:
            guards[_guard_depth(conjunct, positions, len(query.ranges))].append(
                _compile_truth(conjunct)
            )
    ranges = tuple(
        (variable, collection, tuple(guards[index + 1]))
        for index, (variable, collection) in enumerate(compiled_ranges)
    )
    projections = tuple(
        (item.alias, _compile_scalar(item.expr)) for item in query.projections
    )
    exprs: List[OqlNode] = [rng.collection for rng in query.ranges]
    if query.where is not None:
        exprs.append(query.where)
    exprs.extend(item.expr for item in query.projections)
    pure = not any(_contains_method(expr) for expr in exprs)
    return CompiledSelect(ranges, tuple(guards[0]), projections, pure)


def _guard_depth(conjunct: OqlNode, positions: Dict[str, int], depth: int) -> int:
    """The shallowest loop depth at which *conjunct* is decidable.

    A conjunct mentioning no range variable at all stays at the innermost
    depth (or depth 0 when the select has no ranges): the interpretive
    engine only ever evaluates it under a full binding, and hoisting it
    past an empty extent would surface evaluation errors the interpreter
    never reaches.
    """
    roots: List[str] = []
    _collect_roots(conjunct, roots)
    if not roots or not positions:
        return depth
    deepest = 0
    for root in roots:
        position = positions.get(root)
        if position is None:
            return depth  # unbound root: keep the interpreter's error point
        if position > deepest:
            deepest = position
    return deepest


def _contains_method(expr: OqlNode) -> bool:
    if isinstance(expr, OqlMethodCall):
        return True
    if isinstance(expr, OqlCompare):
        return _contains_method(expr.left) or _contains_method(expr.right)
    if isinstance(expr, (OqlAnd, OqlOr)):
        return any(_contains_method(op) for op in expr.operands)
    if isinstance(expr, OqlNot):
        return _contains_method(expr.operand)
    return False


def _collect_roots(expr: OqlNode, roots: List[str]) -> None:
    if isinstance(expr, OqlPath):
        roots.append(expr.root)
    elif isinstance(expr, OqlCompare):
        _collect_roots(expr.left, roots)
        _collect_roots(expr.right, roots)
    elif isinstance(expr, (OqlAnd, OqlOr)):
        for operand in expr.operands:
            _collect_roots(operand, roots)
    elif isinstance(expr, OqlNot):
        _collect_roots(expr.operand, roots)
    elif isinstance(expr, OqlMethodCall):
        _collect_roots(expr.receiver, roots)
        for argument in expr.args:
            _collect_roots(argument, roots)


# ---------------------------------------------------------------------------
# Ranges
# ---------------------------------------------------------------------------

def _compile_collection(expr: OqlNode, bound: set) -> Scalar:
    # The interpretive engine decides extent-vs-path per evaluation by
    # probing the live bindings; at compile time the bound set at each
    # range position is exactly the variables of the earlier ranges, so
    # the decision is static.
    if isinstance(expr, OqlPath) and not expr.steps and expr.root not in bound:
        root = expr.root

        def extent_scan(db, env):
            return [db.get(oid) for oid in db.extent(root)]

        return extent_scan
    scalar = _compile_scalar(expr)
    text = expr.text()

    def dependent(db, env):
        value = scalar(db, env)
        if isinstance(value, list):
            return [
                db.get(item.value) if isinstance(item, Oid) else item
                for item in value
            ]
        raise OqlError(f"range expression {text} is not a collection")

    return dependent


# ---------------------------------------------------------------------------
# Scalars
# ---------------------------------------------------------------------------

def _compile_scalar(expr: OqlNode) -> Scalar:
    if isinstance(expr, OqlLiteral):
        value = expr.value

        def literal(db, env):
            return value

        return literal
    if isinstance(expr, OqlPath):
        return _compile_path(expr)
    if isinstance(expr, OqlMethodCall):
        return _compile_method(expr)
    text = expr.text()

    def reject(db, env):
        raise OqlError(f"not a scalar expression: {text}")

    return reject


def _compile_path(expr: OqlPath) -> Scalar:
    root = expr.root
    steps = expr.steps
    text = expr.text()
    if not steps:

        def variable(db, env):
            if root not in env:
                raise OqlError(f"unbound variable {root!r} in {text}")
            return env[root]

        return variable

    def path(db, env):
        if root not in env:
            raise OqlError(f"unbound variable {root!r} in {text}")
        value = env[root]
        for step in steps:
            if isinstance(value, Oid):
                value = db.get(value.value)
            if isinstance(value, OdmgObject):
                value = value.values
            if isinstance(value, dict):
                if step not in value:
                    raise OqlError(f"no attribute {step!r} along {text}")
                value = value[step]
            else:
                raise OqlError(
                    f"cannot navigate {step!r} from a "
                    f"{type(value).__name__} in {text}"
                )
        return value

    return path


def _compile_method(expr: OqlMethodCall) -> Scalar:
    receiver_scalar = _compile_path(expr.receiver)
    receiver_text = expr.receiver.text()
    name = expr.method
    arg_scalars = tuple(_compile_scalar(arg) for arg in expr.args)

    def method(db, env):
        receiver = receiver_scalar(db, env)
        if isinstance(receiver, Oid):
            receiver = db.get(receiver.value)
        if not isinstance(receiver, OdmgObject):
            raise OqlError(f"method receiver {receiver_text} is not an object")
        declared = db.schema.methods.get(name)
        if declared is None:
            raise OqlError(f"unknown method {name!r}")
        if receiver.class_name != declared.class_name:
            raise OqlError(
                f"method {name!r} is declared on {declared.class_name!r}, "
                f"not {receiver.class_name!r}"
            )
        args = [scalar(db, env) for scalar in arg_scalars]
        return declared.implementation(db, receiver.oid, *args)

    return method


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

def _compile_truth(expr: OqlNode) -> Truth:
    if isinstance(expr, OqlAnd):
        operands = tuple(_compile_truth(op) for op in expr.operands)

        def conjunction(db, env):
            for operand in operands:
                if not operand(db, env):
                    return False
            return True

        return conjunction
    if isinstance(expr, OqlOr):
        operands = tuple(_compile_truth(op) for op in expr.operands)

        def disjunction(db, env):
            for operand in operands:
                if operand(db, env):
                    return True
            return False

        return disjunction
    if isinstance(expr, OqlNot):
        operand = _compile_truth(expr.operand)

        def negation(db, env):
            return not operand(db, env)

        return negation
    if isinstance(expr, OqlCompare):
        left_scalar = _compile_scalar(expr.left)
        right_scalar = _compile_scalar(expr.right)
        op = expr.op
        compare = _COMPARE_OPS.get(op, operator.ge)

        def comparison(db, env):
            left = left_scalar(db, env)
            right = right_scalar(db, env)
            try:
                return compare(left, right)
            except TypeError as exc:
                raise OqlError(
                    f"cannot compare {left!r} {op} {right!r}"
                ) from exc

        return comparison
    scalar = _compile_scalar(expr)
    text = expr.text()

    def boolean_scalar(db, env):
        value = scalar(db, env)
        if isinstance(value, bool):
            return value
        raise OqlError(f"predicate {text} did not evaluate to a boolean")

    return boolean_scalar
