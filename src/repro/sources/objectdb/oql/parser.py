"""Recursive-descent parser for the OQL subset.

Grammar::

    query        := select_query | ident
    select_query := SELECT projections FROM ranges [WHERE predicate]
    projections  := projection ("," projection)*
    projection   := ident ":" scalar
    ranges       := range ("," range)*
    range        := ident IN scalar
    predicate    := disjunct (OR disjunct)*
    disjunct     := conjunct (AND conjunct)*
    conjunct     := NOT conjunct | "(" predicate ")" | comparison
    comparison   := scalar op scalar
    scalar       := literal | path ["." method "(" [scalar ("," scalar)*] ")"]
    path         := ident ("." ident)*
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import OqlSyntaxError
from repro.sources.objectdb.oql.ast import (
    OqlAnd,
    OqlCompare,
    OqlExtent,
    OqlLiteral,
    OqlMethodCall,
    OqlNode,
    OqlNot,
    OqlOr,
    OqlPath,
    OqlProjection,
    OqlRange,
    OqlSelect,
)
from repro.sources.objectdb.oql.lexer import Token, tokenize

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


def parse_oql(text: str) -> OqlNode:
    """Parse an OQL query string into its AST."""
    return _Parser(text).parse_query()


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens: List[Token] = list(tokenize(text))
        self._position = 0

    # -- token plumbing --------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != "eof":
            self._position += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value or kind
            raise OqlSyntaxError(
                f"expected {wanted!r}, got {token.value!r} at offset {token.position}"
            )
        return self._advance()

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        return None

    # -- grammar -----------------------------------------------------------------

    def parse_query(self) -> OqlNode:
        if self._peek().kind == "kw" and self._peek().value == "select":
            query = self._select_query()
        else:
            name = self._expect("ident").value
            query = OqlExtent(name)
        self._expect("eof")
        return query

    def _select_query(self) -> OqlSelect:
        self._expect("kw", "select")
        projections = [self._projection()]
        while self._accept("punct", ","):
            projections.append(self._projection())
        self._expect("kw", "from")
        ranges = [self._range()]
        while self._accept("punct", ","):
            ranges.append(self._range())
        where = None
        if self._accept("kw", "where"):
            where = self._predicate()
        return OqlSelect(projections, ranges, where)

    def _projection(self) -> OqlProjection:
        alias = self._expect("ident").value
        self._expect("punct", ":")
        return OqlProjection(alias, self._scalar())

    def _range(self) -> OqlRange:
        variable = self._expect("ident").value
        self._expect("kw", "in")
        return OqlRange(variable, self._scalar())

    def _predicate(self) -> OqlNode:
        operands = [self._disjunct()]
        while self._accept("kw", "or"):
            operands.append(self._disjunct())
        if len(operands) == 1:
            return operands[0]
        return OqlOr(operands)

    def _disjunct(self) -> OqlNode:
        operands = [self._conjunct()]
        while self._accept("kw", "and"):
            operands.append(self._conjunct())
        if len(operands) == 1:
            return operands[0]
        return OqlAnd(operands)

    def _conjunct(self) -> OqlNode:
        if self._accept("kw", "not"):
            return OqlNot(self._conjunct())
        if self._peek().kind == "punct" and self._peek().value == "(":
            self._advance()
            inner = self._predicate()
            self._expect("punct", ")")
            return inner
        return self._comparison()

    def _comparison(self) -> OqlNode:
        left = self._scalar()
        token = self._peek()
        if token.kind == "op" and token.value in _COMPARISON_OPS:
            self._advance()
            right = self._scalar()
            return OqlCompare(token.value, left, right)
        return left  # a bare boolean scalar (e.g. a Bool method call)

    def _scalar(self) -> OqlNode:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return OqlLiteral(int(token.value))
        if token.kind == "float":
            self._advance()
            return OqlLiteral(float(token.value))
        if token.kind == "string":
            self._advance()
            body = token.value[1:-1]
            return OqlLiteral(body.replace('\\"', '"').replace("\\'", "'"))
        if token.kind == "kw" and token.value in ("true", "false"):
            self._advance()
            return OqlLiteral(token.value == "true")
        return self._path_or_call()

    def _path_or_call(self) -> OqlNode:
        root = self._expect("ident").value
        steps: List[str] = []
        while self._accept("punct", "."):
            steps.append(self._expect("ident").value)
            if self._peek().kind == "punct" and self._peek().value == "(":
                method = steps.pop()
                self._advance()
                args: List[OqlNode] = []
                if not (self._peek().kind == "punct" and self._peek().value == ")"):
                    args.append(self._scalar())
                    while self._accept("punct", ","):
                        args.append(self._scalar())
                self._expect("punct", ")")
                return OqlMethodCall(OqlPath(root, steps), method, args)
        return OqlPath(root, steps)
