"""A mini O2/ODMG object database with an OQL-subset engine."""

from repro.sources.objectdb.database import ObjectDatabase, OdmgObject, Oid
from repro.sources.objectdb.oql import evaluate_oql, parse_oql
from repro.sources.objectdb.schema import (
    AtomicType,
    ClassDef,
    CollectionType,
    MethodDef,
    OdmgType,
    RefType,
    Schema,
    TupleType,
)

__all__ = [
    "AtomicType",
    "ClassDef",
    "CollectionType",
    "MethodDef",
    "ObjectDatabase",
    "OdmgObject",
    "OdmgType",
    "Oid",
    "RefType",
    "Schema",
    "TupleType",
    "evaluate_oql",
    "parse_oql",
]
