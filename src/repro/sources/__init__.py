"""Wrapped data sources: the mini-O2 object database, the Wais full-text
XML store, and the sqlite3-backed relational source."""
