"""Inverted full-text index for the Wais source.

free-WAIS-sf (the engine behind the paper's ``xmlwais`` wrapper) indexes
documents by word, optionally scoped to named fields — the ``sf`` stands
for *structured fields*.  This module reproduces that behaviour: every
document is indexed under the pseudo-field ``any`` (whole content) and
under each of its element labels.

Matching is conjunctive and word-based: a query string matches when all
of its words appear in the indexed scope, which is the semantics the
``contains`` predicate of Section 4.2 needs (it may return false
positives with respect to an equality predicate — that is exactly why the
declared equivalence keeps the mediator-side selection above the pushed
``contains``).
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Set, Tuple

from repro.model.trees import DataNode

#: Scope name meaning "anywhere in the document".
ANY_FIELD = "any"

_WORD_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> Tuple[str, ...]:
    """Lower-cased word tokens of *text*.

    >>> tokenize("Oil on canvas, 1897!")
    ('oil', 'on', 'canvas', '1897')
    """
    return tuple(_WORD_RE.findall(text.lower()))


class InvertedIndex:
    """Word index over documents, scoped by field name."""

    def __init__(self) -> None:
        # (field, word) -> set of document ids
        self._postings: Dict[Tuple[str, str], Set[str]] = {}
        self._documents: Set[str] = set()

    def __len__(self) -> int:
        return len(self._documents)

    def add_document(self, doc_id: str, document: DataNode) -> None:
        """Index one document tree under its element labels and ``any``."""
        self._documents.add(doc_id)
        for node in document.descendants():
            if node.is_atom_leaf:
                words = tokenize(str(node.atom))
                for word in words:
                    self._post(ANY_FIELD, word, doc_id)
                    self._post(node.label, word, doc_id)

    def _post(self, field: str, word: str, doc_id: str) -> None:
        key = (field, word)
        postings = self._postings.get(key)
        if postings is None:
            postings = set()
            self._postings[key] = postings
        postings.add(doc_id)

    def lookup(self, query: str, field: Optional[str] = None) -> Set[str]:
        """Documents whose *field* (or anywhere) contains all query words.

        An empty query matches every indexed document.
        """
        field = field or ANY_FIELD
        words = tokenize(query)
        if not words:
            return set(self._documents)
        result: Optional[Set[str]] = None
        for word in words:
            postings = self._postings.get((field, word), set())
            result = postings if result is None else (result & postings)
            if not result:
                return set()
        return set(result or ())

    def vocabulary(self, field: Optional[str] = None) -> Tuple[str, ...]:
        """Sorted indexed words, optionally restricted to one field."""
        field = field or ANY_FIELD
        return tuple(
            sorted(word for (f, word) in self._postings if f == field)
        )


def document_contains(document: DataNode, query: str) -> bool:
    """Reference (unindexed) implementation of the ``contains`` predicate.

    Used by the mediator when it must evaluate ``contains`` itself and by
    tests as an oracle for the index.
    """
    words = set(tokenize(query))
    if not words:
        return True
    present = set(tokenize(document.text()))
    return words.issubset(present)
