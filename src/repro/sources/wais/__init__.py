"""A full-text indexed XML document store (the paper's Wais source)."""

from repro.sources.wais.index import (
    ANY_FIELD,
    InvertedIndex,
    document_contains,
    tokenize,
)
from repro.sources.wais.query import WaisQuery, WaisTerm, parse_wais_query
from repro.sources.wais.store import WaisStore

__all__ = [
    "ANY_FIELD",
    "InvertedIndex",
    "WaisQuery",
    "WaisStore",
    "WaisTerm",
    "document_contains",
    "parse_wais_query",
    "tokenize",
]
