"""Wais textual queries: conjunctive attribute/value terms.

"The Z39.50 protocol (underlying the Wais retrieval engine ...) is based
on attribute/value textual queries" (paper, Section 4.2).  A
:class:`WaisQuery` is a conjunction of :class:`WaisTerm` items, each
scoping a word query to a field (or to the whole document).

The textual rendering — ``artist=(monet) and any=(impressionist)`` — is
what the wrapper reports as the *native* form of a pushed plan.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence

from repro.errors import WaisError
from repro.sources.wais.index import ANY_FIELD


class WaisTerm:
    """One attribute/value term: all words of *text* in field *field*."""

    __slots__ = ("field", "text")

    def __init__(self, text: str, field: Optional[str] = None) -> None:
        self.field = field or ANY_FIELD
        self.text = text

    def render(self) -> str:
        return f"{self.field}=({self.text})"

    def __repr__(self) -> str:
        return f"WaisTerm({self.render()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WaisTerm)
            and other.field == self.field
            and other.text == self.text
        )

    def __hash__(self) -> int:
        return hash((self.field, self.text))


class WaisQuery:
    """A conjunction of terms; an empty query selects every document."""

    __slots__ = ("terms",)

    def __init__(self, terms: Sequence[WaisTerm] = ()) -> None:
        self.terms = tuple(terms)

    def render(self) -> str:
        if not self.terms:
            return "*"
        return " and ".join(term.render() for term in self.terms)

    def __repr__(self) -> str:
        return f"WaisQuery({self.render()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, WaisQuery) and other.terms == self.terms

    def __hash__(self) -> int:
        return hash(self.terms)


_TERM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*=\s*\(([^)]*)\)\s*")


def parse_wais_query(text: str) -> WaisQuery:
    """Parse the textual form back into a :class:`WaisQuery`.

    >>> parse_wais_query("artist=(monet) and any=(impressionist)").terms[0].field
    'artist'
    """
    stripped = text.strip()
    if stripped in ("", "*"):
        return WaisQuery()
    terms = []
    for part in stripped.split(" and "):
        match = _TERM_RE.fullmatch(part)
        if match is None:
            raise WaisError(f"malformed Wais query term: {part!r}")
        field, body = match.groups()
        terms.append(WaisTerm(body, field=field))
    return WaisQuery(terms)
