"""The Wais document store: full-text indexed XML documents.

Holds a collection of document trees (the ``work`` elements of the
paper's ``artworks`` source), an :class:`InvertedIndex` over them, and the
Z39.50 separation between *queryable* and *retrievable* fields:

"This protocol establishes a clear separation between what you may
retrieve and what you may query.  For instance, one could specify that
only the artist and style elements can be exported from our XML documents
while allowing queries only on the optional fields" (Section 4.2).

By default everything is queryable and retrievable; pass explicit field
sets to reproduce restricted configurations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import WaisError
from repro.model.trees import DataNode
from repro.sources.wais.index import ANY_FIELD, InvertedIndex
from repro.sources.wais.query import WaisQuery


class WaisStore:
    """An indexed store of document trees under one collection root."""

    def __init__(
        self,
        collection_label: str = "works",
        queryable_fields: Optional[Iterable[str]] = None,
        retrievable_fields: Optional[Iterable[str]] = None,
    ) -> None:
        self.collection_label = collection_label
        self._queryable = frozenset(queryable_fields) if queryable_fields else None
        self._retrievable = (
            frozenset(retrievable_fields) if retrievable_fields else None
        )
        self._documents: Dict[str, DataNode] = {}
        self._order: List[str] = []
        self._index = InvertedIndex()
        #: Monotonic data version; wrappers key document memos on it.
        self.version = 0

    def __len__(self) -> int:
        return len(self._documents)

    # -- loading -----------------------------------------------------------------

    def add(self, document: DataNode, doc_id: Optional[str] = None) -> str:
        """Index and store one document; returns its id."""
        if doc_id is None:
            doc_id = f"d{len(self._order) + 1}"
        if doc_id in self._documents:
            raise WaisError(f"duplicate document id: {doc_id!r}")
        stored = document if document.ident else document.with_ident(doc_id)
        self._documents[doc_id] = stored
        self._order.append(doc_id)
        self._index.add_document(doc_id, stored)
        self.version += 1
        return doc_id

    def add_all(self, documents: Iterable[DataNode]) -> Tuple[str, ...]:
        return tuple(self.add(document) for document in documents)

    # -- querying ------------------------------------------------------------------

    def field_queryable(self, field: str) -> bool:
        """May clients search on this field?"""
        if self._queryable is None:
            return True
        return field == ANY_FIELD or field in self._queryable

    def field_retrievable(self, field: str) -> bool:
        """May clients see this element in retrieved documents?"""
        if self._retrievable is None:
            return True
        return field in self._retrievable

    def search(self, query: WaisQuery) -> Tuple[str, ...]:
        """Document ids matching every term, in insertion order."""
        matching: Optional[Set[str]] = None
        for term in query.terms:
            if not self.field_queryable(term.field):
                raise WaisError(f"field {term.field!r} is not queryable")
            hits = self._index.lookup(term.text, term.field)
            matching = hits if matching is None else (matching & hits)
            if not matching:
                return ()
        if matching is None:
            matching = set(self._documents)
        return tuple(doc_id for doc_id in self._order if doc_id in matching)

    def fetch(self, doc_id: str) -> DataNode:
        """Retrieve one document, pruned to the retrievable fields."""
        document = self._documents.get(doc_id)
        if document is None:
            raise WaisError(f"unknown document id: {doc_id!r}")
        if self._retrievable is None:
            return document
        pruned_children = [
            child for child in document.children if self.field_retrievable(child.label)
        ]
        return DataNode(
            document.label,
            children=pruned_children,
            ident=document.ident,
            collection=document.collection,
        )

    def fetch_all(self, doc_ids: Sequence[str]) -> Tuple[DataNode, ...]:
        return tuple(self.fetch(doc_id) for doc_id in doc_ids)

    def collection_tree(self, query: Optional[WaisQuery] = None) -> DataNode:
        """The (matching subset of the) collection as one document tree."""
        doc_ids = self.search(query) if query is not None else tuple(self._order)
        return DataNode(
            self.collection_label,
            children=[self.fetch(doc_id) for doc_id in doc_ids],
        )

    def document_ids(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def element_labels(self) -> Tuple[str, ...]:
        """All element labels appearing in stored documents (sorted)."""
        labels: Set[str] = set()
        for document in self._documents.values():
            for node in document.descendants():
                labels.add(node.label)
        return tuple(sorted(labels))
