"""A typed relational source backed by sqlite3 (DB-API)."""

from repro.sources.relational.engine import SqlColumn, SqlDatabase, SqlTable

__all__ = ["SqlColumn", "SqlDatabase", "SqlTable"]
