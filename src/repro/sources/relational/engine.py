"""A typed relational source backed by :mod:`sqlite3` (DB-API).

The paper claims SQL sources wrap "in a similar manner" to OQL
(Section 4.1).  This module provides the substrate for that claim: a
schema of typed tables over an in-memory SQLite database, XML export of
tables in a flat row encoding, and parameterized query execution for the
SQL the wrapper generates from pushed plans.

Export encoding (mirrors the O2 ``set * class`` shape at one nesting
level less, since rows are flat)::

    <rows col="set">
      <row><title type="String">Nympheas</title><year type="Int">1897</year></row>
      ...
    </rows>
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import SqlSourceError
from repro.model.patterns import PAtomic, PNode, PStar, PatternLibrary
from repro.model.trees import DataNode
from repro.model.values import ATOMIC_TYPE_NAMES

_SQLITE_TYPES = {
    "Int": "INTEGER",
    "Float": "REAL",
    "String": "TEXT",
    "Bool": "INTEGER",
}

_IDENT_OK = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _check_identifier(name: str) -> str:
    """Guard against SQL injection through schema identifiers."""
    if not name or not set(name) <= _IDENT_OK or name[0].isdigit():
        raise SqlSourceError(f"invalid SQL identifier: {name!r}")
    return name


class SqlColumn:
    """One typed column."""

    __slots__ = ("name", "type_name")

    def __init__(self, name: str, type_name: str) -> None:
        if type_name not in ATOMIC_TYPE_NAMES:
            raise SqlSourceError(f"unknown column type: {type_name!r}")
        self.name = _check_identifier(name)
        self.type_name = type_name

    def __repr__(self) -> str:
        return f"SqlColumn({self.name!r}, {self.type_name!r})"


class SqlTable:
    """One table: a name and its columns."""

    __slots__ = ("name", "columns")

    def __init__(self, name: str, columns: Sequence[SqlColumn]) -> None:
        self.name = _check_identifier(name)
        if not columns:
            raise SqlSourceError(f"table {name!r} needs at least one column")
        self.columns = tuple(columns)

    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> SqlColumn:
        for column in self.columns:
            if column.name == name:
                return column
        raise SqlSourceError(f"table {self.name!r} has no column {name!r}")


class SqlDatabase:
    """In-memory SQLite database with a typed schema and XML export."""

    def __init__(self, name: str = "sqlsource") -> None:
        self.name = name
        # One shared connection, serialized by our own lock: parallel
        # plan branches may push SQL from pool threads, and sqlite3's
        # same-thread check would otherwise reject them.
        self._connection = sqlite3.connect(":memory:", check_same_thread=False)
        self._query_lock = threading.Lock()
        self._tables: Dict[str, SqlTable] = {}
        #: Monotonic data version; wrappers key document memos on it.
        self.version = 0

    def close(self) -> None:
        self._connection.close()

    # -- schema ---------------------------------------------------------------

    def create_table(self, table: SqlTable) -> None:
        if table.name in self._tables:
            raise SqlSourceError(f"table {table.name!r} already exists")
        columns_sql = ", ".join(
            f"{column.name} {_SQLITE_TYPES[column.type_name]}"
            for column in table.columns
        )
        self._connection.execute(f"CREATE TABLE {table.name} ({columns_sql})")
        self._tables[table.name] = table
        self.version += 1

    def table(self, name: str) -> SqlTable:
        try:
            return self._tables[name]
        except KeyError:
            raise SqlSourceError(f"unknown table: {name!r}") from None

    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    # -- updates ------------------------------------------------------------------

    def insert_rows(self, table_name: str, rows: Iterable[Dict[str, object]]) -> int:
        """Insert dictionaries as rows; returns the number inserted."""
        table = self.table(table_name)
        names = table.column_names()
        placeholders = ", ".join("?" for _ in names)
        sql = f"INSERT INTO {table.name} ({', '.join(names)}) VALUES ({placeholders})"
        count = 0
        for row in rows:
            missing = set(names) - set(row)
            if missing:
                raise SqlSourceError(
                    f"row for {table_name!r} is missing columns {sorted(missing)}"
                )
            values = tuple(
                int(row[n]) if isinstance(row[n], bool) else row[n] for n in names
            )
            self._connection.execute(sql, values)
            count += 1
        self._connection.commit()
        if count:
            self.version += 1
        return count

    # -- queries --------------------------------------------------------------------

    def query(
        self, sql: str, params: Sequence[object] = ()
    ) -> List[Dict[str, object]]:
        """Run a SELECT and return rows as dictionaries."""
        with self._query_lock:
            try:
                cursor = self._connection.execute(sql, tuple(params))
            except sqlite3.Error as exc:
                raise SqlSourceError(f"SQL error: {exc} in {sql!r}") from exc
            names = [description[0] for description in cursor.description]
            return [dict(zip(names, row)) for row in cursor.fetchall()]

    def row_count(self, table_name: str) -> int:
        table = self.table(table_name)
        rows = self.query(f"SELECT COUNT(*) AS n FROM {table.name}")
        return int(rows[0]["n"])

    # -- XML export -------------------------------------------------------------------

    def export_table(self, table_name: str) -> DataNode:
        """The whole table as a ``rows [ row* ]`` document tree."""
        table = self.table(table_name)
        rows = self.query(f"SELECT * FROM {table.name}")
        children = [self._row_tree(table, row) for row in rows]
        return DataNode("rows", children=children, collection="set")

    def _row_tree(self, table: SqlTable, row: Dict[str, object]) -> DataNode:
        children = []
        for column in table.columns:
            value = row[column.name]
            if value is None:
                continue
            if column.type_name == "Bool":
                value = bool(value)
            if column.type_name == "Float" and isinstance(value, int):
                value = float(value)
            children.append(DataNode(column.name, atom=value))
        return DataNode("row", children=children)

    def to_pattern_library(self) -> PatternLibrary:
        """Structure patterns for every table: ``rows [ * row [cols] ]``."""
        library = PatternLibrary(self.name)
        for table in self._tables.values():
            row_pattern = PNode(
                "row",
                [
                    PNode(column.name, [PAtomic(column.type_name)])
                    for column in table.columns
                ],
            )
            library.define(
                table.name,
                PNode("rows", [PStar(row_pattern)], collection="set"),
            )
            library.define(f"{table.name}_row", row_pattern)
        return library
