"""Abstract syntax of YAT_L queries.

A program is a list of named rules; each rule is a query with the three
clauses of Section 2:

* ``MAKE`` — a construction specification, parsed directly into the
  algebra's :class:`~repro.core.algebra.tree.Constructor` vocabulary;
* ``MATCH`` — one ``document WITH filter`` binding per input, parsed
  into :class:`~repro.model.filters.Filter` trees;
* ``WHERE`` — a predicate over the bound variables, parsed into the
  algebra's :class:`~repro.core.algebra.expressions.Expr` vocabulary.

Because filters, constructors and expressions *are* the algebra's own
types, translation (Section 3.2) only has to arrange operators — there is
no second intermediate representation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.algebra.expressions import Expr
from repro.core.algebra.tree import Constructor
from repro.model.filters import Filter


class MatchClause:
    """One ``document WITH filter`` item of a MATCH clause."""

    __slots__ = ("document", "filter")

    def __init__(self, document: str, filter: Filter) -> None:
        self.document = document
        self.filter = filter

    def __repr__(self) -> str:
        return f"MatchClause({self.document!r})"


class YatlQuery:
    """One parsed query: MAKE + MATCH* + optional WHERE."""

    __slots__ = ("make", "matches", "where")

    def __init__(
        self,
        make: Constructor,
        matches: Sequence[MatchClause],
        where: Optional[Expr] = None,
    ) -> None:
        self.make = make
        self.matches = tuple(matches)
        self.where = where

    def __repr__(self) -> str:
        documents = [m.document for m in self.matches]
        return f"YatlQuery(matches={documents})"


class YatlRule:
    """A named rule: ``name() := query``."""

    __slots__ = ("name", "query")

    def __init__(self, name: str, query: YatlQuery) -> None:
        self.name = name
        self.query = query

    def __repr__(self) -> str:
        return f"YatlRule({self.name!r})"


class YatlProgram:
    """A sequence of rules (an integration program such as ``view1.yat``)."""

    __slots__ = ("rules",)

    def __init__(self, rules: Sequence[YatlRule]) -> None:
        self.rules = tuple(rules)

    def rule(self, name: str) -> YatlRule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(name)

    def __repr__(self) -> str:
        return f"YatlProgram({[r.name for r in self.rules]})"
