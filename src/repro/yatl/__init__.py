"""The YAT_L integration language (paper, Section 2)."""

from repro.yatl.ast import MatchClause, YatlProgram, YatlQuery, YatlRule
from repro.yatl.parser import parse_filter, parse_program, parse_query
from repro.yatl.translator import (
    translate_program,
    translate_query,
    translate_rule,
)

__all__ = [
    "MatchClause",
    "YatlProgram",
    "YatlQuery",
    "YatlRule",
    "parse_filter",
    "parse_program",
    "parse_query",
    "translate_program",
    "translate_query",
    "translate_rule",
]
