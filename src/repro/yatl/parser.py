"""Recursive-descent parser for YAT_L.

Filter grammar (MATCH side)::

    filter    := element
    element   := label [VAR] [content]        -- `work $w [ ... ]`
    label     := IDENT | VAR                  -- VAR = label variable ($l: ...)
    content   := ":" item | "." item          -- single child / path step
               | ".." item                    -- descendant axis (GPE)
               | "[" items "]"
               | "*" star_item                -- `works *work [...]`
    items     := item ("," item)*
    item      := "*" "(" VAR ")"              -- rest: *($fields)
               | "*" star_item                -- star item: `owners *$o`
               | VAR | literal | element
    star_item := VAR | element

Construction grammar (MAKE side)::

    make      := m_item
    m_element := IDENT [skolem] [m_content]
    skolem    := "&" IDENT "(" vars ")"
    m_content := ":" m_scalar | "[" m_items "]"
    m_items   := m_item ("," m_item)*
    m_item    := "*" "(" exprs ")" m_element          -- grouping *(e) elem
               | "*" "&" IDENT "(" exprs ")" ":=" m_element
                                                      -- `*&artwork($t,$c) := work [...]`
               | "*" (VAR | m_element)                -- iterate per row
               | "&" IDENT "(" exprs ")" ":" IDENT   -- reference: &artist($a): ref_label
               | m_element | VAR | literal
    m_scalar  := VAR | literal | m_element

Predicates (WHERE side) use the usual precedence ``OR < AND < NOT``, with
comparisons over variables, literals and function calls
(``contains($w, "...")``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import YatlSyntaxError
from repro.core.algebra.expressions import (
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    FunCall,
    Var,
)
from repro.core.algebra.tree import (
    CElem,
    CGroup,
    CIterate,
    CLeaf,
    CRef,
    CValue,
    Constructor,
)
from repro.model.filters import (
    FConst,
    FDescend,
    FElem,
    Filter,
    FRest,
    FStar,
    FVar,
    LabelVar,
)
from repro.yatl.ast import MatchClause, YatlProgram, YatlQuery, YatlRule
from repro.yatl.lexer import Token, tokenize


def parse_program(text: str) -> YatlProgram:
    """Parse a full YAT_L program (one or more named rules)."""
    return _Parser(text).parse_program()


def parse_query(text: str) -> YatlQuery:
    """Parse a single anonymous query (``MAKE ... MATCH ... [WHERE ...]``)."""
    return _Parser(text).parse_single_query()


def parse_filter(text: str) -> Filter:
    """Parse a filter in isolation (used by tests and the REPL examples)."""
    parser = _Parser(text)
    flt = parser._filter()
    parser._expect("eof")
    return flt


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens: List[Token] = list(tokenize(text))
        self._position = 0

    # -- token plumbing ----------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._position + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != "eof":
            self._position += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value or kind
            raise YatlSyntaxError(
                f"expected {wanted!r}, got {token.value or token.kind!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        return None

    # -- programs -------------------------------------------------------------------

    def parse_program(self) -> YatlProgram:
        rules = []
        while self._peek().kind != "eof":
            rules.append(self._rule())
        if not rules:
            raise YatlSyntaxError("empty program")
        return YatlProgram(rules)

    def parse_single_query(self) -> YatlQuery:
        query = self._query()
        self._expect("eof")
        return query

    def _rule(self) -> YatlRule:
        name = self._expect("ident").value
        self._expect("punct", "(")
        self._expect("punct", ")")
        self._expect("assign")
        return YatlRule(name, self._query())

    def _query(self) -> YatlQuery:
        self._expect("kw", "make")
        make = self._make_item()
        self._expect("kw", "match")
        matches = [self._match()]
        while self._accept("punct", ","):
            matches.append(self._match())
        where = None
        if self._accept("kw", "where"):
            where = self._predicate()
        return YatlQuery(make, matches, where)

    def _match(self) -> MatchClause:
        document = self._expect("ident").value
        self._expect("kw", "with")
        return MatchClause(document, self._filter())

    # -- filters --------------------------------------------------------------------

    def _filter(self) -> Filter:
        return self._element()

    def _element(self) -> Filter:
        token = self._peek()
        if token.kind == "var":
            label: object = LabelVar(self._advance().value)
        else:
            label = self._expect("ident").value
        var = None
        if self._peek().kind == "var":
            var = self._advance().value
        children = self._content()
        return FElem(label, children, var=var)

    def _content(self) -> tuple:
        if self._accept("punct", "."):
            # ".." is the descendant axis (generalized path expressions):
            # `doc .. cplace . $cl` matches cplace at any depth.
            if self._accept("punct", "."):
                return (FDescend(self._item()),)
            return (self._item(),)
        if self._accept("punct", ":"):
            return (self._item(),)
        if self._accept("punct", "["):
            items = [self._item()]
            while self._accept("punct", ","):
                items.append(self._item())
            self._expect("punct", "]")
            return tuple(items)
        if self._accept("punct", "*"):
            return (FStar(self._star_item()),)
        return ()

    def _item(self) -> Filter:
        if self._accept("punct", "*"):
            if self._accept("punct", "("):
                name = self._expect("var").value
                self._expect("punct", ")")
                return FRest(name)
            return FStar(self._star_item())
        token = self._peek()
        if token.kind == "var":
            # `$l: ...` is a label-variable element; bare `$v` binds a value.
            follower = self._peek(1)
            if follower.kind == "punct" and follower.value in (":", ".", "["):
                return self._element()
            self._advance()
            return FVar(token.value)
        if token.kind in ("int", "float", "string") or (
            token.kind == "kw" and token.value in ("true", "false")
        ):
            return FConst(self._literal())
        return self._element()

    def _star_item(self) -> Filter:
        token = self._peek()
        if token.kind == "var":
            follower = self._peek(1)
            if not (follower.kind == "punct" and follower.value in (":", ".", "[")):
                self._advance()
                return FVar(token.value)
        return self._element()

    def _literal(self):
        token = self._advance()
        if token.kind == "int":
            return int(token.value)
        if token.kind == "float":
            return float(token.value)
        if token.kind == "string":
            return token.value[1:-1].replace('\\"', '"')
        if token.kind == "kw" and token.value in ("true", "false"):
            return token.value == "true"
        raise YatlSyntaxError(
            f"expected a literal, got {token.value!r}", token.line, token.column
        )

    # -- construction ---------------------------------------------------------------

    def _make_item(self) -> Constructor:
        if self._accept("punct", "*"):
            return self._starred_make()
        if self._peek().kind == "punct" and self._peek().value == "&":
            return self._reference_make()
        token = self._peek()
        if token.kind == "var":
            self._advance()
            return CValue(Var(token.value))
        if token.kind in ("int", "float", "string") or (
            token.kind == "kw" and token.value in ("true", "false")
        ):
            return CValue(Const(self._literal()))
        return self._make_element()

    def _starred_make(self) -> Constructor:
        if self._peek().kind == "punct" and self._peek().value == "&":
            # `*&artwork($t,$c) := work [...]` — group per Skolem arguments.
            self._advance()
            function = self._expect("ident").value
            args = self._expr_args()
            self._expect("assign")
            element = self._make_element()
            identified = CElem(element.label, element.children,
                               skolem=(function, args))
            return CGroup(args, identified)
        if self._accept("punct", "("):
            # `*($a) artist [...]` — the grouping primitive of Figure 4.
            args = [self._scalar_expr()]
            while self._accept("punct", ","):
                args.append(self._scalar_expr())
            self._expect("punct", ")")
            return CGroup(args, self._make_item())
        token = self._peek()
        if token.kind == "var":
            self._advance()
            return CIterate(CValue(Var(token.value)))
        return CIterate(self._make_element())

    def _reference_make(self) -> Constructor:
        self._expect("punct", "&")
        function = self._expect("ident").value
        args = self._expr_args()
        self._expect("punct", ":")
        label = self._expect("ident").value
        return CRef(label, function, args)

    def _make_element(self) -> Constructor:
        label = self._expect("ident").value
        skolem = None
        if self._peek().kind == "punct" and self._peek().value == "&":
            self._advance()
            function = self._expect("ident").value
            skolem = (function, self._expr_args())
        if self._accept("punct", ":"):
            scalar = self._make_scalar()
            if isinstance(scalar, Expr):
                return CLeaf(label, scalar)
            return CElem(label, [scalar], skolem=skolem)
        if self._accept("punct", "["):
            items = [self._make_item()]
            while self._accept("punct", ","):
                items.append(self._make_item())
            self._expect("punct", "]")
            return CElem(label, items, skolem=skolem)
        return CElem(label, [], skolem=skolem)

    def _make_scalar(self):
        token = self._peek()
        if token.kind == "var":
            self._advance()
            return Var(token.value)
        if token.kind in ("int", "float", "string") or (
            token.kind == "kw" and token.value in ("true", "false")
        ):
            return Const(self._literal())
        return self._make_element()

    def _expr_args(self) -> list:
        self._expect("punct", "(")
        args = [self._scalar_expr()]
        while self._accept("punct", ","):
            args.append(self._scalar_expr())
        self._expect("punct", ")")
        return args

    # -- predicates ---------------------------------------------------------------------

    def _predicate(self) -> Expr:
        operands = [self._conjunction()]
        while self._accept("kw", "or"):
            operands.append(self._conjunction())
        if len(operands) == 1:
            return operands[0]
        return BoolOr(operands)

    def _conjunction(self) -> Expr:
        operands = [self._negation()]
        while self._accept("kw", "and"):
            operands.append(self._negation())
        if len(operands) == 1:
            return operands[0]
        return BoolAnd(operands)

    def _negation(self) -> Expr:
        if self._accept("kw", "not"):
            return BoolNot(self._negation())
        if self._peek().kind == "punct" and self._peek().value == "(":
            self._advance()
            inner = self._predicate()
            self._expect("punct", ")")
            return inner
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._scalar_expr()
        token = self._peek()
        if token.kind == "op":
            self._advance()
            right = self._scalar_expr()
            return Cmp(token.value, left, right)
        return left

    def _scalar_expr(self) -> Expr:
        token = self._peek()
        if token.kind == "var":
            self._advance()
            return Var(token.value)
        if token.kind in ("int", "float", "string") or (
            token.kind == "kw" and token.value in ("true", "false")
        ):
            return Const(self._literal())
        if token.kind == "ident":
            name = self._advance().value
            self._expect("punct", "(")
            args = []
            if not (self._peek().kind == "punct" and self._peek().value == ")"):
                args.append(self._scalar_expr())
                while self._accept("punct", ","):
                    args.append(self._scalar_expr())
            self._expect("punct", ")")
            return FunCall(name, args)
        raise YatlSyntaxError(
            f"expected an expression, got {token.value or token.kind!r}",
            token.line,
            token.column,
        )
