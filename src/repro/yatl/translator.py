"""YAT_L to algebra translation (paper, Section 3.2 and Figure 5).

The five translation steps, verbatim from the paper:

1. named documents are the input operations of the algebraic expression;
2. each MATCH statement translates into a Bind operation;
3. predicates involving various inputs translate into Join operations;
4. other predicates in the WHERE clause translate into Select operations;
5. the MAKE clause translates into a Tree operation.

Selections sit directly above the Bind that binds their variables (as in
Figure 5, where ``$y > 1800`` sits on the artifacts branch); join
predicates attach to the join at which all their variables first become
available; anything left over becomes a final selection.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import YatlTranslationError
from repro.core.algebra.expressions import conjunction, conjuncts
from repro.core.algebra.operators import (
    BindOp,
    JoinOp,
    Plan,
    SelectOp,
    SourceOp,
    TreeOp,
)
from repro.core.algebra.tree import CElem, CGroup, CIterate, Constructor
from repro.yatl.ast import YatlProgram, YatlQuery, YatlRule

#: Resolves a document name to the source exporting it.
DocumentResolver = Callable[[str], str]


def translate_query(
    query: YatlQuery,
    resolve_source: DocumentResolver,
    document_name: str = "result",
) -> Plan:
    """Translate one parsed query into an algebraic plan."""
    if not query.matches:
        raise YatlTranslationError("a query needs at least one MATCH input")

    # Steps 1 + 2: named documents and their Binds.
    branches: List[Plan] = []
    branch_vars: List[frozenset] = []
    for clause in query.matches:
        source = resolve_source(clause.document)
        bind = BindOp(
            SourceOp(source, clause.document), clause.filter, on=clause.document
        )
        branches.append(bind)
        branch_vars.append(frozenset(clause.filter.variables()))

    all_vars = frozenset().union(*branch_vars)
    pending = list(conjuncts(query.where)) if query.where is not None else []
    unknown = [
        c for c in pending if not frozenset(c.variables()) <= all_vars
    ]
    if unknown:
        missing = sorted(
            frozenset(unknown[0].variables()) - all_vars
        )
        raise YatlTranslationError(
            f"WHERE references unbound variables: {missing}"
        )

    # Step 4 (first): single-input predicates become selections on their branch.
    for index, variables in enumerate(branch_vars):
        local = [c for c in pending if frozenset(c.variables()) <= variables]
        if local:
            branches[index] = SelectOp(branches[index], conjunction(local))
            pending = [c for c in pending if c not in local]

    # Step 3: combine branches with joins, attaching multi-input predicates
    # as soon as their variables are available.
    plan = branches[0]
    available = set(branch_vars[0])
    for index in range(1, len(branches)):
        available |= branch_vars[index]
        ready = [c for c in pending if frozenset(c.variables()) <= available]
        plan = JoinOp(plan, branches[index], conjunction(ready))
        pending = [c for c in pending if c not in ready]

    # Step 4 (rest): anything left over is a final selection.
    if pending:
        plan = SelectOp(plan, conjunction(pending))

    # Step 5: the MAKE clause becomes a Tree.
    return TreeOp(plan, _rooted(query.make), document_name)


def _rooted(make: Constructor) -> CElem:
    """Ensure the construction has a single element root."""
    if isinstance(make, CElem):
        return make
    if isinstance(make, (CGroup, CIterate)):
        return CElem("result", [make])
    # A bare value (e.g. ``MAKE $t``): one item per distinct row.
    return CElem("result", [CIterate(make)])


def translate_rule(
    rule: YatlRule, resolve_source: DocumentResolver
) -> Plan:
    """Translate a named rule; the rule name becomes the document name."""
    return translate_query(rule.query, resolve_source, document_name=rule.name)


def translate_program(
    program: YatlProgram, resolve_source: DocumentResolver
) -> Dict[str, Plan]:
    """Translate every rule of a program, keyed by rule name."""
    return {
        rule.name: translate_rule(rule, resolve_source) for rule in program.rules
    }
