"""Constant-lifting normalization of parsed YAT_L queries.

The plan cache (:mod:`repro.mediator.plan_cache`) wants two queries that
differ only in their literal constants — ``WHERE $s = "Impressionist"``
vs ``WHERE $s = "Cubist"`` — to share one optimized plan.  This module
computes, for a parsed :class:`~repro.yatl.ast.YatlQuery`:

* a **structural key**: the query's shape with every liftable constant
  replaced by a typed parameter marker.  Two queries with equal keys are
  guaranteed to plan identically up to their constant values;
* a **value vector**: the lifted constants in a deterministic order
  (MATCH clauses left to right, filters pre-order, then the WHERE
  predicate);
* a **tagged query**: a copy of the query in which each lifted constant
  is replaced by a *parameter-tagged* value — a ``str``/``int``/``float``
  subclass carrying its slot index.  Tagged values behave exactly like
  the raw atoms during translation, optimization, and pushdown (equality,
  hashing, rendering and ``isinstance`` checks are inherited), but the
  cache can later find them inside an optimized plan and rebind fresh
  constants in their place — including constants that *collide* (two
  equal literals in different syntactic positions keep distinct slots)
  and constants that optimizer rules duplicated into derived predicates.

Only MATCH-filter constants (:class:`~repro.model.filters.FConst`) and
WHERE constants (:class:`~repro.core.algebra.expressions.Const`) are
lifted.  MAKE-clause constants are left alone: they flow verbatim into
answer documents, whose structural value keys record the atom's concrete
type, so tagging them would be observable.  Booleans are never lifted
(``bool`` cannot be subclassed, and ``True == 1`` would blur slots).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.algebra.expressions import (
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    FunCall,
    Var,
)
from repro.model.filters import (
    FConst,
    FDescend,
    FElem,
    Filter,
    FRest,
    FStar,
    FVar,
    LabelRegex,
    LabelVar,
)
from repro.yatl.ast import MatchClause, YatlQuery

__all__ = [
    "NormalizedQuery",
    "normalize_query",
    "param_slot",
]


# The tag classes carry one extra attribute, ``slot``.  They cannot use
# __slots__: CPython forbids nonempty slots on subclasses of the
# variable-length builtins (str, int), so each instance pays for a dict —
# acceptable, since only lifted constants of cached queries are tagged.

class _ParamStr(str):
    """A string constant lifted into a plan parameter (slot-tagged)."""


class _ParamInt(int):
    """An integer constant lifted into a plan parameter (slot-tagged)."""


class _ParamFloat(float):
    """A float constant lifted into a plan parameter (slot-tagged)."""


_PARAM_TYPES = (_ParamStr, _ParamInt, _ParamFloat)


def param_slot(value: object) -> Optional[int]:
    """The parameter slot of a tagged constant, or ``None`` for raw atoms."""
    if isinstance(value, _PARAM_TYPES):
        return value.slot
    return None


def _tag(value: object, slot: int):
    """A slot-tagged copy of *value*, or ``None`` when it is not liftable."""
    if isinstance(value, bool):
        return None  # bool cannot be subclassed; True == 1 would blur slots
    if isinstance(value, str):
        tagged = _ParamStr(value)
    elif isinstance(value, int):
        tagged = _ParamInt(value)
    elif isinstance(value, float):
        tagged = _ParamFloat(value)
    else:
        return None
    tagged.slot = slot
    return tagged


def _param_type_name(value: object) -> str:
    """Base-type name for the structural key (keeps int/float slots apart)."""
    if isinstance(value, str):
        return "str"
    if isinstance(value, int):
        return "int"
    return "float"


def _label_key(label) -> tuple:
    if isinstance(label, str):
        return ("l", label)
    if isinstance(label, LabelVar):
        return ("lv", label.name)
    if isinstance(label, LabelRegex):
        return ("lr", label.pattern)
    return ("lo", repr(label))


def _norm_filter(flt: Filter, values: List[object]) -> Tuple[Filter, tuple]:
    """``(tagged filter, structural key)``; appends lifted values in order."""
    if isinstance(flt, FConst):
        tagged = _tag(flt.value, len(values))
        if tagged is None:
            return flt, ("fconst", type(flt.value).__name__, flt.value)
        values.append(flt.value)
        return FConst(tagged), ("param", _param_type_name(flt.value))
    if isinstance(flt, FVar):
        return flt, ("fvar", flt.name)
    if isinstance(flt, FRest):
        return flt, ("frest", flt.name)
    if isinstance(flt, FElem):
        new_children: List[Filter] = []
        child_keys: List[tuple] = []
        changed = False
        for child in flt.children:
            normalized, key = _norm_filter(child, values)
            changed = changed or normalized is not child
            new_children.append(normalized)
            child_keys.append(key)
        rebuilt = FElem(flt.label, new_children, var=flt.var) if changed else flt
        return rebuilt, (
            "felem", _label_key(flt.label), flt.var, tuple(child_keys)
        )
    if isinstance(flt, FStar):
        inner, key = _norm_filter(flt.child, values)
        return (FStar(inner) if inner is not flt.child else flt), ("fstar", key)
    if isinstance(flt, FDescend):
        inner, key = _norm_filter(flt.child, values)
        rebuilt = FDescend(inner) if inner is not flt.child else flt
        return rebuilt, ("fdescend", key)
    # Unknown filter kinds are left opaque: their constants stay inline,
    # so differing constants yield differing keys — correct, just uncached.
    return flt, ("opaque", flt._key())


def _norm_expr(expr: Expr, values: List[object]) -> Tuple[Expr, tuple]:
    """``(tagged expression, structural key)`` for a WHERE predicate."""
    if isinstance(expr, Const):
        tagged = _tag(expr.value, len(values))
        if tagged is None:
            return expr, ("const", type(expr.value).__name__, expr.value)
        values.append(expr.value)
        return Const(tagged), ("param", _param_type_name(expr.value))
    if isinstance(expr, Var):
        return expr, ("var", expr.name)
    if isinstance(expr, Cmp):
        left, left_key = _norm_expr(expr.left, values)
        right, right_key = _norm_expr(expr.right, values)
        changed = left is not expr.left or right is not expr.right
        rebuilt = Cmp(expr.op, left, right) if changed else expr
        return rebuilt, ("cmp", expr.op, left_key, right_key)
    if isinstance(expr, (BoolAnd, BoolOr)):
        operands: List[Expr] = []
        keys: List[tuple] = []
        changed = False
        for operand in expr.operands:
            normalized, key = _norm_expr(operand, values)
            changed = changed or normalized is not operand
            operands.append(normalized)
            keys.append(key)
        kind = "and" if isinstance(expr, BoolAnd) else "or"
        rebuilt = type(expr)(operands) if changed else expr
        return rebuilt, (kind,) + tuple(keys)
    if isinstance(expr, BoolNot):
        inner, key = _norm_expr(expr.operand, values)
        rebuilt = BoolNot(inner) if inner is not expr.operand else expr
        return rebuilt, ("not", key)
    if isinstance(expr, FunCall):
        args: List[Expr] = []
        keys = []
        changed = False
        for arg in expr.args:
            normalized, key = _norm_expr(arg, values)
            changed = changed or normalized is not arg
            args.append(normalized)
            keys.append(key)
        rebuilt = FunCall(expr.name, args) if changed else expr
        return rebuilt, ("fun", expr.name) + tuple(keys)
    return expr, ("opaque", expr._key())


class NormalizedQuery:
    """A query's structural key, lifted constants, and tagged form."""

    __slots__ = ("key", "values", "query")

    def __init__(
        self, key: tuple, values: Tuple[object, ...], query: YatlQuery
    ) -> None:
        self.key = key
        self.values = values
        self.query = query

    def __repr__(self) -> str:
        return f"NormalizedQuery({len(self.values)} parameters)"


def normalize_query(query: YatlQuery) -> NormalizedQuery:
    """Lift MATCH/WHERE constants of *query* into ordered parameters."""
    values: List[object] = []
    new_matches: List[MatchClause] = []
    match_keys: List[tuple] = []
    changed = False
    for clause in query.matches:
        normalized, key = _norm_filter(clause.filter, values)
        if normalized is not clause.filter:
            changed = True
            new_matches.append(MatchClause(clause.document, normalized))
        else:
            new_matches.append(clause)
        match_keys.append((clause.document, key))
    where = query.where
    where_key: Optional[tuple] = None
    if where is not None:
        normalized_where, where_key = _norm_expr(where, values)
        if normalized_where is not where:
            changed = True
            where = normalized_where
    tagged = (
        YatlQuery(query.make, new_matches, where) if changed else query
    )
    key = ("yatl", query.make._key(), tuple(match_keys), where_key)
    return NormalizedQuery(key, tuple(values), tagged)
