"""Tokenizer for YAT_L programs.

The concrete syntax follows the paper's examples (Section 2)::

    artworks() :=
    MAKE doc [ *&artwork($t, $c) := work [ title: $t, ... ] ]
    MATCH artifacts WITH set *class: artifact: tuple [ title: $t, ... ],
          artworks  WITH works *work [ artist: $a, ..., *($fields) ]
    WHERE $y > 1800 AND $c = $a AND $t = $t'

Variables are ``$name`` and may end in primes (``$t'``).  Keywords are
case-insensitive.
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.errors import YatlSyntaxError

KEYWORDS = frozenset({"make", "match", "with", "where", "and", "or", "not",
                      "true", "false"})

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<assign>:=)
  | (?P<var>\$[A-Za-z_][A-Za-z0-9_]*'*)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*'*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[()\[\],.:*&])
    """,
    re.VERBOSE,
)


class Token(NamedTuple):
    kind: str   # kw, ident, var, int, float, string, op, punct, assign, eof
    value: str
    line: int
    column: int


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens with line/column positions, ending with ``eof``."""
    position = 0
    line = 1
    line_start = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            column = position - line_start + 1
            raise YatlSyntaxError(
                f"unexpected character {text[position]!r}", line, column
            )
        kind = match.lastgroup
        value = match.group()
        column = match.start() - line_start + 1
        position = match.end()
        if kind in ("ws", "comment"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + value.rindex("\n") + 1
            continue
        if kind == "ident" and value.lower() in KEYWORDS:
            yield Token("kw", value.lower(), line, column)
        elif kind == "var":
            yield Token("var", value[1:], line, column)
        else:
            yield Token(kind, value, line, column)
    yield Token("eof", "", line, position - line_start + 1)
