"""Instantiation checks: data-vs-pattern and pattern-vs-pattern.

The YAT type system relates its three genericity levels through an
*instantiation* mechanism (paper, Section 2): a data tree may be an
instance of a schema pattern, which may itself be an instance of a model
pattern — e.g. ``Artifact <: ODMG <: YAT`` in Figure 3.

Two checks are provided:

* :func:`is_instance` — is this :class:`~repro.model.trees.DataNode` an
  instance of this :class:`~repro.model.patterns.Pattern`?
* :func:`subsumes` — is every instance of ``specific`` also an instance of
  ``general``?  This is a *conservative* structural check (it may answer
  ``False`` for exotic patterns that are in fact subsumed, but never
  answers ``True`` wrongly), which is the safe direction for the
  optimizer: a missed subsumption only disables a rewrite.

Both checks are coinductive over named-pattern references so that
recursive patterns (``Ftype`` referencing ``Fclass`` referencing
``Ftype``) terminate: a pair under test is provisionally assumed to hold.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.model.patterns import (
    PAny,
    PAtomic,
    PConstLeaf,
    PNode,
    PRef,
    PStar,
    PUnion,
    Pattern,
    PatternLibrary,
)
from repro.model.trees import DataNode
from repro.model.values import UNORDERED_KINDS, atom_type_name


# ---------------------------------------------------------------------------
# Data instance of pattern
# ---------------------------------------------------------------------------

def is_instance(
    node: DataNode, pattern: Pattern, library: Optional[PatternLibrary] = None
) -> bool:
    """Return ``True`` when the data tree *node* instantiates *pattern*.

    *library* resolves :class:`PRef` names; without a library a reference
    pattern matches any data reference node (purely structural check).
    """
    return _instance(node, pattern, library, set())


def _instance(
    node: DataNode,
    pattern: Pattern,
    library: Optional[PatternLibrary],
    active: Set[Tuple[int, tuple]],
) -> bool:
    if isinstance(pattern, PAny):
        return True
    if isinstance(pattern, PUnion):
        return any(_instance(node, alt, library, active) for alt in pattern.alternatives)
    if isinstance(pattern, PRef):
        # A data-level reference instantiates a pattern-level reference.
        if node.is_reference:
            return True
        if library is None or pattern.name not in library:
            return False
        key = (id(node), pattern._key())
        if key in active:
            # Coinduction: assume the pair holds while it is being checked.
            return True
        active.add(key)
        try:
            return _instance(node, library.resolve(pattern.name), library, active)
        finally:
            active.discard(key)
    if isinstance(pattern, PAtomic):
        return node.is_atom_leaf and atom_type_name(node.atom) == pattern.type_name
    if isinstance(pattern, PConstLeaf):
        return node.is_atom_leaf and node.atom == pattern.value and (
            type(node.atom) is type(pattern.value)
        )
    if isinstance(pattern, PNode):
        if not pattern.label_is_wildcard and node.label != pattern.label:
            return False
        if pattern.collection is not None and node.collection != pattern.collection:
            return False
        if node.is_atom_leaf:
            # An atom leaf instantiates a node pattern whose content is a
            # single atom-compatible pattern (e.g. title: String).
            return _atom_content_matches(node, pattern.children, library, active)
        if node.is_reference:
            return len(pattern.children) == 1 and isinstance(pattern.children[0], PRef)
        unordered = node.collection in UNORDERED_KINDS
        # Both tuples are already immutable sequences; copying them to
        # lists on every node match was pure allocation churn.
        return _sequence_match(
            node.children, pattern.children, library, active, unordered
        )
    raise TypeError(f"unknown pattern kind: {pattern!r}")


def _atom_content_matches(
    node: DataNode,
    content: Sequence[Pattern],
    library: Optional[PatternLibrary],
    active: Set[Tuple[int, tuple]],
) -> bool:
    """Match an atom leaf against the child patterns of a node pattern."""
    if len(content) != 1:
        return False
    only = content[0]
    if isinstance(only, PUnion):
        return any(_atom_content_matches(node, [alt], library, active) for alt in only.alternatives)
    if isinstance(only, PRef) and library is not None and only.name in library:
        return _atom_content_matches(node, [library.resolve(only.name)], library, active)
    if isinstance(only, PAny):
        return True
    if isinstance(only, PAtomic):
        return atom_type_name(node.atom) == only.type_name
    if isinstance(only, PConstLeaf):
        return node.atom == only.value and type(node.atom) is type(only.value)
    return False


def _sequence_match(
    children: Sequence[DataNode],
    items: Sequence[Pattern],
    library: Optional[PatternLibrary],
    active: Set[Tuple[int, tuple]],
    unordered: bool,
) -> bool:
    """Match a child sequence against a pattern sequence.

    Ordered sequences use memoized regular-expression matching where
    :class:`PStar` absorbs zero or more consecutive children.  Unordered
    collections (sets/bags) use a greedy assignment: every non-star item
    claims one distinct matching child, remaining children must each match
    some star item.
    """
    if unordered:
        return _unordered_match(children, items, library, active)

    memo: dict = {}

    def match(ci: int, pi: int) -> bool:
        key = (ci, pi)
        if key in memo:
            return memo[key]
        if pi == len(items):
            result = ci == len(children)
        else:
            item = items[pi]
            if isinstance(item, PStar):
                # Either the star is done, or it absorbs one more child.
                result = match(ci, pi + 1) or (
                    ci < len(children)
                    and _instance(children[ci], item.child, library, active)
                    and match(ci + 1, pi)
                )
            else:
                result = (
                    ci < len(children)
                    and _instance(children[ci], item, library, active)
                    and match(ci + 1, pi + 1)
                )
        memo[key] = result
        return result

    return match(0, 0)


def _unordered_match(
    children: Sequence[DataNode],
    items: Sequence[Pattern],
    library: Optional[PatternLibrary],
    active: Set[Tuple[int, tuple]],
) -> bool:
    stars = [item.child for item in items if isinstance(item, PStar)]
    singles = [item for item in items if not isinstance(item, PStar)]
    used = [False] * len(children)
    for item in singles:
        for index, child in enumerate(children):
            if not used[index] and _instance(child, item, library, active):
                used[index] = True
                break
        else:
            return False
    for index, child in enumerate(children):
        if used[index]:
            continue
        if not any(_instance(child, star, library, active) for star in stars):
            return False
    return True


# ---------------------------------------------------------------------------
# Pattern subsumption (specific <: general)
# ---------------------------------------------------------------------------

def subsumes(
    general: Pattern,
    specific: Pattern,
    library: Optional[PatternLibrary] = None,
) -> bool:
    """Return ``True`` when every instance of *specific* instantiates *general*.

    The check is conservative; ``False`` answers may be over-cautious but
    ``True`` answers are sound (assuming well-formed libraries).
    """
    return _subsumes(general, specific, library, set())


def _subsumes(
    general: Pattern,
    specific: Pattern,
    library: Optional[PatternLibrary],
    active: Set[Tuple[tuple, tuple]],
) -> bool:
    if isinstance(general, PAny):
        return True
    key = (general._key(), specific._key())
    if key in active:
        return True  # coinduction over recursive references
    active.add(key)
    try:
        return _subsumes_inner(general, specific, library, active)
    finally:
        active.discard(key)


def _subsumes_inner(
    general: Pattern,
    specific: Pattern,
    library: Optional[PatternLibrary],
    active: Set[Tuple[tuple, tuple]],
) -> bool:
    # Resolve references first (both sides).
    if isinstance(specific, PRef):
        if isinstance(general, PRef) and general.name == specific.name:
            return True
        if library is not None and specific.name in library:
            return _subsumes(general, library.resolve(specific.name), library, active)
        return isinstance(general, PRef)
    if isinstance(general, PRef):
        if library is not None and general.name in library:
            return _subsumes(library.resolve(general.name), specific, library, active)
        return False
    # Union on the specific side: all alternatives must be subsumed.
    if isinstance(specific, PUnion):
        return all(
            _subsumes(general, alt, library, active) for alt in specific.alternatives
        )
    # Union on the general side: some alternative must subsume.
    if isinstance(general, PUnion):
        return any(
            _subsumes(alt, specific, library, active) for alt in general.alternatives
        )
    if isinstance(general, PAtomic):
        if isinstance(specific, PAtomic):
            return general.type_name == specific.type_name
        if isinstance(specific, PConstLeaf):
            return atom_type_name(specific.value) == general.type_name
        return False
    if isinstance(general, PConstLeaf):
        return isinstance(specific, PConstLeaf) and general.value == specific.value
    if isinstance(general, PStar):
        if isinstance(specific, PStar):
            return _subsumes(general.child, specific.child, library, active)
        return _subsumes(general.child, specific, library, active)
    if isinstance(general, PNode):
        if not isinstance(specific, PNode):
            return False
        if not general.label_is_wildcard and general.label != specific.label:
            return False
        if general.collection is not None and general.collection != specific.collection:
            return False
        return _sequence_subsumes(
            general.children, specific.children, library, active
        )
    if isinstance(general, PAny):
        return True
    return False


def _sequence_subsumes(
    general_items: Sequence[Pattern],
    specific_items: Sequence[Pattern],
    library: Optional[PatternLibrary],
    active: Set[Tuple[tuple, tuple]],
) -> bool:
    """Conservative inclusion of the specific sequence language in the general one."""
    memo: dict = {}

    def incl(si: int, gi: int) -> bool:
        key = (si, gi)
        if key in memo:
            return memo[key]
        memo[key] = True  # optimistic for cycles through identical positions
        if si == len(specific_items):
            # Remaining general items must all be optional (stars).
            result = all(isinstance(g, PStar) for g in general_items[gi:])
        elif gi == len(general_items):
            result = False
        else:
            s_item = specific_items[si]
            g_item = general_items[gi]
            if isinstance(g_item, PStar):
                if isinstance(s_item, PStar):
                    result = (
                        _subsumes(g_item.child, s_item.child, library, active)
                        and incl(si + 1, gi)
                    ) or incl(si, gi + 1)
                else:
                    result = (
                        _subsumes(g_item.child, s_item, library, active)
                        and incl(si + 1, gi)
                    ) or incl(si, gi + 1)
            else:
                if isinstance(s_item, PStar):
                    result = False  # a star cannot fit a single-occurrence slot
                else:
                    result = _subsumes(g_item, s_item, library, active) and incl(
                        si + 1, gi + 1
                    )
        memo[key] = result
        return result

    return incl(0, 0)
