"""The YAT data model and type system (paper, Section 2).

Data trees, type patterns at three genericity levels, the instantiation
mechanism relating them, filters (trees with variables), and the XML wire
format used between wrappers and the mediator.
"""

from repro.model.filters import (
    MISSING,
    FConst,
    FDescend,
    FElem,
    Filter,
    FRest,
    FStar,
    FVar,
    LabelRegex,
    LabelVar,
    felem,
    fpath,
)
from repro.model.instantiation import is_instance, subsumes
from repro.model.patterns import (
    SYMBOL,
    PAny,
    PAtomic,
    PConstLeaf,
    PNode,
    PRef,
    PStar,
    PUnion,
    Pattern,
    PatternLibrary,
    odmg_model_library,
    yat_model_library,
)
from repro.model.trees import (
    DataNode,
    atom_leaf,
    build_ident_index,
    collection_node,
    elem,
    ref,
    resolve_reference,
)
from repro.model.values import Atom, atom_type_name, coerce_atom, is_atom, parse_atom
from repro.model.xml_io import (
    pattern_to_xml,
    serialized_size,
    tree_to_xml,
    xml_to_pattern,
    xml_to_tree,
)

__all__ = [
    "Atom",
    "DataNode",
    "FConst",
    "FDescend",
    "FElem",
    "FRest",
    "FStar",
    "FVar",
    "Filter",
    "LabelRegex",
    "LabelVar",
    "MISSING",
    "PAny",
    "PAtomic",
    "PConstLeaf",
    "PNode",
    "PRef",
    "PStar",
    "PUnion",
    "Pattern",
    "PatternLibrary",
    "SYMBOL",
    "atom_leaf",
    "atom_type_name",
    "build_ident_index",
    "coerce_atom",
    "collection_node",
    "elem",
    "felem",
    "fpath",
    "is_atom",
    "is_instance",
    "odmg_model_library",
    "parse_atom",
    "pattern_to_xml",
    "ref",
    "resolve_reference",
    "serialized_size",
    "subsumes",
    "tree_to_xml",
    "xml_to_pattern",
    "xml_to_tree",
    "yat_model_library",
]
