"""Ordered labeled trees: the data level of the YAT model.

A :class:`DataNode` represents one node of a YAT tree (paper, Section 2 and
Figure 3).  A node is one of:

* an **element**: a label plus an ordered sequence of children, optionally
  annotated with a collection kind (``set``/``bag``/``list``/``array``);
* an **atom leaf**: a label whose single content is an atomic value;
* a **reference**: a pointer (by identifier) to another tree, written ``&``
  in the paper's figures.

Nodes may carry an identifier (``ident``).  Identifiers come from the
source (object identity in O2) or from Skolem functions at the mediator,
and are excluded from *value* equality: two trees are equal when their
labels, atoms and (order-sensitive, except under unordered collections)
children are equal.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.model.values import Atom, UNORDERED_KINDS, is_atom


class DataNode:
    """One node of a YAT data tree.

    Use the module-level constructors :func:`elem`, :func:`atom_leaf` and
    :func:`ref` rather than calling this class directly; they validate the
    combinations of arguments that make sense.
    """

    __slots__ = (
        "label", "children", "atom", "ident", "ref_target", "collection",
        "_vkey", "_vhash", "_ssize", "_nsize",
    )

    def __init__(
        self,
        label: str,
        children: Sequence["DataNode"] = (),
        atom: Optional[Atom] = None,
        ident: Optional[str] = None,
        ref_target: Optional[str] = None,
        collection: Optional[str] = None,
    ) -> None:
        if atom is not None and children:
            raise ModelError(f"node {label!r} cannot have both an atom and children")
        if ref_target is not None and (children or atom is not None):
            raise ModelError(f"reference node {label!r} cannot carry content")
        if atom is not None and not is_atom(atom):
            raise ModelError(f"not an atom: {atom!r}")
        self.label = label
        self.children: Tuple[DataNode, ...] = tuple(children)
        self.atom = atom
        self.ident = ident
        self.ref_target = ref_target
        self.collection = collection
        # Lazily computed structural key / hash.  Nodes are immutable
        # after construction, so both can be cached on the instance —
        # distinct(), hash-join probes and set operations would otherwise
        # recompute the full recursive key on every use.
        self._vkey: Optional[tuple] = None
        self._vhash: Optional[int] = None
        #: Serialized byte size, cached by ``xml_io.serialized_size`` —
        #: transfer statistics re-measure shared trees on every call.
        self._ssize: Optional[int] = None
        #: Node count, cached by ``size()`` — the index registry's size
        #: gate consults it on every Bind over an uncached document.
        self._nsize: Optional[int] = None

    # -- classification ----------------------------------------------------

    @property
    def is_atom_leaf(self) -> bool:
        """``True`` when the node holds an atomic value."""
        return self.atom is not None

    @property
    def is_reference(self) -> bool:
        """``True`` when the node is a reference to another tree."""
        return self.ref_target is not None

    @property
    def is_element(self) -> bool:
        """``True`` when the node is a plain element (possibly empty)."""
        return not self.is_atom_leaf and not self.is_reference

    # -- navigation ---------------------------------------------------------

    def child(self, label: str) -> Optional["DataNode"]:
        """Return the first child with the given *label*, or ``None``."""
        for node in self.children:
            if node.label == label:
                return node
        return None

    def children_with_label(self, label: str) -> Tuple["DataNode", ...]:
        """Return all children carrying *label*, in document order."""
        return tuple(node for node in self.children if node.label == label)

    def descendants(self) -> Iterator["DataNode"]:
        """Yield this node and every descendant, depth first, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find(self, predicate: Callable[["DataNode"], bool]) -> Optional["DataNode"]:
        """Return the first descendant (pre-order) satisfying *predicate*."""
        for node in self.descendants():
            if predicate(node):
                return node
        return None

    def find_all(self, label: str) -> Tuple["DataNode", ...]:
        """Return every descendant whose label equals *label*."""
        return tuple(node for node in self.descendants() if node.label == label)

    def text(self) -> str:
        """Concatenate the textual form of every atom in the subtree.

        This is the "document content" the Wais full-text index works on.
        """
        parts = []
        for node in self.descendants():
            if node.is_atom_leaf:
                parts.append(str(node.atom))
        return " ".join(parts)

    # -- size / shape -------------------------------------------------------

    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        count = self._nsize
        if count is None:
            count = self._nsize = sum(1 for _node in self.descendants())
        return count

    def depth(self) -> int:
        """Height of the subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    # -- equality -----------------------------------------------------------

    def _value_key(self) -> tuple:
        """Structural key used for equality and hashing.

        Identifiers are excluded; under unordered collection kinds the
        children are compared as sorted multisets.
        """
        key = self._vkey
        if key is not None:
            return key
        if self.is_atom_leaf:
            content: tuple = ("atom", type(self.atom).__name__, self.atom)
        elif self.is_reference:
            content = ("ref", self.ref_target)
        else:
            keys = [child._value_key() for child in self.children]
            if self.collection in UNORDERED_KINDS:
                keys.sort(key=repr)
            content = ("elem", tuple(keys))
        key = self._vkey = (self.label, self.collection, content)
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataNode):
            return NotImplemented
        return self._value_key() == other._value_key()

    def __hash__(self) -> int:
        h = self._vhash
        if h is None:
            h = self._vhash = hash(self._value_key())
        return h

    # -- copies -------------------------------------------------------------

    def with_children(self, children: Sequence["DataNode"]) -> "DataNode":
        """Return a copy of this node with *children* replacing the old ones."""
        return DataNode(
            self.label,
            children=children,
            ident=self.ident,
            collection=self.collection,
        )

    def with_ident(self, ident: Optional[str]) -> "DataNode":
        """Return a copy of this node carrying the given identifier."""
        return DataNode(
            self.label,
            children=self.children,
            atom=self.atom,
            ident=ident,
            ref_target=self.ref_target,
            collection=self.collection,
        )

    # -- display ------------------------------------------------------------

    def __repr__(self) -> str:
        if self.is_atom_leaf:
            return f"DataNode({self.label!r}, atom={self.atom!r})"
        if self.is_reference:
            return f"DataNode({self.label!r}, ref={self.ref_target!r})"
        return f"DataNode({self.label!r}, {len(self.children)} children)"

    def pretty(self, indent: int = 0) -> str:
        """Multi-line indented rendering, used by examples and error text."""
        pad = "  " * indent
        ident = f" id={self.ident}" if self.ident else ""
        if self.is_atom_leaf:
            return f"{pad}{self.label}{ident}: {self.atom!r}"
        if self.is_reference:
            return f"{pad}{self.label}{ident} -> &{self.ref_target}"
        kind = f" ({self.collection})" if self.collection else ""
        lines = [f"{pad}{self.label}{ident}{kind}"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def elem(
    label: str,
    *children: DataNode,
    ident: Optional[str] = None,
    collection: Optional[str] = None,
) -> DataNode:
    """Build an element node.

    >>> work = elem("work", atom_leaf("title", "Nympheas"))
    >>> work.child("title").atom
    'Nympheas'
    """
    return DataNode(label, children=children, ident=ident, collection=collection)


def atom_leaf(label: str, value: Atom) -> DataNode:
    """Build a leaf node holding an atomic value."""
    return DataNode(label, atom=value)


def ref(label: str, target: str) -> DataNode:
    """Build a reference node pointing at the tree identified by *target*."""
    return DataNode(label, ref_target=target)


def collection_node(
    kind: str, label: str, children: Iterable[DataNode], ident: Optional[str] = None
) -> DataNode:
    """Build a collection element of the given kind (``set``, ``list``...)."""
    return DataNode(label, children=tuple(children), ident=ident, collection=kind)


def resolve_reference(node: DataNode, index: dict) -> DataNode:
    """Follow a reference node through an ``{ident: DataNode}`` index.

    Raises :class:`ModelError` when the target is unknown.
    """
    if not node.is_reference:
        return node
    try:
        return index[node.ref_target]
    except KeyError:
        raise ModelError(f"dangling reference: &{node.ref_target}") from None


def build_ident_index(roots: Iterable[DataNode]) -> dict:
    """Index every identified node reachable from *roots* by its ident."""
    index: dict = {}
    for root in roots:
        for node in root.descendants():
            if node.ident is not None:
                index[node.ident] = node
    return index
