"""Document indexes: associative access for Bind (paper, Section 5.2).

The paper's Figure 7 rewrites pay off because restrictions can be
evaluated "using the index" instead of scanning — the Wais wrapper's
full-text index is the paper's own example.  This module gives the
*mediator* the same capability over any materialized YAT document:

* a **label index** (label -> positions) so label-restricted navigation
  touches only the nodes that carry the label;
* a **path/ancestry summary** (pre-order intervals + parent links) so
  ``**`` (:class:`FDescend`) jumps straight to candidate subtrees; and
* a **value index** ((atomic value) -> leaf positions, plus lazily built
  sorted per-label value runs) so constant-restricted filter items such
  as ``name: "Picasso"`` seed the match from the index.

The index is a *pruning* structure, never a matching one: it yields a
superset of candidate children in document order, and the real matcher
(interpretive or compiled) runs on each candidate.  Because every
``FConst`` inside a mandatory filter item must appear somewhere in the
matched child's subtree (all non-rest items are required, including
``FStar`` and ``FDescend`` items), "subtree contains the constant" is a
sound necessary condition.  Nodes the index skips can therefore never
match, and the bindings that survive are byte-identical to a full scan.

Two tree shapes make position bookkeeping unsound, and both disable
seeking (``supports_seek = False``) rather than risk a wrong answer:
trees containing reference nodes (dereferencing may escape the indexed
subtree, so a constant can live outside the child's interval) and trees
sharing one node object in two places (``id``-keyed positions clobber).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.model.filters import (
    FConst,
    FDescend,
    FElem,
    Filter,
    FRest,
    FStar,
)
from repro.model.trees import DataNode

__all__ = [
    "AccessPath",
    "DocumentIndex",
    "IndexRegistry",
    "MIN_INDEX_NODES",
    "document_index",
    "index_eligibility",
    "index_registry_stats",
    "invalidate_document_indexes",
    "required_constants",
    "reset_document_indexes",
]

#: Trees smaller than this are cheaper to scan than to index; the
#: registry remembers them as "not indexed" instead of building.
MIN_INDEX_NODES = 48


class DocumentIndex:
    """Positional label/value index over one immutable document tree.

    Nodes are numbered in pre-order (the exact order of
    :meth:`DataNode.descendants`); the subtree of the node at position
    ``p`` occupies the half-open interval ``[p, end(p))``.  All lookups
    reduce to bisections over sorted position lists, and every result
    comes back in document order because pre-order positions of
    interval-disjoint nodes increase left to right.
    """

    __slots__ = (
        "_nodes", "_parents", "_ends", "_ids",
        "_label_positions", "_value_positions", "_range_lists",
        "_child_maps", "supports_seek", "node_count", "build_seconds",
    )

    def __init__(self, root: DataNode) -> None:
        started = time.perf_counter()
        nodes: List[DataNode] = []
        parents: List[int] = []
        ids: Dict[int, int] = {}
        label_positions: Dict[str, List[int]] = {}
        value_positions: Dict[object, List[int]] = {}
        has_references = False
        shared = False

        stack: List[Tuple[DataNode, int]] = [(root, -1)]
        while stack:
            node, parent = stack.pop()
            pos = len(nodes)
            nodes.append(node)
            parents.append(parent)
            if id(node) in ids:
                shared = True
            else:
                ids[id(node)] = pos
            label_positions.setdefault(node.label, []).append(pos)
            if node.is_atom_leaf:
                value_positions.setdefault(node.atom, []).append(pos)
            elif node.is_reference:
                has_references = True
            for child in reversed(node.children):
                stack.append((child, pos))

        count = len(nodes)
        sizes = [1] * count
        for pos in range(count - 1, 0, -1):
            sizes[parents[pos]] += sizes[pos]
        ends = [pos + sizes[pos] for pos in range(count)]

        self._nodes = nodes
        self._parents = parents
        self._ends = ends
        self._ids = ids
        self._label_positions = label_positions
        self._value_positions = value_positions
        #: Lazily built ``(label, kind) -> (sorted values, positions)``
        #: runs backing the range lookups; kind separates numbers from
        #: strings so mixed-type leaves never hit a comparison TypeError.
        self._range_lists: Dict[Tuple[str, str], Tuple[list, List[int]]] = {}
        #: Lazily built ``label -> {parent position: [child positions]}``
        #: maps backing the holistic twig join (one grouping pass per
        #: label, amortized across every match over this document).
        self._child_maps: Dict[str, Dict[int, List[int]]] = {}
        self.supports_seek = not has_references and not shared
        self.node_count = count
        self.build_seconds = time.perf_counter() - started

    # -- coverage -----------------------------------------------------------

    def covers(self, node: DataNode) -> bool:
        """``True`` when seeks rooted at *node* are sound on this index."""
        if not self.supports_seek:
            return False
        pos = self._ids.get(id(node))
        return pos is not None and self._nodes[pos] is node

    def _position(self, node: DataNode) -> int:
        pos = self._ids.get(id(node))
        if pos is None or self._nodes[pos] is not node:
            raise KeyError(f"node {node!r} is not part of the indexed document")
        return pos

    # -- positional access (twig joins) -------------------------------------

    @property
    def preorder_nodes(self) -> List[DataNode]:
        """Every node of the document in pre-order position order."""
        return self._nodes

    @property
    def subtree_ends(self) -> List[int]:
        """``ends[p]``: one past the last position of ``p``'s subtree."""
        return self._ends

    def position_of(self, node: DataNode) -> int:
        """Pre-order position of *node* (KeyError when not indexed)."""
        return self._position(node)

    def label_list(self, label: str) -> Sequence[int]:
        """Sorted pre-order positions of every *label*-labeled node."""
        return self._label_positions.get(label, ())

    def children_map(self, label: str) -> Dict[int, List[int]]:
        """``parent position -> child positions`` for *label*-labeled children.

        Built lazily, once per label per document, by a single grouping
        pass over the label's position list; twig joins then resolve a
        parent/child edge with one dict probe instead of scanning the
        parent's children.  Child positions come out ascending, i.e. in
        document order.  The benign build race under concurrent matches
        mirrors ``_range_lists``.
        """
        mapped = self._child_maps.get(label)
        if mapped is None:
            mapped = {}
            parents = self._parents
            for position in self._label_positions.get(label, ()):
                parent = parents[position]
                bucket = mapped.get(parent)
                if bucket is None:
                    mapped[parent] = [position]
                else:
                    bucket.append(position)
            self._child_maps[label] = mapped
        return mapped

    # -- label index --------------------------------------------------------

    def descendants_with_label(self, scope: DataNode, label: str) -> Tuple[DataNode, ...]:
        """Every node labeled *label* in the subtree of *scope* (inclusive),
        in the same order ``scope.descendants()`` would visit them."""
        positions = self._label_positions.get(label)
        if not positions:
            return ()
        pos = self._position(scope)
        end = self._ends[pos]
        lo = bisect_left(positions, pos)
        hi = bisect_left(positions, end, lo)
        nodes = self._nodes
        return tuple(nodes[p] for p in positions[lo:hi])

    def children_with_label(self, scope: DataNode, label: str) -> Tuple[DataNode, ...]:
        """Direct children of *scope* labeled *label*, in document order."""
        positions = self._label_positions.get(label)
        if not positions:
            return ()
        pos = self._position(scope)
        end = self._ends[pos]
        lo = bisect_right(positions, pos)
        hi = bisect_left(positions, end, lo)
        nodes = self._nodes
        parents = self._parents
        return tuple(nodes[p] for p in positions[lo:hi] if parents[p] == pos)

    # -- value index --------------------------------------------------------

    def child_candidates(
        self, scope: DataNode, label: str, values: Sequence[object]
    ) -> Tuple[DataNode, ...]:
        """Children of *scope* labeled *label* whose subtree contains every
        atom in *values*, in document order.

        This is the associative-access entry point: a superset of the
        children that can match a filter item requiring those constants.
        """
        pos = self._position(scope)
        end = self._ends[pos]
        parents = self._parents
        survivors: Optional[List[int]] = None
        for value in values:
            positions = self._value_positions.get(value)
            if not positions:
                return ()
            lo = bisect_right(positions, pos)
            hi = bisect_left(positions, end, lo)
            if lo == hi:
                return ()
            # Climb each leaf to its ancestor that is a direct child of
            # the scope; ascending leaf positions give non-decreasing
            # child positions, so adjacent dedup keeps document order.
            children: List[int] = []
            for leaf in positions[lo:hi]:
                p = leaf
                while parents[p] != pos:
                    p = parents[p]
                if not children or children[-1] != p:
                    children.append(p)
            if survivors is None:
                survivors = children
            else:
                keep = set(children)
                survivors = [p for p in survivors if p in keep]
            if not survivors:
                return ()
        if survivors is None:
            return ()
        nodes = self._nodes
        return tuple(
            nodes[p] for p in survivors if nodes[p].label == label
        )

    def leaves_with_value(self, label: str, value: object) -> Tuple[DataNode, ...]:
        """Every atom leaf ``label: value`` in the document, in document order."""
        positions = self._value_positions.get(value)
        if not positions:
            return ()
        nodes = self._nodes
        return tuple(
            nodes[p] for p in positions if nodes[p].label == label
        )

    def leaves_in_range(
        self,
        label: str,
        lo: object = None,
        hi: object = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Tuple[DataNode, ...]:
        """Atom leaves labeled *label* with values in the given range.

        Results come back sorted by ``(value, document position)`` — the
        sorted-value runs that make year/range restrictions associative.
        Numeric bounds search the numeric run, string bounds the string
        run; ``None`` leaves that side open.
        """
        bound = lo if lo is not None else hi
        if bound is None:
            raise ValueError("leaves_in_range needs at least one bound")
        kind = "str" if isinstance(bound, str) else "num"
        values, positions = self._range_run(label, kind)
        start = 0
        stop = len(values)
        if lo is not None:
            start = bisect_left(values, lo) if lo_inclusive else bisect_right(values, lo)
        if hi is not None:
            stop = bisect_right(values, hi) if hi_inclusive else bisect_left(values, hi)
        nodes = self._nodes
        return tuple(nodes[p] for p in positions[start:stop])

    def _range_run(self, label: str, kind: str) -> Tuple[list, List[int]]:
        run = self._range_lists.get((label, kind))
        if run is not None:
            return run
        pairs = []
        nodes = self._nodes
        for pos in self._label_positions.get(label, ()):
            atom = nodes[pos].atom
            if atom is None:
                continue
            numeric = isinstance(atom, (bool, int, float))
            if (kind == "num") != numeric:
                continue
            pairs.append((atom, pos))
        pairs.sort()
        run = ([value for value, _pos in pairs], [pos for _value, pos in pairs])
        self._range_lists[(label, kind)] = run
        return run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DocumentIndex({self.node_count} nodes, "
            f"{len(self._label_positions)} labels, "
            f"{len(self._value_positions)} values, "
            f"seek={'on' if self.supports_seek else 'off'})"
        )


# ---------------------------------------------------------------------------
# Index eligibility: which filters are sargable
# ---------------------------------------------------------------------------

def required_constants(target: Filter) -> Tuple[object, ...]:
    """Atomic constants that must appear in any subtree matching *target*.

    Every non-rest item of an element filter is mandatory — a ``FStar``
    item with zero matching children, or a ``FDescend`` item with zero
    bindings, fails the whole element — so *every* ``FConst`` reachable
    in the target is required.  Order-preserving dedup.
    """
    return tuple(dict.fromkeys(
        node.value for node in target.walk() if isinstance(node, FConst)
    ))


class AccessPath:
    """The access path the optimizer chose for one Bind: seek or scan."""

    __slots__ = ("kind", "keys")

    def __init__(self, kind: str, keys: Tuple[Tuple[str, object], ...] = ()) -> None:
        self.kind = kind
        self.keys = keys

    @property
    def seekable(self) -> bool:
        return self.kind == "index-seek"

    def describe(self) -> str:
        """``index-seek on (artist,'Picasso'), (**,work)`` or ``scan``."""
        if not self.seekable:
            return "scan"
        parts = []
        for label, value in self.keys:
            if value is None:
                parts.append(f"({label})" if label != "**" else "(**)")
            elif label == "**":
                parts.append(f"(**,{value})")
            else:
                parts.append(f"({label},{value!r})")
        return "index-seek on " + ", ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AccessPath({self.describe()!r})"


def _star_target(item: Filter) -> Filter:
    while isinstance(item, FStar):
        item = item.child
    return item


def index_eligibility(flt: Filter) -> AccessPath:
    """Static analysis: can a document index accelerate this filter?

    A filter is seekable when some element item carries a required
    constant under a literal label (value-index seek) or some ``**``
    descends into a literal label (label-index jump).  The keys feed the
    EXPLAIN access-path line; ``(**, label)`` marks a descend jump.
    """
    keys: List[Tuple[str, object]] = []
    for node in flt.walk():
        if isinstance(node, FElem):
            for item in node.children:
                if isinstance(item, FRest):
                    continue
                target = _star_target(item)
                if isinstance(target, FElem) and isinstance(target.label, str):
                    for value in required_constants(target):
                        keys.append((target.label, value))
        elif isinstance(node, FDescend):
            child = node.child
            if isinstance(child, FElem) and isinstance(child.label, str):
                keys.append(("**", child.label))
    deduped = tuple(dict.fromkeys(keys))
    if deduped:
        return AccessPath("index-seek", deduped)
    return AccessPath("scan")


# ---------------------------------------------------------------------------
# Registry: lazy per-(document, epoch) indexes
# ---------------------------------------------------------------------------

class IndexRegistry:
    """Process-wide cache of :class:`DocumentIndex` keyed by tree identity.

    Indexes are built lazily on first use and kept until the mediator
    bumps its catalog epoch (``invalidate_document_indexes``), which
    every schema/source change already triggers.  Trees that are too
    small or cannot support seeking are remembered as ``None`` so the
    eligibility check is paid once per document, not per Bind row.
    """

    __slots__ = ("_lock", "_entries", "_capacity", "builds", "hits",
                 "build_seconds", "epoch", "evictions")

    def __init__(self, capacity: int = 64) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[int, Tuple[DataNode, Optional[DocumentIndex]]] = {}
        self._capacity = capacity
        self.builds = 0
        self.hits = 0
        self.build_seconds = 0.0
        self.epoch = 0
        self.evictions = 0

    def get(self, root: DataNode) -> Tuple[Optional[DocumentIndex], bool]:
        """Return ``(index or None, built_now)`` for *root*.

        ``None`` means "scan this one": the tree is below the size gate
        or cannot support sound seeks.  The build happens outside the
        lock; two threads racing on a cold document may both build, and
        either result is correct.
        """
        key = id(root)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is root:
                self.hits += 1
                return entry[1], False
        if root.size() < MIN_INDEX_NODES:
            index: Optional[DocumentIndex] = None
        else:
            index = DocumentIndex(root)
            if not index.supports_seek:
                index = None
        with self._lock:
            if len(self._entries) >= self._capacity:
                self.evictions += len(self._entries)
                self._entries.clear()
            self._entries[key] = (root, index)
            if index is not None:
                self.builds += 1
                self.build_seconds += index.build_seconds
        return index, index is not None

    def invalidate(self) -> None:
        """Drop every cached index; called on catalog-epoch bumps."""
        with self._lock:
            self._entries.clear()
            self.epoch += 1

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "indexed": sum(
                    1 for _root, index in self._entries.values()
                    if index is not None
                ),
                "builds": self.builds,
                "hits": self.hits,
                "build_seconds": self.build_seconds,
                "epoch": self.epoch,
                "evictions": self.evictions,
                "capacity": self._capacity,
            }

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self.builds = 0
            self.hits = 0
            self.build_seconds = 0.0
            self.epoch = 0
            self.evictions = 0


_DOCUMENT_INDEXES = IndexRegistry()


def document_index(root: DataNode) -> Tuple[Optional[DocumentIndex], bool]:
    """Fetch (building lazily) the shared index for *root*; see
    :meth:`IndexRegistry.get`."""
    return _DOCUMENT_INDEXES.get(root)


def invalidate_document_indexes() -> None:
    """Drop all cached document indexes (catalog epoch bumped)."""
    _DOCUMENT_INDEXES.invalidate()


def index_registry_stats() -> Dict[str, object]:
    """Counters for metrics export: entries, builds, hits, build time."""
    return _DOCUMENT_INDEXES.stats()


def reset_document_indexes() -> None:
    """Test hook: clear the registry and zero its counters."""
    _DOCUMENT_INDEXES.reset()
