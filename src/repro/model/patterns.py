"""Type patterns: the schema and model levels of the YAT type system.

The paper (Section 2, Figure 3) stratifies structural information in three
levels of genericity related by *instantiation*:

* **model** level — e.g. the ODMG model: a type is an atom, a tuple, a
  collection or a class reference;
* **schema** level — e.g. the ``Artifact`` class of the art database;
* **data** level — actual trees (:class:`repro.model.trees.DataNode`).

All three levels above the data are expressed with the same pattern
vocabulary:

========================  ====================================================
:class:`PAtomic`          an atomic type leaf (``Int``, ``String``, ...)
:class:`PConstLeaf`       a leaf holding one specific constant
:class:`PNode`            an element with a label and a child sequence; the
                          label is either concrete or the wildcard ``SYMBOL``
:class:`PStar`            zero or more occurrences of a sub-pattern (``*``)
:class:`PUnion`           alternatives (``v`` in the figures)
:class:`PRef`             a reference (``&``) to a named pattern
:class:`PAny`             the universal pattern (top of the YAT model)
========================  ====================================================

Named patterns (the bold identifiers in Figure 3, e.g. ``Class``,
``Artifact``) live in a :class:`PatternLibrary` so that patterns can be
recursive (``Ftype`` referring to ``Fclass`` referring back to ``Ftype`` in
Figure 6).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import PatternError
from repro.model.values import ATOMIC_TYPE_NAMES, Atom

#: Wildcard label: matches any element label (the ``Symbol`` meta-node of
#: the YAT model in Figure 3).
SYMBOL = "Symbol"


class Pattern:
    """Base class of all pattern nodes.

    Patterns are immutable; subclasses define ``_key`` for equality and
    hashing so patterns can be deduplicated and memoized during
    instantiation checks.
    """

    __slots__ = ()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def children_patterns(self) -> Tuple["Pattern", ...]:
        """Direct sub-patterns (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["Pattern"]:
        """Yield this pattern and all sub-patterns, pre-order."""
        yield self
        for child in self.children_patterns():
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        """Indented multi-line rendering."""
        raise NotImplementedError


class PAny(Pattern):
    """Matches any tree: the top of the YAT (meta)model."""

    __slots__ = ()

    def _key(self) -> tuple:
        return ("any",)

    def __repr__(self) -> str:
        return "PAny()"

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + "Any"


class PAtomic(Pattern):
    """An atomic type leaf: ``Int``, ``Bool``, ``Float`` or ``String``."""

    __slots__ = ("type_name",)

    def __init__(self, type_name: str) -> None:
        if type_name not in ATOMIC_TYPE_NAMES:
            raise PatternError(f"unknown atomic type: {type_name!r}")
        self.type_name = type_name

    def _key(self) -> tuple:
        return ("atomic", self.type_name)

    def __repr__(self) -> str:
        return f"PAtomic({self.type_name!r})"

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + self.type_name


class PConstLeaf(Pattern):
    """A leaf constrained to one constant value (data-level pattern)."""

    __slots__ = ("value",)

    def __init__(self, value: Atom) -> None:
        self.value = value

    def _key(self) -> tuple:
        return ("const", type(self.value).__name__, self.value)

    def __repr__(self) -> str:
        return f"PConstLeaf({self.value!r})"

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + repr(self.value)


class PNode(Pattern):
    """An element pattern: a label plus an ordered child-pattern sequence.

    The child sequence is interpreted as a regular expression over
    patterns: each item matches one child, except :class:`PStar` items
    which match zero or more consecutive children.
    """

    __slots__ = ("label", "children", "collection")

    def __init__(
        self,
        label: str,
        children: Sequence[Pattern] = (),
        collection: Optional[str] = None,
    ) -> None:
        self.label = label
        self.children: Tuple[Pattern, ...] = tuple(children)
        self.collection = collection

    @property
    def label_is_wildcard(self) -> bool:
        """``True`` when the label is the ``Symbol`` wildcard."""
        return self.label == SYMBOL

    def children_patterns(self) -> Tuple[Pattern, ...]:
        return self.children

    def _key(self) -> tuple:
        return ("node", self.label, self.collection, tuple(c._key() for c in self.children))

    def __repr__(self) -> str:
        return f"PNode({self.label!r}, {len(self.children)} children)"

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        kind = f" ({self.collection})" if self.collection else ""
        lines = [f"{pad}{self.label}{kind}"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


class PStar(Pattern):
    """Zero or more occurrences of the sub-pattern (``*`` in the figures)."""

    __slots__ = ("child",)

    def __init__(self, child: Pattern) -> None:
        self.child = child

    def children_patterns(self) -> Tuple[Pattern, ...]:
        return (self.child,)

    def _key(self) -> tuple:
        return ("star", self.child._key())

    def __repr__(self) -> str:
        return f"PStar({self.child!r})"

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + "*\n" + self.child.pretty(indent + 1)


class PUnion(Pattern):
    """Alternatives: the tree must match one of the branches."""

    __slots__ = ("alternatives",)

    def __init__(self, alternatives: Sequence[Pattern]) -> None:
        if not alternatives:
            raise PatternError("a union pattern needs at least one alternative")
        self.alternatives: Tuple[Pattern, ...] = tuple(alternatives)

    def children_patterns(self) -> Tuple[Pattern, ...]:
        return self.alternatives

    def _key(self) -> tuple:
        return ("union", tuple(a._key() for a in self.alternatives))

    def __repr__(self) -> str:
        return f"PUnion({len(self.alternatives)} alternatives)"

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}union"]
        for alt in self.alternatives:
            lines.append(alt.pretty(indent + 1))
        return "\n".join(lines)


class PRef(Pattern):
    """A reference (``&``) to a named pattern, resolved via a library."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _key(self) -> tuple:
        return ("ref", self.name)

    def __repr__(self) -> str:
        return f"PRef({self.name!r})"

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + f"&{self.name}"


class PatternLibrary:
    """A set of named patterns, supporting recursion through :class:`PRef`.

    Wrappers export one library per source (the *model* in the XML
    interfaces of Section 4); the mediator merges the libraries it imports
    into its catalog.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._patterns: Dict[str, Pattern] = {}

    def define(self, name: str, pattern: Pattern) -> None:
        """Register *pattern* under *name* (redefinition is an error)."""
        if name in self._patterns:
            raise PatternError(f"pattern {name!r} already defined")
        self._patterns[name] = pattern

    def resolve(self, name: str) -> Pattern:
        """Return the pattern registered under *name*."""
        try:
            return self._patterns[name]
        except KeyError:
            raise PatternError(f"unknown pattern: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._patterns

    def names(self) -> Tuple[str, ...]:
        """All registered names, in definition order."""
        return tuple(self._patterns)

    def items(self):
        """Iterate over ``(name, pattern)`` pairs in definition order."""
        return self._patterns.items()

    def merged_with(self, other: "PatternLibrary") -> "PatternLibrary":
        """Return a new library containing both sets of definitions.

        Name clashes are resolved in favour of ``self`` unless the
        definitions differ, in which case the clash is an error.
        """
        merged = PatternLibrary(name=self.name or other.name)
        for name, pattern in self._patterns.items():
            merged._patterns[name] = pattern
        for name, pattern in other._patterns.items():
            existing = merged._patterns.get(name)
            if existing is None:
                merged._patterns[name] = pattern
            elif existing != pattern:
                raise PatternError(f"conflicting definitions for pattern {name!r}")
        return merged

    def check_references(self) -> None:
        """Raise :class:`PatternError` if any :class:`PRef` is dangling."""
        for name, pattern in self._patterns.items():
            for sub in pattern.walk():
                if isinstance(sub, PRef) and sub.name not in self._patterns:
                    raise PatternError(
                        f"pattern {name!r} references unknown pattern {sub.name!r}"
                    )


# ---------------------------------------------------------------------------
# The YAT and ODMG model-level libraries of Figure 3
# ---------------------------------------------------------------------------

def yat_model_library() -> PatternLibrary:
    """The almighty YAT (meta)model: every tree instantiates ``Yat``."""
    lib = PatternLibrary("yat")
    lib.define("Yat", PAny())
    return lib


def odmg_model_library() -> PatternLibrary:
    """The ODMG model of Figure 3 (left): class / type patterns.

    An ODMG ``Type`` is an atom, a tuple of named attributes, a collection
    or a reference to a ``Class``; a ``Class`` wraps a name and a type.
    """
    lib = PatternLibrary("odmg")
    type_pattern = PUnion(
        [
            PAtomic("Int"),
            PAtomic("Bool"),
            PAtomic("Float"),
            PAtomic("String"),
            PNode("tuple", [PStar(PNode(SYMBOL, [PRef("Type")]))], collection="set"),
            PNode("set", [PStar(PRef("Type"))], collection="set"),
            PNode("bag", [PStar(PRef("Type"))], collection="bag"),
            PNode("list", [PStar(PRef("Type"))], collection="list"),
            PNode("array", [PStar(PRef("Type"))], collection="array"),
            PRef("Class"),
        ]
    )
    lib.define("Type", type_pattern)
    lib.define("Class", PNode("class", [PNode(SYMBOL, [PRef("Type")])]))
    return lib
