"""XML (de)serialization of YAT data trees and type patterns.

"For interoperability reasons, wrappers and mediators communicate data,
structures and operations in XML" (paper, Section 2).  This module defines
that wire format:

Data trees (:class:`~repro.model.trees.DataNode`)
    One XML element per node.  Reserved attributes: ``id`` (node
    identifier), ``col`` (collection kind), ``ref`` (reference target) and
    ``type`` (atomic type of a leaf).  Example::

        <work><title type="String">Nympheas</title>...</work>

Type patterns (:class:`~repro.model.patterns.Pattern`)
    The element vocabulary of Figure 6: ``<node label=...>``,
    ``<leaf label="Int"/>``, ``<star>``, ``<union>``, ``<ref pattern=.../>``,
    ``<any/>`` and ``<const type=...>``.

All data crossing a wrapper boundary goes through these functions, so the
serialized byte counts measured by the benchmarks reflect real conversion
work, as in the paper's argument about conversion overhead.
"""

from __future__ import annotations

import base64
import re
import xml.etree.ElementTree as ET
from typing import Optional, Tuple

from repro.errors import XmlFormatError
from repro.model.patterns import (
    PAny,
    PAtomic,
    PConstLeaf,
    PNode,
    PRef,
    PStar,
    PUnion,
    Pattern,
)
from repro.model.trees import DataNode
from repro.model.values import atom_type_name, parse_atom

_RESERVED_ATTRS = ("id", "col", "ref", "type")


# ---------------------------------------------------------------------------
# Data trees
# ---------------------------------------------------------------------------

def tree_to_element(node: DataNode) -> ET.Element:
    """Convert a data tree to an ``xml.etree`` element."""
    element = ET.Element(node.label)
    if node.ident is not None:
        element.set("id", node.ident)
    if node.collection is not None:
        element.set("col", node.collection)
    if node.is_reference:
        element.set("ref", node.ref_target)
        return element
    if node.is_atom_leaf:
        element.set("type", atom_type_name(node.atom))
        text, encoding = encode_atom_text(node.atom)
        if encoding is not None:
            element.set("enc", encoding)
        element.text = text
        return element
    for child in node.children:
        element.append(tree_to_element(child))
    return element


def tree_to_xml(node: DataNode) -> str:
    """Serialize a data tree to an XML string."""
    return ET.tostring(tree_to_element(node), encoding="unicode")


def element_to_tree(element: ET.Element) -> DataNode:
    """Parse an ``xml.etree`` element back into a data tree."""
    ident = element.get("id")
    collection = element.get("col")
    ref_target = element.get("ref")
    if ref_target is not None:
        return DataNode(element.tag, ident=ident, ref_target=ref_target)
    type_name = element.get("type")
    if type_name is not None:
        text = decode_atom_text(element.text or "", element.get("enc"))
        try:
            atom = parse_atom(type_name, text)
        except ValueError as exc:
            raise XmlFormatError(f"bad atom in <{element.tag}>: {exc}") from exc
        return DataNode(element.tag, atom=atom, ident=ident)
    children = [element_to_tree(child) for child in element]
    if not children and element.text and element.text.strip():
        # Untyped leaf text: keep it as a string atom.
        return DataNode(element.tag, atom=element.text.strip(), ident=ident)
    return DataNode(element.tag, children=children, ident=ident, collection=collection)


def xml_to_tree(text: str) -> DataNode:
    """Parse an XML string into a data tree."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}") from exc
    return element_to_tree(element)


def escaped_text_size(text: str) -> int:
    """UTF-8 byte count of *text* as XML character data.

    Mirrors ``xml.etree``'s ``_escape_cdata``: ``&`` becomes ``&amp;``
    (+4 bytes), ``<``/``>`` become ``&lt;``/``&gt;`` (+3 bytes each).
    """
    return (
        len(text.encode("utf-8"))
        + 4 * text.count("&")
        + 3 * text.count("<")
        + 3 * text.count(">")
    )


def escaped_attr_size(value: str) -> int:
    """UTF-8 byte count of *value* as an XML attribute value.

    Mirrors ``xml.etree``'s ``_escape_attrib``: on top of the character
    data escapes, ``"`` becomes ``&quot;`` (+5) and bare ``\\r``/``\\n``/
    ``\\t`` become character references (+4 each).
    """
    return (
        len(value.encode("utf-8"))
        + 4 * value.count("&")
        + 3 * value.count("<")
        + 3 * value.count(">")
        + 5 * value.count('"')
        + 4 * value.count("\r")
        + 4 * value.count("\n")
        + 4 * value.count("\t")
    )


def element_size(tag: str, attrs, content_size: Optional[int]) -> int:
    """Serialized byte size of one element.

    *attrs* is an iterable of ``(name, value)`` pairs; *content_size* is
    the total byte size of the element's serialized content, or ``None``
    for the short empty-element form (``<tag />``), matching
    ``ET.tostring``'s behavior when an element has no text and no
    children.
    """
    tag_bytes = len(tag.encode("utf-8"))
    size = 1 + tag_bytes  # "<tag"
    for name, value in attrs:
        # ' name="value"'
        size += 2 + len(name.encode("utf-8")) + 2 + escaped_attr_size(value)
    if content_size is None:
        return size + 3  # " />"
    return size + 1 + content_size + 2 + tag_bytes + 1  # ">" ... "</tag>"


def serialized_size(node: DataNode) -> int:
    """Number of UTF-8 bytes of the tree's XML serialization.

    This is the transfer cost the mediator pays when the tree crosses a
    wrapper boundary; the execution statistics aggregate it.  Computed
    arithmetically — without materializing the XML string — but kept
    byte-for-byte consistent with ``len(tree_to_xml(node).encode())``
    (the test suite checks the two against each other).  The size is
    cached on the (immutable) node, so shared trees — ident-index
    exports, pushed-result cells — are measured once, not once per
    transfer-statistics record.
    """
    cached = node._ssize
    if cached is not None:
        return cached
    size = _compute_serialized_size(node)
    node._ssize = size
    return size


def _compute_serialized_size(node: DataNode) -> int:
    attrs = []
    if node.ident is not None:
        attrs.append(("id", node.ident))
    if node.collection is not None:
        attrs.append(("col", node.collection))
    if node.ref_target is not None:
        attrs.append(("ref", node.ref_target))
        return element_size(node.label, attrs, None)
    if node.atom is not None:
        attrs.append(("type", atom_type_name(node.atom)))
        text, encoding = encode_atom_text(node.atom)
        if encoding is not None:
            attrs.append(("enc", encoding))
        content = escaped_text_size(text) if text else None
        return element_size(node.label, attrs, content)
    if not node.children:
        return element_size(node.label, attrs, None)
    content = 0
    for child in node.children:
        content += serialized_size(child)
    return element_size(node.label, attrs, content)


# Characters XML 1.0 cannot carry verbatim (or that parsers normalize,
# like a bare carriage return); strings containing any of them travel
# base64-encoded with an enc="b64" marker.
_XML_UNSAFE = re.compile("[\x00-\x08\x0b\x0c\x0e-\x1f\x7f\r]")


def _atom_to_text(atom: object) -> str:
    if isinstance(atom, bool):
        return "true" if atom else "false"
    return str(atom)


def encode_atom_text(atom: object) -> Tuple[str, Optional[str]]:
    """``(text, encoding)`` for an atom: encoding is ``"b64"`` when the
    plain text would not survive an XML round trip."""
    text = _atom_to_text(atom)
    if isinstance(atom, str) and _XML_UNSAFE.search(text):
        return base64.b64encode(text.encode("utf-8")).decode("ascii"), "b64"
    return text, None


def decode_atom_text(text: str, encoding: Optional[str]) -> str:
    """Inverse of :func:`encode_atom_text` for string payloads."""
    if encoding is None:
        return text
    if encoding == "b64":
        return base64.b64decode(text.encode("ascii")).decode("utf-8")
    raise XmlFormatError(f"unknown text encoding: {encoding!r}")


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

def pattern_to_element(pattern: Pattern) -> ET.Element:
    """Convert a type pattern to its Figure-6 XML form."""
    if isinstance(pattern, PAny):
        return ET.Element("any")
    if isinstance(pattern, PAtomic):
        element = ET.Element("leaf")
        element.set("label", pattern.type_name)
        return element
    if isinstance(pattern, PConstLeaf):
        element = ET.Element("const")
        element.set("type", atom_type_name(pattern.value))
        element.text = _atom_to_text(pattern.value)
        return element
    if isinstance(pattern, PRef):
        element = ET.Element("ref")
        element.set("pattern", pattern.name)
        return element
    if isinstance(pattern, PStar):
        element = ET.Element("star")
        element.append(pattern_to_element(pattern.child))
        return element
    if isinstance(pattern, PUnion):
        element = ET.Element("union")
        for alternative in pattern.alternatives:
            element.append(pattern_to_element(alternative))
        return element
    if isinstance(pattern, PNode):
        element = ET.Element("node")
        element.set("label", pattern.label)
        if pattern.collection is not None:
            element.set("col", pattern.collection)
        for child in pattern.children:
            element.append(pattern_to_element(child))
        return element
    raise XmlFormatError(f"cannot serialize pattern: {pattern!r}")


def pattern_to_xml(pattern: Pattern) -> str:
    """Serialize a type pattern to an XML string."""
    return ET.tostring(pattern_to_element(pattern), encoding="unicode")


def element_to_pattern(element: ET.Element) -> Pattern:
    """Parse a Figure-6 style XML element into a type pattern."""
    tag = element.tag
    if tag == "any":
        return PAny()
    if tag == "leaf":
        label = element.get("label")
        if label is None:
            raise XmlFormatError("<leaf> requires a label attribute")
        return PAtomic(label)
    if tag == "const":
        type_name = element.get("type", "String")
        try:
            return PConstLeaf(parse_atom(type_name, element.text or ""))
        except ValueError as exc:
            raise XmlFormatError(f"bad constant: {exc}") from exc
    if tag == "ref":
        name = element.get("pattern")
        if name is None:
            raise XmlFormatError("<ref> requires a pattern attribute")
        return PRef(name)
    if tag == "star":
        children = list(element)
        if len(children) != 1:
            raise XmlFormatError("<star> requires exactly one child")
        return PStar(element_to_pattern(children[0]))
    if tag == "union":
        return PUnion([element_to_pattern(child) for child in element])
    if tag == "node":
        label = element.get("label")
        if label is None:
            raise XmlFormatError("<node> requires a label attribute")
        return PNode(
            label,
            [element_to_pattern(child) for child in element],
            collection=element.get("col"),
        )
    raise XmlFormatError(f"unknown pattern element: <{tag}>")


def xml_to_pattern(text: str) -> Pattern:
    """Parse an XML string into a type pattern."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}") from exc
    return element_to_pattern(element)
