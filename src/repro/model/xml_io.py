"""XML (de)serialization of YAT data trees and type patterns.

"For interoperability reasons, wrappers and mediators communicate data,
structures and operations in XML" (paper, Section 2).  This module defines
that wire format:

Data trees (:class:`~repro.model.trees.DataNode`)
    One XML element per node.  Reserved attributes: ``id`` (node
    identifier), ``col`` (collection kind), ``ref`` (reference target) and
    ``type`` (atomic type of a leaf).  Example::

        <work><title type="String">Nympheas</title>...</work>

Type patterns (:class:`~repro.model.patterns.Pattern`)
    The element vocabulary of Figure 6: ``<node label=...>``,
    ``<leaf label="Int"/>``, ``<star>``, ``<union>``, ``<ref pattern=.../>``,
    ``<any/>`` and ``<const type=...>``.

All data crossing a wrapper boundary goes through these functions, so the
serialized byte counts measured by the benchmarks reflect real conversion
work, as in the paper's argument about conversion overhead.
"""

from __future__ import annotations

import base64
import re
import xml.etree.ElementTree as ET
from typing import Optional, Tuple

from repro.errors import XmlFormatError
from repro.model.patterns import (
    PAny,
    PAtomic,
    PConstLeaf,
    PNode,
    PRef,
    PStar,
    PUnion,
    Pattern,
)
from repro.model.trees import DataNode
from repro.model.values import atom_type_name, parse_atom

_RESERVED_ATTRS = ("id", "col", "ref", "type")


# ---------------------------------------------------------------------------
# Data trees
# ---------------------------------------------------------------------------

def tree_to_element(node: DataNode) -> ET.Element:
    """Convert a data tree to an ``xml.etree`` element."""
    element = ET.Element(node.label)
    if node.ident is not None:
        element.set("id", node.ident)
    if node.collection is not None:
        element.set("col", node.collection)
    if node.is_reference:
        element.set("ref", node.ref_target)
        return element
    if node.is_atom_leaf:
        element.set("type", atom_type_name(node.atom))
        text, encoding = encode_atom_text(node.atom)
        if encoding is not None:
            element.set("enc", encoding)
        element.text = text
        return element
    for child in node.children:
        element.append(tree_to_element(child))
    return element


def tree_to_xml(node: DataNode) -> str:
    """Serialize a data tree to an XML string."""
    return ET.tostring(tree_to_element(node), encoding="unicode")


def element_to_tree(element: ET.Element) -> DataNode:
    """Parse an ``xml.etree`` element back into a data tree."""
    ident = element.get("id")
    collection = element.get("col")
    ref_target = element.get("ref")
    if ref_target is not None:
        return DataNode(element.tag, ident=ident, ref_target=ref_target)
    type_name = element.get("type")
    if type_name is not None:
        text = decode_atom_text(element.text or "", element.get("enc"))
        try:
            atom = parse_atom(type_name, text)
        except ValueError as exc:
            raise XmlFormatError(f"bad atom in <{element.tag}>: {exc}") from exc
        return DataNode(element.tag, atom=atom, ident=ident)
    children = [element_to_tree(child) for child in element]
    if not children and element.text and element.text.strip():
        # Untyped leaf text: keep it as a string atom.
        return DataNode(element.tag, atom=element.text.strip(), ident=ident)
    return DataNode(element.tag, children=children, ident=ident, collection=collection)


def xml_to_tree(text: str) -> DataNode:
    """Parse an XML string into a data tree."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}") from exc
    return element_to_tree(element)


def serialized_size(node: DataNode) -> int:
    """Number of UTF-8 bytes of the tree's XML serialization.

    This is the transfer cost the mediator pays when the tree crosses a
    wrapper boundary; the execution statistics aggregate it.
    """
    return len(tree_to_xml(node).encode("utf-8"))


# Characters XML 1.0 cannot carry verbatim (or that parsers normalize,
# like a bare carriage return); strings containing any of them travel
# base64-encoded with an enc="b64" marker.
_XML_UNSAFE = re.compile("[\x00-\x08\x0b\x0c\x0e-\x1f\x7f\r]")


def _atom_to_text(atom: object) -> str:
    if isinstance(atom, bool):
        return "true" if atom else "false"
    return str(atom)


def encode_atom_text(atom: object) -> Tuple[str, Optional[str]]:
    """``(text, encoding)`` for an atom: encoding is ``"b64"`` when the
    plain text would not survive an XML round trip."""
    text = _atom_to_text(atom)
    if isinstance(atom, str) and _XML_UNSAFE.search(text):
        return base64.b64encode(text.encode("utf-8")).decode("ascii"), "b64"
    return text, None


def decode_atom_text(text: str, encoding: Optional[str]) -> str:
    """Inverse of :func:`encode_atom_text` for string payloads."""
    if encoding is None:
        return text
    if encoding == "b64":
        return base64.b64decode(text.encode("ascii")).decode("utf-8")
    raise XmlFormatError(f"unknown text encoding: {encoding!r}")


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

def pattern_to_element(pattern: Pattern) -> ET.Element:
    """Convert a type pattern to its Figure-6 XML form."""
    if isinstance(pattern, PAny):
        return ET.Element("any")
    if isinstance(pattern, PAtomic):
        element = ET.Element("leaf")
        element.set("label", pattern.type_name)
        return element
    if isinstance(pattern, PConstLeaf):
        element = ET.Element("const")
        element.set("type", atom_type_name(pattern.value))
        element.text = _atom_to_text(pattern.value)
        return element
    if isinstance(pattern, PRef):
        element = ET.Element("ref")
        element.set("pattern", pattern.name)
        return element
    if isinstance(pattern, PStar):
        element = ET.Element("star")
        element.append(pattern_to_element(pattern.child))
        return element
    if isinstance(pattern, PUnion):
        element = ET.Element("union")
        for alternative in pattern.alternatives:
            element.append(pattern_to_element(alternative))
        return element
    if isinstance(pattern, PNode):
        element = ET.Element("node")
        element.set("label", pattern.label)
        if pattern.collection is not None:
            element.set("col", pattern.collection)
        for child in pattern.children:
            element.append(pattern_to_element(child))
        return element
    raise XmlFormatError(f"cannot serialize pattern: {pattern!r}")


def pattern_to_xml(pattern: Pattern) -> str:
    """Serialize a type pattern to an XML string."""
    return ET.tostring(pattern_to_element(pattern), encoding="unicode")


def element_to_pattern(element: ET.Element) -> Pattern:
    """Parse a Figure-6 style XML element into a type pattern."""
    tag = element.tag
    if tag == "any":
        return PAny()
    if tag == "leaf":
        label = element.get("label")
        if label is None:
            raise XmlFormatError("<leaf> requires a label attribute")
        return PAtomic(label)
    if tag == "const":
        type_name = element.get("type", "String")
        try:
            return PConstLeaf(parse_atom(type_name, element.text or ""))
        except ValueError as exc:
            raise XmlFormatError(f"bad constant: {exc}") from exc
    if tag == "ref":
        name = element.get("pattern")
        if name is None:
            raise XmlFormatError("<ref> requires a pattern attribute")
        return PRef(name)
    if tag == "star":
        children = list(element)
        if len(children) != 1:
            raise XmlFormatError("<star> requires exactly one child")
        return PStar(element_to_pattern(children[0]))
    if tag == "union":
        return PUnion([element_to_pattern(child) for child in element])
    if tag == "node":
        label = element.get("label")
        if label is None:
            raise XmlFormatError("<node> requires a label attribute")
        return PNode(
            label,
            [element_to_pattern(child) for child in element],
            collection=element.get("col"),
        )
    raise XmlFormatError(f"unknown pattern element: <{tag}>")


def xml_to_pattern(text: str) -> Pattern:
    """Parse an XML string into a type pattern."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}") from exc
    return element_to_pattern(element)
