"""Filters: trees with variables, the arguments of the ``Bind`` operator.

A filter (paper, Sections 2 and 3.1) is a tree whose nodes carry distinct
variables.  When a data tree is an instance of a filter, the match induces
a mapping from variables to node values; ``Bind`` collects those mappings
into a :class:`~repro.core.algebra.tab.Tab`.

Filter vocabulary
-----------------

=====================  ======================================================
:class:`FElem`         an element with a label (concrete, a
                       :class:`LabelVar`, or a :class:`LabelRegex`), child
                       filters, and optionally a tree variable binding the
                       whole matched subtree
:class:`FVar`          a leaf filter binding the matched subtree (the atom
                       value when the subtree is an atom leaf)
:class:`FConst`        a leaf filter matching one constant value
:class:`FStar`         iteration over matching children — one binding
                       alternative per match; zero matches fail the
                       element (the star is equivalent to a DJoin over the
                       nested collection, Figure 7)
:class:`FRest`         binds the *collection* of sibling children matched by
                       no other sibling filter item — ``*($fields)`` in
                       Figure 4, capturing the optional elements of a work
:class:`FDescend`      vertical navigation: the child filter may match at
                       any depth below the current node (regular path
                       expressions collapse to this plus concrete steps)
=====================  ======================================================

Matching semantics (implemented in :mod:`repro.core.algebra.bind`):

* plain child filters are **mandatory**: a node matches only if every
  plain child filter matches at least one of its children;
* each distinct way of matching the children yields one binding row
  (cartesian product across child filters);
* :class:`FStar` children iterate over every matching child; zero
  matches fail the element, like the DJoin a star is equivalent to;
* :class:`FRest` binds every child not matched by any sibling item —
  this is how optional elements are captured (Figure 4's ``$fields``).
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import BindError
from repro.model.patterns import (
    PAny,
    PConstLeaf,
    PNode,
    PStar,
    Pattern,
    SYMBOL,
)
from repro.model.values import Atom


class MissingValue:
    """Singleton marker bound by optional filter items that matched nothing."""

    _instance: Optional["MissingValue"] = None

    def __new__(cls) -> "MissingValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


#: The value bound by an optional (starred) filter item that matched nothing.
MISSING = MissingValue()


class LabelVar:
    """A label variable: matches any label and binds it (e.g. ``$l: $v``)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"LabelVar({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelVar) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("labelvar", self.name))


class LabelRegex:
    """A regular expression over labels (horizontal navigation)."""

    __slots__ = ("pattern", "_compiled")

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self._compiled = re.compile(pattern)

    def matches(self, label: str) -> bool:
        """Full-string match of *label* against the regular expression."""
        return self._compiled.fullmatch(label) is not None

    def __repr__(self) -> str:
        return f"LabelRegex({self.pattern!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelRegex) and other.pattern == self.pattern

    def __hash__(self) -> int:
        return hash(("labelregex", self.pattern))


LabelSpec = Union[str, LabelVar, LabelRegex]


class Filter:
    """Base class of filter nodes."""

    __slots__ = ()

    def variables(self) -> Tuple[str, ...]:
        """All variables bound by this filter, in document order."""
        seen: List[str] = []
        for node in self.walk():
            for var in node._own_variables():
                if var in seen:
                    raise BindError(f"variable {var!r} bound twice in one filter")
                seen.append(var)
        return tuple(seen)

    def _own_variables(self) -> Tuple[str, ...]:
        return ()

    def children_filters(self) -> Tuple["Filter", ...]:
        return ()

    def walk(self) -> Iterator["Filter"]:
        """Yield this filter and every sub-filter, pre-order."""
        yield self
        for child in self.children_filters():
            yield from child.walk()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Filter):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def to_pattern(self) -> Pattern:
        """Erase variables: the type pattern this filter requires of its data."""
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


class FVar(Filter):
    """Bind the whole matched subtree (atom value for atom leaves)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _own_variables(self) -> Tuple[str, ...]:
        return (self.name,)

    def _key(self) -> tuple:
        return ("fvar", self.name)

    def to_pattern(self) -> Pattern:
        return PAny()

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + f"${self.name}"


class FConst(Filter):
    """Match a leaf holding exactly this constant."""

    __slots__ = ("value",)

    def __init__(self, value: Atom) -> None:
        self.value = value

    def _key(self) -> tuple:
        return ("fconst", type(self.value).__name__, self.value)

    def to_pattern(self) -> Pattern:
        return PConstLeaf(self.value)

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + repr(self.value)


class FElem(Filter):
    """An element filter: label spec, child filters, optional tree variable."""

    __slots__ = ("label", "children", "var")

    def __init__(
        self,
        label: LabelSpec,
        children: Sequence[Filter] = (),
        var: Optional[str] = None,
    ) -> None:
        self.label = label
        self.children: Tuple[Filter, ...] = tuple(children)
        self.var = var
        rests = [c for c in self.children if isinstance(c, FRest)]
        if len(rests) > 1:
            raise BindError("at most one rest (*) item per element filter")

    def _own_variables(self) -> Tuple[str, ...]:
        names = []
        if isinstance(self.label, LabelVar):
            names.append(self.label.name)
        if self.var is not None:
            names.append(self.var)
        return tuple(names)

    def children_filters(self) -> Tuple[Filter, ...]:
        return self.children

    def label_matches(self, label: str) -> bool:
        """Does *label* satisfy this filter's label specification?"""
        if isinstance(self.label, str):
            return self.label == label
        if isinstance(self.label, LabelVar):
            return True
        return self.label.matches(label)

    def _key(self) -> tuple:
        return ("felem", self.label, self.var, tuple(c._key() for c in self.children))

    def to_pattern(self) -> Pattern:
        label = self.label if isinstance(self.label, str) else SYMBOL
        return PNode(label, [child.to_pattern() for child in self.children])

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        label = self.label if isinstance(self.label, str) else repr(self.label)
        var = f" ${self.var}" if self.var else ""
        if not self.children:
            return f"{pad}{label}{var}"
        lines = [f"{pad}{label}{var} ["]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        lines.append(f"{pad}]")
        return "\n".join(lines)


class FStar(Filter):
    """Iteration: one binding per matching child; zero matches fail."""

    __slots__ = ("child",)

    def __init__(self, child: Filter) -> None:
        self.child = child

    def children_filters(self) -> Tuple[Filter, ...]:
        return (self.child,)

    def _key(self) -> tuple:
        return ("fstar", self.child._key())

    def to_pattern(self) -> Pattern:
        return PStar(self.child.to_pattern())

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + "*\n" + self.child.pretty(indent + 1)


class FRest(Filter):
    """Bind the collection of sibling children no other item matched."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _own_variables(self) -> Tuple[str, ...]:
        return (self.name,)

    def _key(self) -> tuple:
        return ("frest", self.name)

    def to_pattern(self) -> Pattern:
        return PStar(PAny())

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + f"*(${self.name})"


class FDescend(Filter):
    """Vertical navigation: match the child filter at any depth below."""

    __slots__ = ("child",)

    def __init__(self, child: Filter) -> None:
        self.child = child

    def children_filters(self) -> Tuple[Filter, ...]:
        return (self.child,)

    def _key(self) -> tuple:
        return ("fdescend", self.child._key())

    def to_pattern(self) -> Pattern:
        # Descendant steps erase to the universal pattern: the type of the
        # intermediate structure is unconstrained.
        return PAny()

    def pretty(self, indent: int = 0) -> str:
        return "  " * indent + "descend\n" + self.child.pretty(indent + 1)


# ---------------------------------------------------------------------------
# Convenience constructors (used heavily by tests and the YATL translator)
# ---------------------------------------------------------------------------

def felem(label: LabelSpec, *children: Filter, var: Optional[str] = None) -> FElem:
    """Shorthand for :class:`FElem`."""
    return FElem(label, children, var=var)


def fpath(*steps: LabelSpec, leaf: Optional[Filter] = None) -> Filter:
    """Build a vertical path ``a.b.c`` as nested single-child elements.

    >>> fpath("doc", "work", leaf=FVar("t")).pretty()
    'doc [\\n  work [\\n    $t\\n  ]\\n]'
    """
    if not steps:
        if leaf is None:
            raise BindError("fpath needs at least one step or a leaf")
        return leaf
    head, *rest = steps
    inner = fpath(*rest, leaf=leaf) if (rest or leaf is not None) else None
    children = (inner,) if inner is not None else ()
    return FElem(head, children)
