"""Atomic values and collection kinds of the YAT data model.

The paper's type system (Section 2, Figure 3) builds trees out of atomic
values (``Int``, ``Bool``, ``Float``, ``String``), ordered or unordered
collections (``set``, ``bag``, ``list``, ``array``) and references.  This
module defines the Python representation of atoms and the vocabulary of
collection kinds shared by the data level and the pattern level.
"""

from __future__ import annotations

from typing import Union

#: Python types accepted as YAT atoms.  ``bool`` must be checked before
#: ``int`` wherever the distinction matters because ``bool`` is a subclass
#: of ``int`` in Python.
Atom = Union[int, float, str, bool]

#: Names of the atomic types, as they appear in exported XML interfaces.
ATOMIC_TYPE_NAMES = ("Int", "Bool", "Float", "String")

#: Collection kinds of the ODMG-flavoured type system.  ``set`` ignores
#: order and duplicates, ``bag`` ignores order only, ``list`` and ``array``
#: are ordered (the paper treats both as sequences).
COLLECTION_KINDS = ("set", "bag", "list", "array")

#: Collection kinds whose element order is irrelevant for value equality.
UNORDERED_KINDS = frozenset({"set", "bag"})


def is_atom(value: object) -> bool:
    """Return ``True`` when *value* is a YAT atom (int, float, str or bool)."""
    return isinstance(value, (bool, int, float, str))


def atom_type_name(value: Atom) -> str:
    """Return the YAT atomic type name (``Int``, ``Bool``, ...) of *value*.

    >>> atom_type_name(3)
    'Int'
    >>> atom_type_name(True)
    'Bool'
    """
    if isinstance(value, bool):
        return "Bool"
    if isinstance(value, int):
        return "Int"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "String"
    raise TypeError(f"not a YAT atom: {value!r}")


def parse_atom(type_name: str, text: str) -> Atom:
    """Parse *text* into an atom of the named YAT type.

    Used when deserializing XML, where all content arrives as text.

    >>> parse_atom("Int", "42")
    42
    >>> parse_atom("Bool", "true")
    True
    """
    if type_name == "Int":
        return int(text)
    if type_name == "Float":
        return float(text)
    if type_name == "Bool":
        lowered = text.strip().lower()
        if lowered in ("true", "1"):
            return True
        if lowered in ("false", "0"):
            return False
        raise ValueError(f"not a boolean literal: {text!r}")
    if type_name == "String":
        return text
    raise ValueError(f"unknown atomic type: {type_name!r}")


def coerce_atom(text: str) -> Atom:
    """Guess the most specific atom for *text* (used for untyped XML data).

    Integers win over floats, floats over booleans, and everything else is
    a string.  Whitespace-only text stays a string.

    >>> coerce_atom("1897")
    1897
    >>> coerce_atom("21 x 61")
    '21 x 61'
    """
    stripped = text.strip()
    if not stripped:
        return text
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    if stripped.lower() == "true":
        return True
    if stripped.lower() == "false":
        return False
    return text
