"""XML wire format for source interfaces (the Figure 6 document).

Wrappers export their capabilities to the mediator as XML; this codec
implements both directions.  The element vocabulary follows Figure 6:

.. code-block:: xml

    <interface name="o2artifact">
      <structure name="artifacts_schema"> ... patterns ... </structure>
      <document name="artifacts" model="artifacts_schema" pattern="Extent"/>
      <fmodel name="o2fmodel">
        <fpattern name="Fclass">
          <node label="class" bind="tree">
            <node label="Symbol" bind="none" inst="ground">
              <value model="o2fmodel" pattern="Ftype"/></node></node>
        </fpattern>
        ...
      </fmodel>
      <operation name="bind" kind="algebra">
        <input>
          <value model="o2model" pattern="Type"/>
          <filter model="o2fmodel" pattern="Ftype"/></input>
        <output><value model="yat" pattern="Tab"/></output>
      </operation>
      <operation name="select" kind="algebra"></operation>
      <equivalence kind="selection_implication"
                   mediator="=" source="contains" argtype="String"/>
    </interface>

Both ``<value>`` and ``<ref>`` are accepted for pattern references on
input (the paper uses both spellings); ``<value>`` is emitted.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.errors import XmlFormatError
from repro.capabilities.equivalences import Equivalence, SelectionImplication
from repro.capabilities.fmodel import FModel, FPat
from repro.capabilities.interface import ArgSpec, OperationDecl, SourceInterface
from repro.model.patterns import PatternLibrary
from repro.model.xml_io import element_to_pattern, pattern_to_element


# ---------------------------------------------------------------------------
# Fpatterns
# ---------------------------------------------------------------------------

def fpat_to_element(fpat: FPat) -> ET.Element:
    """Serialize one Fpattern node."""
    if fpat.kind == "ref":
        element = ET.Element("value")
        model, pattern = fpat.ref
        element.set("model", model)
        element.set("pattern", pattern)
    elif fpat.kind == "node":
        element = ET.Element("node")
        element.set("label", fpat.label or "")
        if fpat.collection is not None:
            element.set("col", fpat.collection)
    elif fpat.kind == "leaf":
        element = ET.Element("leaf")
        element.set("label", fpat.label or "")
    elif fpat.kind == "star":
        element = ET.Element("star")
    elif fpat.kind == "union":
        element = ET.Element("union")
    elif fpat.kind == "any":
        element = ET.Element("any")
    else:
        raise XmlFormatError(f"cannot serialize Fpattern kind {fpat.kind!r}")
    if fpat.bind != "any":
        element.set("bind", fpat.bind)
    if fpat.inst != "any":
        element.set("inst", fpat.inst)
    if fpat.descend != "none":
        element.set("descend", fpat.descend)
    for child in fpat.children:
        element.append(fpat_to_element(child))
    return element


def element_to_fpat(element: ET.Element) -> FPat:
    """Parse one Fpattern node."""
    bind = element.get("bind", "any")
    inst = element.get("inst", "any")
    descend = element.get("descend", "none")
    children = tuple(element_to_fpat(child) for child in element)
    tag = element.tag
    if tag in ("value", "ref"):
        pattern = element.get("pattern")
        if pattern is None:
            raise XmlFormatError(f"<{tag}> requires a pattern attribute")
        model = element.get("model", "")
        return FPat("ref", ref=(model, pattern), bind=bind, inst=inst,
                    descend=descend)
    if tag == "node":
        label = element.get("label")
        if label is None:
            raise XmlFormatError("<node> requires a label attribute")
        return FPat(
            "node",
            label=label,
            children=children,
            bind=bind,
            inst=inst,
            collection=element.get("col"),
            descend=descend,
        )
    if tag == "leaf":
        label = element.get("label")
        if label is None:
            raise XmlFormatError("<leaf> requires a label attribute")
        return FPat("leaf", label=label, bind=bind, inst=inst, descend=descend)
    if tag == "star":
        if len(children) != 1:
            raise XmlFormatError("<star> requires exactly one child")
        return FPat("star", children=children, bind=bind, inst=inst,
                    descend=descend)
    if tag == "union":
        return FPat("union", children=children, bind=bind, inst=inst,
                    descend=descend)
    if tag == "any":
        return FPat("any", bind=bind, inst=inst, descend=descend)
    raise XmlFormatError(f"unknown Fpattern element <{tag}>")


# ---------------------------------------------------------------------------
# Interfaces
# ---------------------------------------------------------------------------

def interface_to_element(interface: SourceInterface) -> ET.Element:
    """Serialize a full source interface."""
    root = ET.Element("interface")
    root.set("name", interface.name)
    for library in interface.structures.values():
        structure_el = ET.SubElement(root, "structure")
        structure_el.set("name", library.name)
        for name, pattern in library.items():
            pattern_el = ET.SubElement(structure_el, "pattern")
            pattern_el.set("name", name)
            pattern_el.append(pattern_to_element(pattern))
    for document, (model, pattern) in interface.documents.items():
        document_el = ET.SubElement(root, "document")
        document_el.set("name", document)
        document_el.set("model", model)
        document_el.set("pattern", pattern)
    for fmodel in interface.fmodels.values():
        fmodel_el = ET.SubElement(root, "fmodel")
        fmodel_el.set("name", fmodel.name)
        for name, fpat in fmodel.items():
            fpattern_el = ET.SubElement(fmodel_el, "fpattern")
            fpattern_el.set("name", name)
            fpattern_el.append(fpat_to_element(fpat))
    for operation in interface.operations.values():
        root.append(_operation_to_element(operation))
    for equivalence in interface.equivalences:
        root.append(_equivalence_to_element(equivalence))
    return root


def interface_to_xml(interface: SourceInterface) -> str:
    """Serialize a source interface to an XML string."""
    return ET.tostring(interface_to_element(interface), encoding="unicode")


def element_to_interface(root: ET.Element) -> SourceInterface:
    """Parse a source interface from its XML element."""
    if root.tag != "interface":
        raise XmlFormatError(f"expected <interface>, got <{root.tag}>")
    name = root.get("name")
    if name is None:
        raise XmlFormatError("<interface> requires a name attribute")
    interface = SourceInterface(name)
    for child in root:
        if child.tag == "structure":
            library = PatternLibrary(child.get("name", ""))
            for pattern_el in child:
                if pattern_el.tag != "pattern":
                    raise XmlFormatError("<structure> children must be <pattern>")
                pattern_name = pattern_el.get("name")
                if pattern_name is None:
                    raise XmlFormatError("<pattern> requires a name attribute")
                inner = list(pattern_el)
                if len(inner) != 1:
                    raise XmlFormatError("<pattern> requires exactly one child")
                library.define(pattern_name, element_to_pattern(inner[0]))
            interface.add_structure(library)
        elif child.tag == "document":
            interface.add_document(
                _required(child, "name"),
                _required(child, "model"),
                _required(child, "pattern"),
            )
        elif child.tag == "fmodel":
            fmodel = FModel(_required(child, "name"))
            for fpattern_el in child:
                if fpattern_el.tag != "fpattern":
                    raise XmlFormatError("<fmodel> children must be <fpattern>")
                inner = list(fpattern_el)
                if len(inner) != 1:
                    raise XmlFormatError("<fpattern> requires exactly one child")
                fmodel.define(_required(fpattern_el, "name"), element_to_fpat(inner[0]))
            interface.add_fmodel(fmodel)
        elif child.tag == "operation":
            interface.add_operation(_element_to_operation(child))
        elif child.tag == "equivalence":
            interface.add_equivalence(_element_to_equivalence(child))
        else:
            raise XmlFormatError(f"unknown interface element <{child.tag}>")
    return interface


def xml_to_interface(text: str) -> SourceInterface:
    """Parse a source interface from an XML string."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}") from exc
    return element_to_interface(root)


# ---------------------------------------------------------------------------
# Operations and equivalences
# ---------------------------------------------------------------------------

def _operation_to_element(operation: OperationDecl) -> ET.Element:
    element = ET.Element("operation")
    element.set("name", operation.name)
    element.set("kind", operation.kind)
    if operation.inputs:
        input_el = ET.SubElement(element, "input")
        for spec in operation.inputs:
            input_el.append(_argspec_to_element(spec))
    if operation.output is not None:
        output_el = ET.SubElement(element, "output")
        output_el.append(_argspec_to_element(operation.output))
    return element


def _argspec_to_element(spec: ArgSpec) -> ET.Element:
    if spec.role == "leaf":
        element = ET.Element("leaf")
        element.set("label", spec.leaf_type or "")
        return element
    element = ET.Element("value" if spec.role == "value" else "filter")
    element.set("model", spec.model or "")
    element.set("pattern", spec.pattern or "")
    return element


def _element_to_argspec(element: ET.Element) -> ArgSpec:
    if element.tag == "leaf":
        return ArgSpec.leaf(_required(element, "label"))
    if element.tag == "value":
        return ArgSpec.value(element.get("model", ""), _required(element, "pattern"))
    if element.tag == "filter":
        return ArgSpec.filter(element.get("model", ""), _required(element, "pattern"))
    raise XmlFormatError(f"unknown argument spec element <{element.tag}>")


def _element_to_operation(element: ET.Element) -> OperationDecl:
    name = _required(element, "name")
    kind = element.get("kind", "algebra")
    inputs = []
    output: Optional[ArgSpec] = None
    for child in element:
        if child.tag == "input":
            inputs = [_element_to_argspec(spec) for spec in child]
        elif child.tag == "output":
            specs = [_element_to_argspec(spec) for spec in child]
            if len(specs) != 1:
                raise XmlFormatError("<output> requires exactly one spec")
            output = specs[0]
        else:
            raise XmlFormatError(f"unknown operation element <{child.tag}>")
    return OperationDecl(name, kind, inputs, output)


def _equivalence_to_element(equivalence: Equivalence) -> ET.Element:
    element = ET.Element("equivalence")
    element.set("kind", equivalence.kind)
    if isinstance(equivalence, SelectionImplication):
        element.set("mediator", equivalence.mediator_predicate)
        element.set("source", equivalence.source_predicate)
        if equivalence.argument_type:
            element.set("argtype", equivalence.argument_type)
        if equivalence.field_scoped:
            element.set("scoped", "true")
        return element
    raise XmlFormatError(f"cannot serialize equivalence {equivalence!r}")


def _element_to_equivalence(element: ET.Element) -> Equivalence:
    kind = element.get("kind")
    if kind == "selection_implication":
        return SelectionImplication(
            _required(element, "mediator"),
            _required(element, "source"),
            element.get("argtype"),
            field_scoped=element.get("scoped") == "true",
        )
    raise XmlFormatError(f"unknown equivalence kind {kind!r}")


def _required(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise XmlFormatError(f"<{element.tag}> requires a {attribute} attribute")
    return value
