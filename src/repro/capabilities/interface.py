"""Operational interfaces: the signatures a wrapper exports.

"Wrapping source operations in YAT is performed in two steps that concern
(i) their signature and (ii) their semantics" (paper, Section 4).  This
module covers the signature step: each source exports an *interface*
naming the operations it evaluates (``bind``, ``select``, ``map``,
predicates such as ``eq``, external operations such as ``contains``,
methods such as ``current_price``), each with typed input/output specs.

The semantic step — declared equivalences — lives in
:mod:`repro.capabilities.equivalences`; the admissibility check combining
interface + Fmodel lives in :mod:`repro.capabilities.matcher`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CapabilityError, OperationNotSupportedError
from repro.capabilities.equivalences import Equivalence
from repro.capabilities.fmodel import FModel
from repro.model.patterns import Pattern, PatternLibrary

#: Operation kinds of the interface language.
OPERATION_KINDS = ("algebra", "boolean", "external", "method")


class ArgSpec:
    """One input/output slot of an operation signature.

    ``role`` distinguishes the three spec elements of Figure 6:
    ``value`` (data typed by a model pattern), ``filter`` (a filter typed
    by an Fmodel Fpattern) and ``leaf`` (an atomic type).
    """

    __slots__ = ("role", "model", "pattern", "leaf_type")

    def __init__(
        self,
        role: str,
        model: Optional[str] = None,
        pattern: Optional[str] = None,
        leaf_type: Optional[str] = None,
    ) -> None:
        if role not in ("value", "filter", "leaf"):
            raise CapabilityError(f"unknown argument role: {role!r}")
        if role == "leaf" and leaf_type is None:
            raise CapabilityError("leaf argument spec requires a type name")
        if role in ("value", "filter") and pattern is None:
            raise CapabilityError(f"{role} argument spec requires a pattern name")
        self.role = role
        self.model = model
        self.pattern = pattern
        self.leaf_type = leaf_type

    @classmethod
    def value(cls, model: str, pattern: str) -> "ArgSpec":
        return cls("value", model=model, pattern=pattern)

    @classmethod
    def filter(cls, model: str, pattern: str) -> "ArgSpec":
        return cls("filter", model=model, pattern=pattern)

    @classmethod
    def leaf(cls, type_name: str) -> "ArgSpec":
        return cls("leaf", leaf_type=type_name)

    def __repr__(self) -> str:
        if self.role == "leaf":
            return f"ArgSpec(leaf {self.leaf_type})"
        return f"ArgSpec({self.role} {self.model}:{self.pattern})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArgSpec):
            return NotImplemented
        return (
            self.role == other.role
            and self.model == other.model
            and self.pattern == other.pattern
            and self.leaf_type == other.leaf_type
        )

    def __hash__(self) -> int:
        return hash((self.role, self.model, self.pattern, self.leaf_type))


class OperationDecl:
    """One exported operation: name, kind, and signature.

    Kinds follow the paper: ``algebra`` (an operator of the YAT algebra
    the source can evaluate), ``boolean`` (a predicate usable in pushed
    selections), ``external`` (a source-specific operation such as Wais
    ``contains``), ``method`` (a schema method such as
    ``current_price``).
    """

    __slots__ = ("name", "kind", "inputs", "output")

    def __init__(
        self,
        name: str,
        kind: str,
        inputs: Sequence[ArgSpec] = (),
        output: Optional[ArgSpec] = None,
    ) -> None:
        if kind not in OPERATION_KINDS:
            raise CapabilityError(f"unknown operation kind: {kind!r}")
        self.name = name
        self.kind = kind
        self.inputs = tuple(inputs)
        self.output = output

    def __repr__(self) -> str:
        return f"OperationDecl({self.name!r}, kind={self.kind!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OperationDecl):
            return NotImplemented
        return (
            self.name == other.name
            and self.kind == other.kind
            and self.inputs == other.inputs
            and self.output == other.output
        )

    def __hash__(self) -> int:
        return hash((self.name, self.kind, self.inputs, self.output))


class SourceInterface:
    """Everything a wrapper tells the mediator about one source.

    * ``structures`` — exported structural models (pattern libraries):
      the source schema at whatever genericity the wrapper can offer;
    * ``documents`` — named entry points and the structure pattern of
      their roots;
    * ``fmodels`` — filter restrictions;
    * ``operations`` — the operational interface;
    * ``equivalences`` — declared semantic connections between source
      operations and algebra operations (Section 4.2).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.structures: Dict[str, PatternLibrary] = {}
        self.fmodels: Dict[str, FModel] = {}
        self.operations: Dict[str, OperationDecl] = {}
        self.equivalences: List[Equivalence] = []
        self.documents: Dict[str, Tuple[str, str]] = {}

    # -- construction ---------------------------------------------------------

    def add_structure(self, library: PatternLibrary) -> None:
        if library.name in self.structures:
            raise CapabilityError(f"structure model {library.name!r} already exported")
        self.structures[library.name] = library

    def add_fmodel(self, fmodel: FModel) -> None:
        if fmodel.name in self.fmodels:
            raise CapabilityError(f"Fmodel {fmodel.name!r} already exported")
        self.fmodels[fmodel.name] = fmodel

    def add_operation(self, operation: OperationDecl) -> None:
        if operation.name in self.operations:
            raise CapabilityError(f"operation {operation.name!r} already declared")
        self.operations[operation.name] = operation

    def add_equivalence(self, equivalence: Equivalence) -> None:
        self.equivalences.append(equivalence)

    def add_document(self, name: str, model: str, pattern: str) -> None:
        if name in self.documents:
            raise CapabilityError(f"document {name!r} already exported")
        self.documents[name] = (model, pattern)

    # -- queries ----------------------------------------------------------------

    def supports(self, operation_name: str) -> bool:
        """Does the source evaluate this operation?"""
        return operation_name in self.operations

    def operation(self, name: str) -> OperationDecl:
        try:
            return self.operations[name]
        except KeyError:
            raise OperationNotSupportedError(
                f"source {self.name!r} does not support operation {name!r}"
            ) from None

    def bind_filter_specs(self) -> Tuple[ArgSpec, ...]:
        """The Fpattern specs accepted by the source's ``bind`` operation."""
        if not self.supports("bind"):
            return ()
        decl = self.operations["bind"]
        return tuple(spec for spec in decl.inputs if spec.role == "filter")

    def predicate_names(self) -> Tuple[str, ...]:
        """Names of pushable predicates (boolean + external operations)."""
        return tuple(
            name
            for name, decl in self.operations.items()
            if decl.kind in ("boolean", "external")
        )

    def method_names(self) -> Tuple[str, ...]:
        """Names of exported schema methods."""
        return tuple(
            name for name, decl in self.operations.items() if decl.kind == "method"
        )

    def document_pattern(self, document: str) -> Optional[Pattern]:
        """Root structure pattern of a named document, if resolvable."""
        spec = self.documents.get(document)
        if spec is None:
            return None
        model, pattern = spec
        library = self.structures.get(model)
        if library is None or pattern not in library:
            return None
        return library.resolve(pattern)

    def __repr__(self) -> str:
        return (
            f"SourceInterface({self.name!r}, "
            f"{len(self.operations)} operations, "
            f"{len(self.fmodels)} fmodels, "
            f"{len(self.equivalences)} equivalences)"
        )
