"""The source description language (paper, Section 4).

Fmodels/Fpatterns with ``bind``/``inst`` flags, typed operation
interfaces, declared equivalences, the XML wire format, and the
admissibility matcher the optimizer uses for capability-based rewriting.
"""

from repro.capabilities.equivalences import Equivalence, SelectionImplication
from repro.capabilities.fmodel import (
    FModel,
    FPat,
    fany,
    fleaf,
    fnode,
    fref,
    fstar,
    funion,
    o2_fmodel,
    wais_fmodel,
)
from repro.capabilities.interface import ArgSpec, OperationDecl, SourceInterface
from repro.capabilities.matcher import (
    PREDICATE_OPERATION_NAMES,
    Admissibility,
    CapabilityMatcher,
)
from repro.capabilities.xml_codec import (
    element_to_interface,
    interface_to_xml,
    xml_to_interface,
)

__all__ = [
    "Admissibility",
    "ArgSpec",
    "CapabilityMatcher",
    "Equivalence",
    "FModel",
    "FPat",
    "OperationDecl",
    "PREDICATE_OPERATION_NAMES",
    "SelectionImplication",
    "SourceInterface",
    "element_to_interface",
    "fany",
    "fleaf",
    "fnode",
    "fref",
    "fstar",
    "funion",
    "interface_to_xml",
    "o2_fmodel",
    "wais_fmodel",
    "xml_to_interface",
]
