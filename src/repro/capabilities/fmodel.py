"""Fmodels and Fpatterns: declaring which filters a source accepts.

"We need to understand which are the acceptable filters for OQL.
Figure 6 (lines 2 to 33) shows such a specification of valid filters
(that we call a Fmodel).  The O2 Fpatterns are nothing but an XML
serialization of the type patterns of Figure 3, possibly annotated with
flags (attributes bind and inst)" (paper, Section 4.1).

An :class:`FPat` is a type-pattern node annotated with two flags:

``bind``
    which variables may appear at this node in a filter —
    ``any`` (no restriction), ``tree`` (only a variable binding the whole
    subtree), ``label`` (only a label variable), ``none`` (no variable).

``inst``
    how instantiated the node's label (or the edge, for stars) must be —
    ``any`` (no restriction), ``ground`` (completely instantiated:
    concrete label / constant), ``none`` (left unchanged: the filter must
    keep the wildcard or the star as-is).

``descend``
    whether a filter may reach this node through the descendant axis
    (``**`` / generalized path expressions) — ``none`` (a descent step is
    rejected, the flag every in-memory source keeps) or ``any`` (a
    ``FDescend`` wrapping a filter acceptable here is itself acceptable).
    Sources whose storage encodes subtree intervals (the sqlite document
    store) advertise ``descend="any"``: a descent is one range predicate
    for them, not a recursive walk.

:class:`FModel` groups named Fpatterns (``Fclass``, ``Ftype``...), and
the module provides the two Fmodels of the paper — :func:`o2_fmodel`
(Figure 6) and :func:`wais_fmodel` (Section 4.2) — plus
:func:`store_fmodel` for the out-of-core document store.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import CapabilityError
from repro.model.patterns import SYMBOL

#: Allowed values of the ``bind`` flag.
BIND_FLAGS = ("any", "tree", "label", "none")

#: Allowed values of the ``inst`` flag.
INST_FLAGS = ("any", "ground", "none")

#: Allowed values of the ``descend`` flag.
DESCEND_FLAGS = ("none", "any")

#: Node kinds of an Fpattern.
FPAT_KINDS = ("node", "leaf", "star", "union", "ref", "any")


class FPat:
    """One node of an Fpattern: a flagged type-pattern node.

    ``kind`` selects the shape:

    * ``node`` — an element with ``label`` (possibly the ``Symbol``
      wildcard) and child Fpatterns;
    * ``leaf`` — an atomic type, named by ``label`` (``Int``...);
    * ``star`` — zero-or-more occurrences of its single child;
    * ``union`` — alternatives;
    * ``ref`` — a reference to a named pattern: ``ref`` is a
      ``(model, pattern)`` pair, where *model* may name another Fmodel or
      an exported structure (resolution happens in the matcher);
    * ``any`` — no structural constraint.
    """

    __slots__ = ("kind", "label", "children", "bind", "inst", "ref",
                 "collection", "descend")

    def __init__(
        self,
        kind: str,
        label: Optional[str] = None,
        children: Sequence["FPat"] = (),
        bind: str = "any",
        inst: str = "any",
        ref: Optional[Tuple[str, str]] = None,
        collection: Optional[str] = None,
        descend: str = "none",
    ) -> None:
        if kind not in FPAT_KINDS:
            raise CapabilityError(f"unknown Fpattern kind: {kind!r}")
        if bind not in BIND_FLAGS:
            raise CapabilityError(f"unknown bind flag: {bind!r}")
        if inst not in INST_FLAGS:
            raise CapabilityError(f"unknown inst flag: {inst!r}")
        if descend not in DESCEND_FLAGS:
            raise CapabilityError(f"unknown descend flag: {descend!r}")
        if kind == "star" and len(children) != 1:
            raise CapabilityError("a star Fpattern requires exactly one child")
        if kind == "union" and not children:
            raise CapabilityError("a union Fpattern requires alternatives")
        if kind == "ref" and ref is None:
            raise CapabilityError("a ref Fpattern requires a (model, pattern) target")
        self.kind = kind
        self.label = label
        self.children: Tuple[FPat, ...] = tuple(children)
        self.bind = bind
        self.inst = inst
        self.ref = ref
        self.collection = collection
        self.descend = descend

    def walk(self) -> Iterator["FPat"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def _key(self) -> tuple:
        return (
            self.kind,
            self.label,
            self.bind,
            self.inst,
            self.ref,
            self.collection,
            self.descend,
            tuple(c._key() for c in self.children),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FPat):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        flags = []
        if self.bind != "any":
            flags.append(f"bind={self.bind}")
        if self.inst != "any":
            flags.append(f"inst={self.inst}")
        if self.descend != "none":
            flags.append(f"descend={self.descend}")
        extra = (" " + " ".join(flags)) if flags else ""
        if self.kind == "ref":
            return f"FPat(ref {self.ref[0]}:{self.ref[1]}{extra})"
        return f"FPat({self.kind} {self.label or ''}{extra})"


class FModel:
    """A named collection of Fpatterns exported by a wrapper."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._patterns: Dict[str, FPat] = {}

    def define(self, name: str, fpat: FPat) -> None:
        if name in self._patterns:
            raise CapabilityError(f"Fpattern {name!r} already defined in {self.name!r}")
        self._patterns[name] = fpat

    def resolve(self, name: str) -> FPat:
        try:
            return self._patterns[name]
        except KeyError:
            raise CapabilityError(
                f"Fmodel {self.name!r} has no Fpattern {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._patterns

    def names(self) -> Tuple[str, ...]:
        return tuple(self._patterns)

    def items(self):
        return self._patterns.items()


# ---------------------------------------------------------------------------
# Shorthand constructors
# ---------------------------------------------------------------------------

def fnode(
    label: str,
    *children: FPat,
    bind: str = "any",
    inst: str = "any",
    collection: Optional[str] = None,
    descend: str = "none",
) -> FPat:
    """An element Fpattern."""
    return FPat("node", label=label, children=children, bind=bind, inst=inst,
                collection=collection, descend=descend)


def fleaf(
    type_name: str, bind: str = "any", inst: str = "any", descend: str = "none"
) -> FPat:
    """An atomic-type Fpattern (``Int``, ``String``...)."""
    return FPat("leaf", label=type_name, bind=bind, inst=inst, descend=descend)


def fstar(child: FPat, inst: str = "any") -> FPat:
    """A star Fpattern (the flag constrains the star edge itself)."""
    return FPat("star", children=(child,), inst=inst)


def funion(*alternatives: FPat) -> FPat:
    """A union Fpattern."""
    return FPat("union", children=alternatives)


def fref(
    model: str,
    pattern: str,
    bind: str = "any",
    inst: str = "any",
    descend: str = "none",
) -> FPat:
    """A reference to a named pattern in another model."""
    return FPat("ref", ref=(model, pattern), bind=bind, inst=inst,
                descend=descend)


def fany(bind: str = "any") -> FPat:
    """The unconstrained Fpattern."""
    return FPat("any", bind=bind)


# ---------------------------------------------------------------------------
# The paper's two Fmodels
# ---------------------------------------------------------------------------

def o2_fmodel() -> FModel:
    """The O2 Fmodel of Figure 6 (lines 2-33).

    ``Fclass`` says: only subtrees corresponding to actual O2 objects or
    values can be bound (``bind="tree"``), class schema information cannot
    be extracted (``bind="none"`` on the attribute layer), and the class
    name must be ground.  ``Ftype`` enumerates the ODMG type formers.
    """
    model = FModel("o2fmodel")
    model.define(
        "Fclass",
        fnode(
            "class",
            fnode(SYMBOL, fref("o2fmodel", "Ftype"), bind="none", inst="ground"),
            bind="tree",
        ),
    )
    model.define(
        "Ftype",
        funion(
            fleaf("Int"),
            fleaf("Bool"),
            fleaf("Float"),
            fleaf("String"),
            fnode(
                "tuple",
                fstar(
                    fnode(SYMBOL, fref("o2fmodel", "Ftype"), bind="none"),
                    inst="ground",
                ),
                bind="tree",
                collection="set",
            ),
            fnode("set", fstar(fref("o2fmodel", "Ftype"), inst="none"),
                  bind="tree", collection="set"),
            fnode("bag", fstar(fref("o2fmodel", "Ftype"), inst="none"),
                  bind="tree", collection="bag"),
            fnode("list", fstar(fref("o2fmodel", "Ftype"), inst="none"),
                  bind="tree"),
            fnode("array", fstar(fref("o2fmodel", "Ftype"), inst="none"),
                  bind="tree"),
            fref("o2fmodel", "Fclass"),
        ),
    )
    return model


def wais_fmodel(structure_model: str = "Artworks_Structure") -> FModel:
    """The Wais Fmodel of Section 4.2.

    Very restrictive: "it only permits to bind subtrees corresponding to
    full documents (i.e., only work elements)".
    """
    model = FModel("waisfmodel")
    model.define(
        "Fworks",
        fnode(
            "works",
            fstar(fref(structure_model, "work", bind="tree"), inst="none"),
            bind="none",
            inst="ground",
        ),
    )
    return model


def store_fmodel() -> FModel:
    """The Fmodel of the sqlite document store (``repro.store``).

    The pre/post interval encoding makes the store qualitatively more
    capable than the in-memory sources: any literal-labeled element can
    anchor a filter at any depth, subtrees and leaf contents bind
    freely, and — the genuinely new part — the descendant axis is
    acceptable *everywhere* (``descend="any"``), because a ``**`` step
    is a single ``s.pre < t.pre AND t.post <= s.post`` range predicate
    for the store, not a recursive walk.  Only label variables and
    regexes stay out: the store matches labels by equality.
    """
    model = FModel("storefmodel")
    model.define(
        "Felement",
        fnode(
            SYMBOL,
            fstar(fref("storefmodel", "Fitem")),
            bind="tree",
            descend="any",
        ),
    )
    model.define(
        "Fitem",
        funion(
            fleaf("Int", descend="any"),
            fleaf("Bool", descend="any"),
            fleaf("Float", descend="any"),
            fleaf("String", descend="any"),
            fref("storefmodel", "Felement"),
        ),
    )
    return model
