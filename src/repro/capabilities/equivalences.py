"""Declared equivalences: the "semantic step" of capability wrapping.

Some source operations are not captured by the core operational model —
the Wais ``contains`` predicate is the paper's running example.  For
those, the wrapper declares an *equivalence* connecting the source
operation to algebra operations, which the optimizer can then exploit
(paper, Section 4.2)::

    Select_{$x = s}(Bind_{F($x)}(doc))
        ==
    Select_{$x = s}(Select_{contains($w, s)}(Bind_{$w: F($x)}(doc)))

"Starting from a selection with equality over the result of a Bind, one
can add a more general contains predicate over the root of the
document."

Rather than a full template language, each equivalence form the paper
uses is one declarative class; the XML codec serializes them, and the
optimizer's capability round interprets them generically (it never
hardcodes per-source logic).
"""

from __future__ import annotations

from typing import Optional


class Equivalence:
    """Base class of declared source equivalences."""

    kind: str = "equivalence"

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Equivalence):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())


class SelectionImplication(Equivalence):
    """``mediator_predicate($x, c)  implies  source_predicate($w, f(c))``.

    Where ``$x`` is any variable bound by a filter *below* a tree variable
    ``$w`` that binds a whole document of the source.  The implication
    lets the optimizer insert ``Select source_predicate($w, c)`` under an
    existing mediator-side selection: the source predicate is *weaker*
    (it may keep false positives), so the original selection remains
    above it, but the stronger pre-filter can now be pushed to the source.

    Parameters
    ----------
    mediator_predicate:
        The algebra predicate appearing in the query (``=`` for the Wais
        example).
    source_predicate:
        The declared source operation to introduce (``contains``).
    argument_type:
        The atomic type the compared constant must have for the
        implication to apply (``String`` for full-text search); ``None``
        means any type.
    field_scoped:
        When ``True``, the implication prefers a *field-scoped* variant
        of the source predicate: if the compared variable is bound under
        element label ``L`` and the source declares
        ``<source_predicate>_<L>``, that operation is derived instead of
        the document-wide one.  This is the paper's Z39.50 remark about
        "declaring a predicate for each queried field and exporting them
        to the mediator" — free-WAIS-sf's structured fields.
    """

    kind = "selection_implication"

    def __init__(
        self,
        mediator_predicate: str,
        source_predicate: str,
        argument_type: Optional[str] = "String",
        field_scoped: bool = False,
    ) -> None:
        self.mediator_predicate = mediator_predicate
        self.source_predicate = source_predicate
        self.argument_type = argument_type
        self.field_scoped = field_scoped

    def scoped_predicate(self, field: str) -> str:
        """Name of the field-scoped variant for element label *field*."""
        return f"{self.source_predicate}_{field}"

    def _key(self) -> tuple:
        return (
            self.kind,
            self.mediator_predicate,
            self.source_predicate,
            self.argument_type,
            self.field_scoped,
        )

    def __repr__(self) -> str:
        scoped = ", field-scoped" if self.field_scoped else ""
        return (
            f"SelectionImplication({self.mediator_predicate!r} => "
            f"{self.source_predicate!r} on {self.argument_type or 'any'}{scoped})"
        )
