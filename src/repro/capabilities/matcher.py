"""Admissibility: is this filter / predicate acceptable for this source?

The optimizer "tries to match the Bind operation with the ... capabilities
that have been declared" (paper, Section 5.3).  This module implements
that match *structurally*: a filter is admissible when it instantiates one
of the source's declared Fpatterns under the ``bind``/``inst`` flags; a
predicate is pushable when every operator and function it uses is declared
in the source's operational interface.  No per-source logic appears here —
everything is driven by the exported description, which is the paper's
central claim about generic wrapping.

Reference resolution rule
-------------------------

An Fpattern ``ref`` may point into another *Fmodel* (recursive filter
description — O2's ``Ftype``) or into an exported *structure model* (a
plain data pattern — Wais' ``work``).  References into structure models
are terminal for filtering: they type the subtree but license no deeper
filter structure, which is exactly how the Wais description restricts
binding to whole documents.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.capabilities.fmodel import FPat
from repro.capabilities.interface import ArgSpec, SourceInterface
from repro.core.algebra.expressions import (
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    FunCall,
    Var,
)
from repro.model.filters import (
    FConst,
    FDescend,
    FElem,
    Filter,
    FRest,
    FStar,
    FVar,
    LabelVar,
)
from repro.model.patterns import SYMBOL

#: Mapping from algebra comparison operators to declared operation names.
PREDICATE_OPERATION_NAMES = {
    "=": "eq",
    "!=": "neq",
    "<": "lt",
    "<=": "lte",
    ">": "gt",
    ">=": "gte",
}


class Admissibility:
    """Outcome of an admissibility check: a boolean plus a reason."""

    __slots__ = ("ok", "reason")

    def __init__(self, ok: bool, reason: str = "") -> None:
        self.ok = ok
        self.reason = reason

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "admissible" if self.ok else f"rejected: {self.reason}"
        return f"Admissibility({status})"


def _ok() -> Admissibility:
    return Admissibility(True)


def _no(reason: str) -> Admissibility:
    return Admissibility(False, reason)


class CapabilityMatcher:
    """Checks filters and predicates against one source's interface."""

    def __init__(self, interface: SourceInterface) -> None:
        self._interface = interface

    # -- public API -----------------------------------------------------------

    def bind_admissible(self, flt: Filter) -> Admissibility:
        """Can the source's ``bind`` operation evaluate this filter?"""
        if not self._interface.supports("bind"):
            return _no(f"source {self._interface.name!r} declares no bind operation")
        specs = self._interface.bind_filter_specs()
        if not specs:
            return _no("bind operation declares no filter Fpattern")
        last = _no("no filter spec matched")
        for spec in specs:
            fpat = self._resolve_spec(spec)
            if fpat is None:
                last = _no(f"unresolvable filter spec {spec!r}")
                continue
            result = self._check(flt, fpat)
            if result:
                return result
            last = result
        return last

    def predicate_pushable(self, predicate: Expr) -> Admissibility:
        """Can the source evaluate this predicate in a pushed selection?"""
        if not self._interface.supports("select"):
            return _no(f"source {self._interface.name!r} declares no select operation")
        return self._check_predicate(predicate)

    def operation_pushable(self, operation_name: str) -> Admissibility:
        """Is this algebra operation (map, join...) declared by the source?"""
        if self._interface.supports(operation_name):
            return _ok()
        return _no(
            f"source {self._interface.name!r} does not declare {operation_name!r}"
        )

    # -- predicate checking -----------------------------------------------------

    def _check_predicate(self, predicate: Expr) -> Admissibility:
        if isinstance(predicate, (BoolAnd, BoolOr)):
            for operand in predicate.operands:
                result = self._check_predicate(operand)
                if not result:
                    return result
            return _ok()
        if isinstance(predicate, BoolNot):
            return self._check_predicate(predicate.operand)
        if isinstance(predicate, Cmp):
            operation = PREDICATE_OPERATION_NAMES[predicate.op]
            if not self._interface.supports(operation):
                return _no(f"comparison {predicate.op!r} ({operation}) not declared")
            for side in (predicate.left, predicate.right):
                result = self._check_scalar(side)
                if not result:
                    return result
            return _ok()
        if isinstance(predicate, FunCall):
            return self._check_scalar(predicate)
        return self._check_scalar(predicate)

    def _check_scalar(self, expr: Expr) -> Admissibility:
        if isinstance(expr, (Var, Const)):
            return _ok()
        if isinstance(expr, FunCall):
            if not self._interface.supports(expr.name):
                return _no(f"function {expr.name!r} not declared")
            for arg in expr.args:
                result = self._check_scalar(arg)
                if not result:
                    return result
            return _ok()
        return _no(f"expression {expr!r} is not pushable")

    # -- filter checking ----------------------------------------------------------

    def _resolve_spec(self, spec: ArgSpec) -> Optional[FPat]:
        fmodel = self._interface.fmodels.get(spec.model or "")
        if fmodel is not None and spec.pattern in fmodel:
            return fmodel.resolve(spec.pattern)
        return None

    def _resolve_ref(self, fpat: FPat) -> Tuple[Optional[FPat], bool]:
        """Resolve a ref Fpattern.

        Returns ``(resolved, terminal)``: *terminal* is ``True`` when the
        reference points into a structure model (no deeper filtering).
        """
        model_name, pattern_name = fpat.ref
        fmodel = self._interface.fmodels.get(model_name)
        if fmodel is not None and pattern_name in fmodel:
            resolved = fmodel.resolve(pattern_name)
            return self._with_flags(resolved, fpat), False
        library = self._interface.structures.get(model_name)
        if library is not None and pattern_name in library:
            pattern = library.resolve(pattern_name)
            label = getattr(pattern, "label", None)
            terminal = FPat(
                "node" if label is not None else "any",
                label=label,
                bind=fpat.bind,
                inst=fpat.inst,
            )
            return terminal, True
        return None, False

    @staticmethod
    def _with_flags(resolved: FPat, ref: FPat) -> FPat:
        """Overlay the ref node's non-default flags onto the resolved root."""
        bind = ref.bind if ref.bind != "any" else resolved.bind
        inst = ref.inst if ref.inst != "any" else resolved.inst
        descend = ref.descend if ref.descend != "none" else resolved.descend
        if (
            bind == resolved.bind
            and inst == resolved.inst
            and descend == resolved.descend
        ):
            return resolved
        return FPat(
            resolved.kind,
            label=resolved.label,
            children=resolved.children,
            bind=bind,
            inst=inst,
            ref=resolved.ref,
            collection=resolved.collection,
            descend=descend,
        )

    def _check(self, flt: Filter, fpat: FPat, terminal: bool = False) -> Admissibility:
        if fpat.kind == "union":
            last = _no("no union branch admits the filter")
            for alternative in fpat.children:
                result = self._check(flt, alternative, terminal)
                if result:
                    return result
                last = result
            return last
        if fpat.kind == "ref":
            resolved, is_terminal = self._resolve_ref(fpat)
            if resolved is None:
                return _no(f"unresolvable reference {fpat.ref!r}")
            return self._check(flt, resolved, is_terminal)

        if isinstance(flt, FVar):
            if fpat.bind in ("any", "tree"):
                return _ok()
            return _no(f"tree variable ${flt.name} forbidden (bind={fpat.bind})")
        if isinstance(flt, FConst):
            if fpat.kind in ("leaf", "any"):
                return _ok()
            return _no(f"constant {flt.value!r} does not fit a {fpat.kind} pattern")
        if isinstance(flt, FDescend):
            if fpat.kind == "any" or fpat.descend == "any":
                return self._check(flt.child, fpat, terminal)
            return _no("descendant navigation is not supported by this source")
        if isinstance(flt, FElem):
            return self._check_elem(flt, fpat, terminal)
        if isinstance(flt, (FStar, FRest)):
            return _no(f"{type(flt).__name__} outside an element filter")
        return _no(f"unknown filter kind {flt!r}")

    def _check_elem(self, flt: FElem, fpat: FPat, terminal: bool) -> Admissibility:
        # Label discipline.
        if isinstance(flt.label, LabelVar):
            if fpat.kind == "node" and fpat.label != SYMBOL:
                return _no(
                    f"label variable ${flt.label.name} cannot stand for the fixed "
                    f"label {fpat.label!r}"
                )
            if fpat.inst == "ground":
                return _no(
                    f"label variable ${flt.label.name} forbidden (inst=ground)"
                )
            if fpat.bind not in ("any", "label"):
                return _no(
                    f"label variable ${flt.label.name} forbidden (bind={fpat.bind})"
                )
        elif isinstance(flt.label, str):
            if fpat.kind == "node" and fpat.label not in (SYMBOL, flt.label):
                return _no(
                    f"label {flt.label!r} does not match pattern label {fpat.label!r}"
                )
            if fpat.kind == "node" and fpat.label == SYMBOL and fpat.inst == "none":
                return _no(
                    f"label {flt.label!r} instantiates a wildcard frozen by inst=none"
                )
        else:  # LabelRegex
            if fpat.kind != "any":
                return _no("label regular expressions are not supported by this source")

        # Tree-variable discipline.
        if flt.var is not None and fpat.bind not in ("any", "tree"):
            return _no(f"tree variable ${flt.var} forbidden (bind={fpat.bind})")

        # Content discipline.
        if terminal or fpat.kind == "any":
            if flt.children and terminal:
                return _no(
                    "only whole subtrees may be bound here (structure-model "
                    "reference); deeper filtering is not supported"
                )
            for child in flt.children:
                result = self._check(child, fpat, terminal)
                if not result:
                    return result
            return _ok()
        if fpat.kind == "leaf":
            if len(flt.children) > 1:
                return _no("an atomic value admits at most one content filter")
            for child in flt.children:
                if not isinstance(child, (FVar, FConst)):
                    return _no("atomic content admits only variables or constants")
                result = self._check(child, fpat)
                if not result:
                    return result
            return _ok()
        if fpat.kind != "node":
            return _no(f"element filter does not fit a {fpat.kind} pattern")
        return self._check_children(flt, fpat)

    def _check_children(self, flt: FElem, fpat: FPat) -> Admissibility:
        """Match the filter's child items against the Fpattern's children."""
        stars = [item for item in fpat.children if item.kind == "star"]
        singles = [item for item in fpat.children if item.kind != "star"]
        used_singles = [False] * len(singles)

        for child in flt.children:
            if isinstance(child, FStar):
                result = self._check_star_item(child, stars)
            elif isinstance(child, FRest):
                result = self._check_rest_item(child, stars)
            else:
                result = self._check_plain_item(child, singles, used_singles, stars)
            if not result:
                return result
        return _ok()

    def _check_star_item(self, child: FStar, stars) -> Admissibility:
        last = _no("no star position accepts an iterating filter")
        for star in stars:
            if star.inst == "ground":
                last = _no("star position requires ground items (inst=ground)")
                continue
            result = self._check(child.child, star.children[0])
            if result:
                return result
            last = result
        return last

    def _check_rest_item(self, child: FRest, stars) -> Admissibility:
        for star in stars:
            if star.inst == "ground":
                continue
            inner = star.children[0]
            if inner.kind == "ref":
                resolved, terminal = self._resolve_ref(inner)
                if resolved is None:
                    continue
                inner = resolved
            if inner.bind in ("any", "tree"):
                return _ok()
        return _no(f"rest variable ${child.name} has no bindable star position")

    def _check_plain_item(
        self, child: Filter, singles, used_singles, stars
    ) -> Admissibility:
        last = _no("no pattern position accepts this filter item")
        for index, single in enumerate(singles):
            if used_singles[index]:
                continue
            result = self._check(child, single)
            if result:
                used_singles[index] = True
                return result
            last = result
        for star in stars:
            if star.inst == "none":
                last = _no(
                    "star position is frozen (inst=none): items must iterate, "
                    "not match individually"
                )
                continue
            result = self._check(child, star.children[0])
            if result:
                return result
            last = result
        return last
