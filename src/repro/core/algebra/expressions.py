"""Scalar expressions and predicates over Tab rows.

Expressions appear in ``Select`` and ``Join`` predicates, in ``Map``
bindings and in ``Tree`` constructors.  The vocabulary is deliberately
small — variables, constants, comparisons, boolean connectives and named
function calls — because the paper extends it through *declared source
operations* (Section 4): a method like ``current_price`` or a predicate
like ``contains`` is a :class:`FunCall` whose implementation is looked up
in the evaluation context's function registry.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.model.filters import MissingValue
from repro.model.trees import DataNode
from repro.model.values import Atom

#: Comparison operators understood by :class:`Cmp`.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Expr:
    """Base class of expression nodes (immutable)."""

    __slots__ = ()

    def variables(self) -> Tuple[str, ...]:
        """Names of the Tab columns this expression reads."""
        seen: list = []
        for node in self.walk():
            if isinstance(node, Var) and node.name not in seen:
                seen.append(node.name)
        return tuple(seen)

    def functions(self) -> Tuple[str, ...]:
        """Names of the external functions this expression calls."""
        seen: list = []
        for node in self.walk():
            if isinstance(node, FunCall) and node.name not in seen:
                seen.append(node.name)
        return tuple(seen)

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def evaluate(self, row, functions: Optional[Dict[str, Callable]] = None):
        """Evaluate against a :class:`~repro.core.algebra.tab.Row`."""
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, "Expr"]) -> "Expr":
        """Return a copy with variables replaced per *mapping*."""
        raise NotImplementedError

    def rename(self, mapping: Dict[str, str]) -> "Expr":
        """Return a copy with variables renamed (old name -> new name)."""
        return self.substitute({old: Var(new) for old, new in mapping.items()})

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Expr):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return self.text()

    def text(self) -> str:
        """Concrete-syntax rendering (used in plan pretty-printing)."""
        raise NotImplementedError


class Var(Expr):
    """Reference to a Tab column, e.g. ``$y``."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, row, functions=None):
        return row[self.name]

    def substitute(self, mapping):
        return mapping.get(self.name, self)

    def _key(self):
        return ("var", self.name)

    def text(self):
        return f"${self.name}"


class Const(Expr):
    """A literal atom."""

    __slots__ = ("value",)

    def __init__(self, value: Atom) -> None:
        self.value = value

    def evaluate(self, row, functions=None):
        return self.value

    def substitute(self, mapping):
        return self

    def _key(self):
        return ("const", type(self.value).__name__, self.value)

    def text(self):
        return repr(self.value)


class Cmp(Expr):
    """A comparison: ``left op right`` with op in ``=,!=,<,<=,>,>=``.

    Comparisons involving :data:`MISSING` are false (三-valued logic
    collapsed to two values, as in SQL's ``WHERE``).  DataNode operands
    that are atom leaves compare by their atom value, so ``$t = $t'``
    works whether the variables bound atoms or leaf nodes.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in COMPARISON_OPS:
            raise EvaluationError(f"unknown comparison operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def evaluate(self, row, functions=None):
        left = _comparable(self.left.evaluate(row, functions))
        right = _comparable(self.right.evaluate(row, functions))
        if isinstance(left, MissingValue) or isinstance(right, MissingValue):
            return False
        if self.op == "=":
            return left == right
        if self.op == "!=":
            return left != right
        try:
            if self.op == "<":
                return left < right
            if self.op == "<=":
                return left <= right
            if self.op == ">":
                return left > right
            return left >= right
        except TypeError as exc:
            raise EvaluationError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from exc

    def substitute(self, mapping):
        return Cmp(self.op, self.left.substitute(mapping), self.right.substitute(mapping))

    def _key(self):
        return ("cmp", self.op, self.left._key(), self.right._key())

    def text(self):
        return f"{self.left.text()} {self.op} {self.right.text()}"


class BoolAnd(Expr):
    """Conjunction of predicates."""

    __slots__ = ("operands",)

    def __init__(self, operands: Sequence[Expr]) -> None:
        self.operands = tuple(operands)

    def children(self):
        return self.operands

    def evaluate(self, row, functions=None):
        return all(bool(op.evaluate(row, functions)) for op in self.operands)

    def substitute(self, mapping):
        return BoolAnd([op.substitute(mapping) for op in self.operands])

    def _key(self):
        return ("and",) + tuple(op._key() for op in self.operands)

    def text(self):
        return " AND ".join(f"({op.text()})" for op in self.operands)


class BoolOr(Expr):
    """Disjunction of predicates."""

    __slots__ = ("operands",)

    def __init__(self, operands: Sequence[Expr]) -> None:
        self.operands = tuple(operands)

    def children(self):
        return self.operands

    def evaluate(self, row, functions=None):
        return any(bool(op.evaluate(row, functions)) for op in self.operands)

    def substitute(self, mapping):
        return BoolOr([op.substitute(mapping) for op in self.operands])

    def _key(self):
        return ("or",) + tuple(op._key() for op in self.operands)

    def text(self):
        return " OR ".join(f"({op.text()})" for op in self.operands)


class BoolNot(Expr):
    """Negation of a predicate."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def children(self):
        return (self.operand,)

    def evaluate(self, row, functions=None):
        return not bool(self.operand.evaluate(row, functions))

    def substitute(self, mapping):
        return BoolNot(self.operand.substitute(mapping))

    def _key(self):
        return ("not", self.operand._key())

    def text(self):
        return f"NOT ({self.operand.text()})"


class FunCall(Expr):
    """A call to a named external function (declared source operation).

    The implementation is resolved at evaluation time in the function
    registry: ``contains``, ``current_price``, etc.  The mediator provides
    registry entries for operations it can evaluate itself; operations it
    cannot evaluate must be pushed to the source that declared them.
    """

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr]) -> None:
        self.name = name
        self.args = tuple(args)

    def children(self):
        return self.args

    def evaluate(self, row, functions=None):
        if not functions or self.name not in functions:
            raise EvaluationError(
                f"no implementation for function {self.name!r} at the mediator; "
                "it must be pushed to the source that declared it"
            )
        values = [arg.evaluate(row, functions) for arg in self.args]
        return functions[self.name](*values)

    def substitute(self, mapping):
        return FunCall(self.name, [arg.substitute(mapping) for arg in self.args])

    def _key(self):
        return ("fun", self.name) + tuple(arg._key() for arg in self.args)

    def text(self):
        return f"{self.name}({', '.join(arg.text() for arg in self.args)})"


def _comparable(value):
    """Unwrap atom leaves so comparisons act on values, not nodes."""
    if isinstance(value, DataNode) and value.is_atom_leaf:
        return value.atom
    return value


def conjuncts(predicate: Expr) -> Tuple[Expr, ...]:
    """Flatten nested conjunctions into a tuple of conjuncts."""
    if isinstance(predicate, BoolAnd):
        result: list = []
        for operand in predicate.operands:
            result.extend(conjuncts(operand))
        return tuple(result)
    return (predicate,)


def conjunction(predicates: Sequence[Expr]) -> Expr:
    """Inverse of :func:`conjuncts`: build a single predicate."""
    predicates = tuple(predicates)
    if not predicates:
        return Const(True)
    if len(predicates) == 1:
        return predicates[0]
    return BoolAnd(predicates)


def eq(left: Expr, right: Expr) -> Cmp:
    """Shorthand for an equality comparison."""
    return Cmp("=", left, right)
