"""Compiled Bind-filter and predicate kernels.

The interpretive :class:`~repro.core.algebra.bind.FilterMatcher` walks
the filter tree for *every* candidate node, re-deciding at each step
what kind of filter it is looking at, re-reading labels, and scanning
every child of every element linearly.  On the serving path the filter
is fixed per plan node while the data varies, so this module compiles a
:class:`~repro.model.filters.Filter` once into a chain of specialized
closures:

* per-node dispatch (``FElem`` vs ``FConst`` vs ...) is resolved at
  compile time — matching executes no ``isinstance`` on filters;
* label comparison is specialized per label kind (string / variable /
  regex) instead of re-dispatching per node;
* when an element filter has two or more children with concrete string
  labels, matching builds a per-node **label index** over the data
  node's children, replacing the items × children linear scan with a
  dict lookup (document order within a label is preserved, so the
  produced bindings are ordered exactly as the interpreter's);
* star / rest handling is pre-decided: the rest variable's name and the
  per-item target filters are fixed in the closure environment.

``Select`` / ``Join`` predicate :class:`~repro.core.algebra.expressions.Expr`
trees get the same treatment via :func:`compile_predicate`.

Compiled kernels are memoized per plan node (:func:`compiled_filter` /
:func:`compiled_predicate`), so a cached plan that is executed again —
or a DJoin branch evaluated once per outer row — compiles nothing.  The
interpretive ``FilterMatcher`` remains in place as the differential
oracle: ``ExecutionPolicy.serial()`` disables kernels, and the fuzz
suite checks byte-identical answers between the two.  Semantics match
the interpreter exactly, including error messages, binding order, and
the cartesian-explosion guard.

Kernels can additionally run with a :class:`MatchContext` carrying a
:class:`~repro.model.indexes.DocumentIndex`: items whose target demands
constants seed their candidate children from the value index, and ``**``
jumps straight to the label's positions, instead of scanning.  The index
only ever *narrows* the candidates to a sound superset in document
order, so bindings stay byte-identical with or without it.
"""

from __future__ import annotations

import operator as _operator
import threading as _threading
from itertools import product
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.algebra.expressions import (
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    FunCall,
    Var,
)
from repro.core.algebra.bind import collection_explosion
from repro.errors import BindError, EvaluationError
from repro.model.filters import (
    FConst,
    FDescend,
    FElem,
    Filter,
    FRest,
    FStar,
    FVar,
    LabelRegex,
    LabelVar,
    MissingValue,
)
from repro.model.indexes import index_eligibility, required_constants
from repro.model.trees import DataNode

__all__ = [
    "CompiledFilter",
    "MatchContext",
    "compile_filter",
    "compile_predicate",
    "compiled_filter",
    "compiled_predicate",
    "kernel_cache_stats",
    "reset_kernel_caches",
]

#: ``deref`` for matching without an ident index (no reference chasing).
def identity_deref(node: DataNode) -> DataNode:
    return node


class MatchContext:
    """Per-match carrier of the document index and its usage counters.

    Passing a context is purely an acceleration: kernels consult the
    index only where :meth:`DocumentIndex.covers` proves it sound, and
    fall back to scanning everywhere else.  ``seeks``/``hits`` feed the
    ``yat_bind_index_*`` metrics and tracer span attributes.
    """

    __slots__ = ("index", "seeks", "hits")

    def __init__(self, index) -> None:
        self.index = index
        self.seeks = 0
        self.hits = 0


# A match function takes (node, deref, ctx) and returns a list of
# bindings; ctx is an optional MatchContext.
_MatchFn = Callable[..., List[dict]]


def _compile(flt: Filter, max_matches: int) -> _MatchFn:
    if isinstance(flt, FElem):
        return _compile_elem(flt, max_matches)
    if isinstance(flt, FVar):
        name = flt.name

        def match_var(node, deref, ctx=None):
            atom = node.atom
            if atom is not None:
                return [{name: atom}]
            return [{name: node}]

        return match_var
    if isinstance(flt, FConst):
        value = flt.value

        def match_const(node, deref, ctx=None):
            node = deref(node)
            atom = node.atom
            if atom is not None and atom == value:
                return [{}]
            return []

        return match_const
    if isinstance(flt, FDescend):
        inner = _compile(flt.child, max_matches)
        # ``**`` into a literal label can jump straight to the label's
        # positions instead of probing every descendant; the inner
        # matcher re-checks the label, so the jump is a pure filter.
        child = flt.child
        seek_label = (
            child.label
            if isinstance(child, FElem) and isinstance(child.label, str)
            else None
        )

        def match_descend(node, deref, ctx=None):
            node = deref(node)
            if ctx is not None and seek_label is not None:
                index = ctx.index
                if index.covers(node):
                    candidates = index.descendants_with_label(node, seek_label)
                    ctx.seeks += 1
                    ctx.hits += len(candidates)
                    out: List[dict] = []
                    for descendant in candidates:
                        out.extend(inner(descendant, deref, ctx))
                    return out
            out = []
            for descendant in node.descendants():
                out.extend(inner(descendant, deref, ctx))
            return out

        return match_descend
    if isinstance(flt, (FStar, FRest)):
        message = (
            f"{type(flt).__name__} is only meaningful as a child of an "
            "element filter"
        )

        def match_invalid(node, deref, ctx=None):
            raise BindError(message)

        return match_invalid

    def match_unknown(node, deref, ctx=None, _flt=flt):
        raise BindError(f"unknown filter kind: {_flt!r}")

    return match_unknown


def _compile_leaf_content(children) -> Optional[Callable[[DataNode], list]]:
    """Matcher for an atom leaf's content, or ``None`` when it can't match.

    Mirrors ``FilterMatcher._match_leaf_content``: an atom leaf satisfies
    an element filter only when the filter has exactly one child that is
    a variable (binds the atom) or a constant (compares the atom).
    """
    if len(children) != 1:
        return None
    only = children[0]
    if isinstance(only, FVar):
        name = only.name

        def leaf_var(node):
            return [{name: node.atom}]

        return leaf_var
    if isinstance(only, FConst):
        value = only.value

        def leaf_const(node):
            if node.atom == value:
                return [{}]
            return []

        return leaf_const
    return None


def _compile_elem(flt: FElem, max_matches: int) -> _MatchFn:
    label = flt.label
    var = flt.var
    # Specialize the label test once instead of per candidate node.
    if isinstance(label, str):
        literal = label
        label_var_name = None
        regex = None
    elif isinstance(label, LabelVar):
        literal = None
        label_var_name = label.name
        regex = None
    elif isinstance(label, LabelRegex):
        literal = None
        label_var_name = None
        regex = label.matches
    else:  # pragma: no cover - Filter validates labels at construction
        literal = None
        label_var_name = None
        regex = None

    leaf_fn = _compile_leaf_content(flt.children)

    # Pre-split the children into the rest capture and the item matchers.
    # A star item matches its inner filter against each child; mandatory
    # items match themselves — the loop below treats both identically
    # (one alternative list per item, element fails on an empty list),
    # which is exactly the interpreter's behavior.
    rest_name: Optional[str] = None
    item_specs: List[Tuple[_MatchFn, Optional[str], tuple]] = []
    indexable = 0
    any_required = False
    for item in flt.children:
        if isinstance(item, FRest):
            rest_name = item.name
            continue
        target = item.child if isinstance(item, FStar) else item
        lookup: Optional[str] = None
        required: tuple = ()
        if isinstance(target, FElem) and isinstance(target.label, str):
            lookup = target.label
            indexable += 1
            # Constants the target demands anywhere in a matching child's
            # subtree (all non-rest items are mandatory) — the sargable
            # keys a document value index can seek on.
            required = required_constants(target)
            any_required = any_required or bool(required)
        item_specs.append((_compile(target, max_matches), lookup, required))
    # A label index pays off once two or more items can use it; with a
    # single item the dict build costs as much as the scan it replaces.
    use_index = indexable >= 2
    has_children_filter = bool(flt.children)

    def match_elem(node, deref, ctx=None):
        node = deref(node)
        node_label = node.label
        if literal is not None:
            if node_label != literal:
                return []
        elif regex is not None:
            if not regex(node_label):
                return []
        own: dict = {}
        if label_var_name is not None:
            own[label_var_name] = node_label
        if var is not None:
            atom = node.atom
            own[var] = atom if atom is not None else node
        if not has_children_filter:
            return [own]
        if node.atom is not None:
            if leaf_fn is None:
                return []
            out = []
            for binding in leaf_fn(node):
                merged = dict(own)
                merged.update(binding)
                out.append(merged)
            return out
        kids = node.children
        doc_index = None
        if ctx is not None and any_required:
            doc_index = ctx.index
            if not doc_index.covers(node):
                doc_index = None
        by_label: Optional[Dict[str, List[DataNode]]] = None
        if use_index and kids:
            by_label = {}
            for child in kids:
                by_label.setdefault(deref(child).label, []).append(child)
        claimed: set = set()
        alternatives: List[List[dict]] = []
        for item_fn, lookup, required in item_specs:
            if required and doc_index is not None:
                # Associative access: only children whose subtree holds
                # every required constant can match — a sound, ordered
                # superset straight from the value index.
                candidates = doc_index.child_candidates(node, lookup, required)
                ctx.seeks += 1
                ctx.hits += len(candidates)
            elif lookup is not None and by_label is not None:
                candidates = by_label.get(lookup, ())
            else:
                candidates = kids
            alts: List[dict] = []
            for child in candidates:
                bindings = item_fn(child, deref, ctx)
                if bindings:
                    claimed.add(id(child))
                    alts.extend(bindings)
            if not alts:
                return []
            alternatives.append(alts)
        rest_value: Optional[tuple] = None
        if rest_name is not None:
            rest_value = tuple(
                child for child in kids if id(child) not in claimed
            )
        # The explosion guard runs after every item matched — a failing
        # later item must return [] rather than raise, like the
        # interpreter.
        total = 1
        for alts in alternatives:
            total *= len(alts)
            if total > max_matches:
                raise BindError(
                    f"filter produces more than {max_matches} bindings "
                    f"for one tree; refusing the cartesian explosion"
                )
        results: List[dict] = []
        for combo in product(*alternatives):
            merged = dict(own)
            if rest_name is not None:
                merged[rest_name] = rest_value
            for binding in combo:
                merged.update(binding)
            results.append(merged)
        return results

    return match_elem


class CompiledFilter:
    """A filter compiled to closures, with its output schema precomputed."""

    __slots__ = ("filter", "variables", "access", "_match", "_max_matches")

    def __init__(self, flt: Filter, max_matches: int = 1_000_000) -> None:
        self.filter = flt
        #: Variables the filter binds, in declaration order (this also
        #: validates that no variable is bound twice, like the
        #: interpretive path does before matching).
        self.variables = flt.variables()
        #: Static sargability analysis; ``access.seekable`` tells the
        #: evaluator whether fetching a document index can pay off at all.
        self.access = index_eligibility(flt)
        self._match = _compile(flt, max_matches)
        self._max_matches = max_matches

    @property
    def max_matches(self) -> int:
        return self._max_matches

    def match(
        self, node: DataNode, deref=identity_deref, context=None
    ) -> List[dict]:
        return self._match(node, deref, context)

    def match_collection(
        self, nodes, deref=identity_deref, context=None
    ) -> List[dict]:
        match = self._match
        bound = self._max_matches
        out: List[dict] = []
        for node in nodes:
            out.extend(match(node, deref, context))
            if len(out) > bound:
                raise collection_explosion(bound)
        return out

    def __repr__(self) -> str:
        return f"CompiledFilter({self.filter!r})"


def compile_filter(flt: Filter, max_matches: int = 1_000_000) -> CompiledFilter:
    """Compile *flt* without memoization (tests, one-off matching)."""
    return CompiledFilter(flt, max_matches=max_matches)


_ORDERING_OPS = {
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


def _compile_expr(expr: Expr) -> Callable[..., object]:
    """Compile a predicate into ``fn(row, functions) -> value``."""
    if isinstance(expr, Var):
        name = expr.name

        def eval_var(row, functions):
            return row[name]

        return eval_var
    if isinstance(expr, Const):
        value = expr.value

        def eval_const(row, functions):
            return value

        return eval_const
    if isinstance(expr, Cmp):
        left = _compile_expr(expr.left)
        right = _compile_expr(expr.right)
        op = expr.op
        if op in ("=", "!="):
            want_equal = op == "="

            def eval_eq(row, functions):
                lhs = left(row, functions)
                if isinstance(lhs, DataNode) and lhs.atom is not None:
                    lhs = lhs.atom
                rhs = right(row, functions)
                if isinstance(rhs, DataNode) and rhs.atom is not None:
                    rhs = rhs.atom
                if isinstance(lhs, MissingValue) or isinstance(rhs, MissingValue):
                    return False
                return (lhs == rhs) if want_equal else (lhs != rhs)

            return eval_eq
        compare = _ORDERING_OPS[op]

        def eval_cmp(row, functions):
            lhs = left(row, functions)
            if isinstance(lhs, DataNode) and lhs.atom is not None:
                lhs = lhs.atom
            rhs = right(row, functions)
            if isinstance(rhs, DataNode) and rhs.atom is not None:
                rhs = rhs.atom
            if isinstance(lhs, MissingValue) or isinstance(rhs, MissingValue):
                return False
            try:
                return compare(lhs, rhs)
            except TypeError:
                raise EvaluationError(
                    f"cannot compare {lhs!r} {op} {rhs!r}"
                ) from None

        return eval_cmp
    if isinstance(expr, BoolAnd):
        operands = [_compile_expr(operand) for operand in expr.operands]

        def eval_and(row, functions):
            return all(bool(fn(row, functions)) for fn in operands)

        return eval_and
    if isinstance(expr, BoolOr):
        operands = [_compile_expr(operand) for operand in expr.operands]

        def eval_or(row, functions):
            return any(bool(fn(row, functions)) for fn in operands)

        return eval_or
    if isinstance(expr, BoolNot):
        inner = _compile_expr(expr.operand)

        def eval_not(row, functions):
            return not bool(inner(row, functions))

        return eval_not
    if isinstance(expr, FunCall):
        name = expr.name
        arg_fns = [_compile_expr(arg) for arg in expr.args]

        def eval_fun(row, functions):
            if not functions or name not in functions:
                raise EvaluationError(
                    f"no implementation for function {name!r} at the "
                    "mediator; it must be pushed to the source that "
                    "declared it"
                )
            values = [fn(row, functions) for fn in arg_fns]
            return functions[name](*values)

        return eval_fun
    # Unknown expression kinds stay interpretive.
    return expr.evaluate


def compile_predicate(expr: Expr) -> Callable[..., object]:
    """Compile *expr* without memoization (tests, one-off evaluation)."""
    return _compile_expr(expr)


class _KernelCache:
    """Bounded id-keyed memo of compiled kernels.

    Keys are ``id(obj)`` with the object itself kept in the entry, so a
    recycled id can never serve a stale kernel (the identity check
    rejects it).  Plans are immutable, so compiling per object identity
    is sound.  When full, the memo is simply cleared — recompilation is
    cheap and the bound exists only to keep long-lived servers flat;
    ``evictions`` counts the entries dropped by those clears.

    Shared process-wide across every concurrent execution, so lookups
    and stores are locked; the compile itself runs outside the lock (two
    threads missing on one key both compile — either kernel is correct).
    """

    __slots__ = ("_lock", "_entries", "_capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 4096) -> None:
        self._lock = _threading.Lock()
        self._entries: Dict[int, tuple] = {}
        self._capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, obj, build):
        key = id(obj)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is obj:
                self.hits += 1
                return entry[1]
            self.misses += 1
        value = build(obj)
        with self._lock:
            if len(self._entries) >= self._capacity:
                self.evictions += len(self._entries)
                self._entries.clear()
            self._entries[key] = (obj, value)
        return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity


_FILTER_KERNELS = _KernelCache()
_PREDICATE_KERNELS = _KernelCache()


def compiled_filter(flt: Filter) -> CompiledFilter:
    """The memoized compiled kernel for *flt* (keyed by plan-node identity)."""
    return _FILTER_KERNELS.get(flt, CompiledFilter)


def compiled_predicate(expr: Expr) -> Callable[..., object]:
    """The memoized compiled evaluator for *expr*."""
    return _PREDICATE_KERNELS.get(expr, _compile_expr)


def kernel_cache_stats() -> Dict[str, int]:
    """Counters for metrics: kernels resident, memo hits and compiles."""
    return {
        "filter_kernels": len(_FILTER_KERNELS),
        "predicate_kernels": len(_PREDICATE_KERNELS),
        "hits": _FILTER_KERNELS.hits + _PREDICATE_KERNELS.hits,
        "compiles": _FILTER_KERNELS.misses + _PREDICATE_KERNELS.misses,
        "evictions": _FILTER_KERNELS.evictions + _PREDICATE_KERNELS.evictions,
        "capacity": _FILTER_KERNELS.capacity + _PREDICATE_KERNELS.capacity,
    }


def reset_kernel_caches() -> None:
    """Drop all memoized kernels (tests, benchmarks)."""
    global _FILTER_KERNELS, _PREDICATE_KERNELS
    _FILTER_KERNELS = _KernelCache()
    _PREDICATE_KERNELS = _KernelCache()
