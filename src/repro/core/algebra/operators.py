"""Logical plan operators of the YAT XML algebra (paper, Section 3.1).

A plan is an immutable DAG of operator nodes.  ``Bind`` and ``Tree`` are
the two XML-specific frontier operators; between them live the classical
relational/object operators (``Select``, ``Project``, ``Join``, ``DJoin``,
``Union``, ``Intersect``, ``Group``, ``Sort``, ``Map``), all defined over
``Tab`` structures.  ``Source`` nodes are the named-document inputs, and
``Pushed`` marks a fragment delegated to a wrapper (the outcome of
capability-based rewriting, Section 5.3).

Rewrites never mutate plans: :meth:`Plan.with_children` produces modified
copies, and plans compare structurally so the optimizer can detect
fixpoints.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import AlgebraError
from repro.core.algebra.expressions import Expr
from repro.core.algebra.tree import Constructor
from repro.model.filters import Filter


class Plan:
    """Base class of plan operators.

    Operators are immutable after construction (rewrites build new
    nodes), so derived values — the canonical key, the outer-parameter
    set — are memoized on the instance in the two base slots.
    """

    __slots__ = ("_key_memo", "_params_memo")

    def children(self) -> Tuple["Plan", ...]:
        """Input plans of this operator."""
        return ()

    def with_children(self, children: Sequence["Plan"]) -> "Plan":
        """A copy of this operator with new input plans."""
        if children:
            raise AlgebraError(f"{type(self).__name__} takes no inputs")
        return self

    def walk(self) -> Iterator["Plan"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def output_columns(self) -> Tuple[str, ...]:
        """Names of the Tab columns this operator produces."""
        raise NotImplementedError

    def sources(self) -> Tuple[str, ...]:
        """Names of the sources this plan touches (document order)."""
        seen: list = []
        for node in self.walk():
            name = getattr(node, "source", None)
            if name is not None and name not in seen:
                seen.append(name)
        return tuple(seen)

    def _key(self) -> tuple:
        raise NotImplementedError

    def cached_key(self) -> tuple:
        """``self._key()``, computed once per instance."""
        try:
            return self._key_memo
        except AttributeError:
            key = self._key_memo = self._key()
            return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Plan):
            return NotImplemented
        return self.cached_key() == other.cached_key()

    def __hash__(self) -> int:
        return hash(self.cached_key())

    def operator_name(self) -> str:
        """Short name used in plan renderings (``Bind``, ``Select``...)."""
        return type(self).__name__.removesuffix("Op")

    def describe(self) -> str:
        """One-line description of this operator (no inputs)."""
        return self.operator_name()

    def pretty(self, indent: int = 0) -> str:
        """Indented multi-line plan rendering (root at top)."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


class SourceOp(Plan):
    """A named document exported by a source: the plan's input leaf.

    Evaluating a ``Source`` transfers the *whole* document from the
    wrapper to the mediator — exactly the cost capability-based pushdown
    exists to avoid.
    """

    __slots__ = ("source", "document")

    def __init__(self, source: str, document: str) -> None:
        self.source = source
        self.document = document

    def output_columns(self):
        return (self.document,)

    def _key(self):
        return ("source", self.source, self.document)

    def describe(self):
        return f"Source({self.source}.{self.document})"


class LiteralOp(Plan):
    """A constant Tab as a plan input.

    Used by tests and benchmarks to feed operators directly; never
    produced by translation or rewriting.
    """

    __slots__ = ("tab",)

    def __init__(self, tab) -> None:
        self.tab = tab

    def output_columns(self):
        return self.tab.columns

    def _key(self):
        return ("literal", self.tab.columns, tuple(r._value_key() for r in self.tab.rows))

    def describe(self):
        return f"Literal({len(self.tab)} rows)"


class UnitOp(Plan):
    """The unit input: a Tab with one empty row and no columns.

    Used as the input of a Bind standing on the right of a DJoin: the
    Bind's target column comes from the *outer* row, so the inner plan
    needs an input that contributes exactly one row and nothing else.
    """

    __slots__ = ()

    def output_columns(self):
        return ()

    def _key(self):
        return ("unit",)

    def describe(self):
        return "Unit"


class BindOp(Plan):
    """Pattern-match a filter against the trees bound in column ``on``.

    The output contains the input columns (minus ``on``, unless
    ``keep_on``) extended with the filter's variables; each way the filter
    matches contributes one output row.
    """

    __slots__ = ("input", "filter", "on", "keep_on")

    def __init__(self, input: Plan, filter: Filter, on: str, keep_on: bool = False) -> None:
        self.input = input
        self.filter = filter
        self.on = on
        self.keep_on = keep_on

    def children(self):
        return (self.input,)

    def with_children(self, children):
        (child,) = children
        return BindOp(child, self.filter, self.on, self.keep_on)

    def output_columns(self):
        base = [
            c for c in self.input.output_columns() if self.keep_on or c != self.on
        ]
        return tuple(base) + self.filter.variables()

    def _key(self):
        return ("bind", self.input._key(), self.filter._key(), self.on, self.keep_on)

    def describe(self):
        vars_text = ", ".join(f"${v}" for v in self.filter.variables())
        return f"Bind(on=${self.on} -> [{vars_text}])"


class SelectOp(Plan):
    """Keep rows satisfying the predicate."""

    __slots__ = ("input", "predicate")

    def __init__(self, input: Plan, predicate: Expr) -> None:
        self.input = input
        self.predicate = predicate

    def children(self):
        return (self.input,)

    def with_children(self, children):
        (child,) = children
        return SelectOp(child, self.predicate)

    def output_columns(self):
        return self.input.output_columns()

    def _key(self):
        return ("select", self.input._key(), self.predicate._key())

    def describe(self):
        return f"Select({self.predicate.text()})"


class ProjectOp(Plan):
    """Projection with renaming: keep ``(column, alias)`` pairs."""

    __slots__ = ("input", "items")

    def __init__(self, input: Plan, items: Sequence[Tuple[str, str]]) -> None:
        self.input = input
        self.items = tuple(items)

    @classmethod
    def keep(cls, input: Plan, columns: Sequence[str]) -> "ProjectOp":
        """Projection without renaming."""
        return cls(input, [(c, c) for c in columns])

    def children(self):
        return (self.input,)

    def with_children(self, children):
        (child,) = children
        return ProjectOp(child, self.items)

    def output_columns(self):
        return tuple(alias for _column, alias in self.items)

    @property
    def renaming(self) -> Dict[str, str]:
        """``{column: alias}`` view of the projection items."""
        return {column: alias for column, alias in self.items}

    def _key(self):
        return ("project", self.input._key(), self.items)

    def describe(self):
        parts = [
            f"${c}" if c == a else f"${c} as ${a}" for c, a in self.items
        ]
        return f"Project({', '.join(parts)})"


class JoinOp(Plan):
    """Independent join: both inputs are evaluated once."""

    __slots__ = ("left", "right", "predicate")

    def __init__(self, left: Plan, right: Plan, predicate: Expr) -> None:
        self.left = left
        self.right = right
        self.predicate = predicate

    def children(self):
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return JoinOp(left, right, self.predicate)

    def output_columns(self):
        return self.left.output_columns() + self.right.output_columns()

    def _key(self):
        return ("join", self.left._key(), self.right._key(), self.predicate._key())

    def describe(self):
        return f"Join({self.predicate.text()})"


class DJoinOp(Plan):
    """Dependency join: the right input is re-evaluated per left row.

    Columns of the current left row are visible as an *outer environment*
    inside the right plan (``Bind`` targets, predicate variables, pushed
    query parameters) — this is the "information passing" of Section 5.3.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: Plan, right: Plan) -> None:
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return DJoinOp(left, right)

    def output_columns(self):
        return self.left.output_columns() + self.right.output_columns()

    def _key(self):
        return ("djoin", self.left._key(), self.right._key())

    def describe(self):
        return "DJoin"


class UnionOp(Plan):
    """Set union of two compatible Tabs."""

    __slots__ = ("left", "right")

    def __init__(self, left: Plan, right: Plan) -> None:
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return UnionOp(left, right)

    def output_columns(self):
        return self.left.output_columns()

    def _key(self):
        return ("union", self.left._key(), self.right._key())


class IntersectOp(Plan):
    """Set intersection of two compatible Tabs."""

    __slots__ = ("left", "right")

    def __init__(self, left: Plan, right: Plan) -> None:
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return IntersectOp(left, right)

    def output_columns(self):
        return self.left.output_columns()

    def _key(self):
        return ("intersect", self.left._key(), self.right._key())


class DistinctOp(Plan):
    """Remove duplicate rows (set semantics)."""

    __slots__ = ("input",)

    def __init__(self, input: Plan) -> None:
        self.input = input

    def children(self):
        return (self.input,)

    def with_children(self, children):
        (child,) = children
        return DistinctOp(child)

    def output_columns(self):
        return self.input.output_columns()

    def _key(self):
        return ("distinct", self.input._key())


class GroupOp(Plan):
    """Group rows by some columns, nesting the rest as a collection.

    The output has the ``by`` columns plus one column ``into`` whose cells
    are tuples of sub-rows over the remaining columns.
    """

    __slots__ = ("input", "by", "into")

    def __init__(self, input: Plan, by: Sequence[str], into: str) -> None:
        self.input = input
        self.by = tuple(by)
        self.into = into

    def children(self):
        return (self.input,)

    def with_children(self, children):
        (child,) = children
        return GroupOp(child, self.by, self.into)

    def output_columns(self):
        return self.by + (self.into,)

    def _key(self):
        return ("group", self.input._key(), self.by, self.into)

    def describe(self):
        return f"Group(by={[f'${c}' for c in self.by]}, into=${self.into})"


class SortOp(Plan):
    """Sort rows by some columns."""

    __slots__ = ("input", "by", "descending")

    def __init__(self, input: Plan, by: Sequence[str], descending: bool = False) -> None:
        self.input = input
        self.by = tuple(by)
        self.descending = descending

    def children(self):
        return (self.input,)

    def with_children(self, children):
        (child,) = children
        return SortOp(child, self.by, self.descending)

    def output_columns(self):
        return self.input.output_columns()

    def _key(self):
        return ("sort", self.input._key(), self.by, self.descending)

    def describe(self):
        direction = " desc" if self.descending else ""
        return f"Sort({[f'${c}' for c in self.by]}{direction})"


class MapOp(Plan):
    """Extend every row with computed columns ``(name, expression)``."""

    __slots__ = ("input", "bindings")

    def __init__(self, input: Plan, bindings: Sequence[Tuple[str, Expr]]) -> None:
        self.input = input
        self.bindings = tuple(bindings)

    def children(self):
        return (self.input,)

    def with_children(self, children):
        (child,) = children
        return MapOp(child, self.bindings)

    def output_columns(self):
        return self.input.output_columns() + tuple(n for n, _e in self.bindings)

    def _key(self):
        return (
            "map",
            self.input._key(),
            tuple((n, e._key()) for n, e in self.bindings),
        )

    def describe(self):
        parts = ", ".join(f"${n} := {e.text()}" for n, e in self.bindings)
        return f"Map({parts})"


class TreeOp(Plan):
    """Build a nested document from the input Tab (the ``MAKE`` clause)."""

    __slots__ = ("input", "constructor", "document")

    def __init__(self, input: Plan, constructor: Constructor, document: str) -> None:
        self.input = input
        self.constructor = constructor
        self.document = document

    def children(self):
        return (self.input,)

    def with_children(self, children):
        (child,) = children
        return TreeOp(child, self.constructor, self.document)

    def output_columns(self):
        return (self.document,)

    def _key(self):
        return ("tree", self.input._key(), self.constructor._key(), self.document)

    def describe(self):
        return f"Tree(-> {self.document})"


class FuseOp(Plan):
    """Fuse the documents built by several rules into one (object fusion).

    Integration programs are "composed of a sequence of rules, whose
    partial results are connected together through Skolem functions"
    (paper, Section 2).  Each input plan builds a document; evaluation
    shares one Skolem registry across them (same arguments, same
    identifier) and merges the root's children by identifier — two rules
    contributing to ``artwork($t)`` produce one fused element.
    """

    __slots__ = ("inputs", "document")

    def __init__(self, inputs: Sequence[Plan], document: str) -> None:
        if not inputs:
            raise AlgebraError("Fuse requires at least one input")
        self.inputs = tuple(inputs)
        self.document = document

    def children(self):
        return self.inputs

    def with_children(self, children):
        return FuseOp(children, self.document)

    def output_columns(self):
        return (self.document,)

    def _key(self):
        return ("fuse", tuple(i._key() for i in self.inputs), self.document)

    def describe(self):
        return f"Fuse({len(self.inputs)} rules -> {self.document})"


class ScatterOp(Plan):
    """Scatter-gather over the shards of one partitioned logical source.

    Produced by the shard-expansion rewrite: each branch is the original
    ``[Project?][Select*]Bind(Source)`` chain re-targeted at one shard of
    the logical source.  Evaluation concatenates the branch Tabs in shard
    order — *bag* semantics, no ``distinct``: the partitioning function
    places every document on exactly one shard, so branches are disjoint
    by construction and the concatenation equals the logical source's
    shard-major document order.

    The logical source's name is deliberately held in ``logical`` rather
    than ``source``: :meth:`Plan.sources` (and therefore the result
    cache's version vector) discovers sources through the ``source``
    attribute, and a scatter plan's freshness depends only on the shards
    its surviving branches actually read.

    ``shard_ids`` are the shard indexes of the surviving branches (shard
    order); ``total`` is the full shard count, so ``len(branches)/total``
    is the pruning decision.  ``prune_param``, when set, names an outer
    column equated with the partition key inside the branches: per outer
    row, only the branch owning that row's key value is evaluated
    (information-passing pruning under a DJoin).
    """

    __slots__ = ("branches", "logical", "shard_ids", "total", "partition",
                 "prune_param")

    def __init__(
        self,
        branches: Sequence[Plan],
        logical: str,
        shard_ids: Sequence[int],
        total: int,
        partition,
        prune_param: Optional[str] = None,
    ) -> None:
        if not branches:
            raise AlgebraError("Scatter requires at least one branch")
        if len(branches) != len(shard_ids):
            raise AlgebraError("Scatter needs one shard id per branch")
        self.branches = tuple(branches)
        self.logical = logical
        self.shard_ids = tuple(shard_ids)
        self.total = total
        self.partition = partition
        self.prune_param = prune_param

    def children(self):
        return self.branches

    def with_children(self, children):
        return ScatterOp(
            children, self.logical, self.shard_ids, self.total,
            self.partition, self.prune_param,
        )

    def output_columns(self):
        return self.branches[0].output_columns()

    def _key(self):
        return (
            "scatter",
            self.logical,
            self.shard_ids,
            self.total,
            self.partition.spec_key(),
            self.prune_param,
            tuple(b._key() for b in self.branches),
        )

    def describe(self):
        param = f", prune=${self.prune_param}" if self.prune_param else ""
        return (
            f"Scatter({self.logical}, "
            f"{len(self.branches)}/{self.total} shards{param})"
        )


class PushedOp(Plan):
    """A plan fragment delegated to a wrapper.

    ``plan`` is the algebraic fragment the wrapper agreed to evaluate;
    ``native`` records the native query text the wrapper generated for it
    (OQL, a Wais request, SQL) for display and auditing.  Evaluation asks
    the wrapper and transfers only the resulting Tab.
    """

    __slots__ = ("source", "plan", "native")

    def __init__(self, source: str, plan: Plan, native: Optional[str] = None) -> None:
        self.source = source
        self.plan = plan
        self.native = native

    def children(self):
        # The inner plan is intentionally *not* a rewriting child: the
        # fragment now belongs to the wrapper and mediator rules must not
        # rewrite inside it.
        return ()

    def with_children(self, children):
        if children:
            raise AlgebraError("PushedOp has no rewritable children")
        return self

    def output_columns(self):
        return self.plan.output_columns()

    def _key(self):
        return ("pushed", self.source, self.plan._key(), self.native)

    def describe(self):
        native = f" [{self.native}]" if self.native else ""
        return f"Pushed@{self.source}{native}"

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        lines.append(self.plan.pretty(indent + 1))
        return "\n".join(lines)
