"""Holistic twig-pattern matching for ``Bind`` (TwigStack-style).

The recursive matchers (:mod:`repro.core.algebra.bind` and the compiled
kernels in :mod:`repro.core.algebra.compiled`) navigate node-at-a-time:
every element filter probes every candidate child object, and every
binding is assembled as a Python dict.  This module evaluates the same
filters *set-at-a-time* over the positional encoding that
:class:`~repro.model.indexes.DocumentIndex` already maintains — pre-order
positions plus subtree intervals, the classic pre/post scheme of the
TwigStack family:

* a **parent/child edge** on a literal label resolves through the
  index's per-label ``children_map`` (one grouping pass per label per
  document, then a dict probe per edge);
* a **descendant edge** (``**``) is a bisection of the label's sorted
  position list against the child's ``[pos, end)`` interval;
* bindings are fixed-width **tuples in declaration order** — no dicts,
  no per-binding merging — which the vectorized evaluator zips straight
  into Tab columns.

The compiler handles the *twig fragment* of the filter language: element
filters with literal string labels, variable/constant/rest items, ``*``
iteration, and ``**`` descents into literal labels, variables or
constants.  Everything else — :class:`LabelVar`/:class:`LabelRegex`
labels, nested ``**``/``*`` shapes, non-element roots — makes
:func:`compile_twig` return ``None`` and the caller falls back to the
recursive engines.  Reference and shared-node trees never reach the twig
path at all, because :func:`~repro.model.indexes.document_index` refuses
to index them (``supports_seek`` is ``False``).

The contract is strict parity: for every supported filter the twig join
produces exactly the bindings, in exactly the order, that
:meth:`FilterMatcher.match` produces — including the cartesian-explosion
guards — so the interpretive engine remains the differential oracle.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import product
from typing import Callable, List, Optional, Tuple

from repro.errors import BindError
from repro.model.filters import (
    FConst,
    FDescend,
    FElem,
    Filter,
    FRest,
    FStar,
    FVar,
)
from repro.model.indexes import DocumentIndex
from repro.model.trees import DataNode

__all__ = [
    "CompiledTwig",
    "compile_twig",
    "compiled_twig",
    "reset_twig_cache",
    "twig_cache_stats",
]

#: Same per-tree binding bound as the recursive engines (their default
#: ``max_matches``); the guard message is kept byte-identical.
MAX_MATCHES = 1_000_000

_EMPTY: Tuple[int, ...] = ()


def _explosion() -> BindError:
    return BindError(
        f"filter produces more than {MAX_MATCHES} bindings "
        f"for one tree; refusing the cartesian explosion"
    )


# ---------------------------------------------------------------------------
# Item compilers: one closure per filter item, candidates from positions
# ---------------------------------------------------------------------------
#
# Every item closure has the signature ``fn(index, pos, children, claimed)
# -> list of binding tuples`` where ``children`` is the precomputed list
# of direct-child positions of ``pos`` (``None`` unless some item needs
# it) and ``claimed`` is the set of child positions matched by at least
# one sibling item (``None`` when the element has no rest item, so the
# bookkeeping costs nothing).  Binding tuples are in the item's own
# declaration order.

def _bound_cell(node: DataNode):
    atom = node.atom
    return atom if atom is not None else node


def _compile_leaf_elem_item(target: FElem):
    """A fused closure for the frequent leaf shapes, or ``None``.

    ``artist($a)``-style items — an element filter with a literal label
    and at most one variable/constant child — dominate real twigs (every
    Figure 4 / q1 field access is one).  Matching them through the
    generic ``elem_item`` → ``match_at`` pair costs two Python frames and
    several property lookups per candidate; these closures do the same
    work inline, one frame per *item* instead of per candidate.  The
    bindings are exactly ``match_at``'s for the same shape.
    """
    label = target.label
    if not isinstance(label, str):
        return None
    var = target.var
    declared = target.children

    if not declared:
        if var is None:

            def bare_item(index, pos, children, claimed, _label=label):
                candidates = index.children_map(_label).get(pos, _EMPTY)
                if claimed is not None:
                    claimed.update(candidates)
                return [()] * len(candidates)

            return bare_item

        def node_item(index, pos, children, claimed, _label=label):
            nodes = index.preorder_nodes
            candidates = index.children_map(_label).get(pos, _EMPTY)
            if claimed is not None:
                claimed.update(candidates)
            return [(_bound_cell(nodes[child]),) for child in candidates]

        return node_item

    if len(declared) != 1:
        return None
    inner = declared[0]

    if isinstance(inner, FVar):

        def leaf_var_item(index, pos, children, claimed,
                          _label=label, _own=var is not None):
            nodes = index.preorder_nodes
            ends = index.subtree_ends
            alts: List[tuple] = []
            for child in index.children_map(_label).get(pos, _EMPTY):
                node = nodes[child]
                atom = node.atom
                if atom is not None:
                    alts.append((atom, atom) if _own else (atom,))
                else:
                    matched = False
                    sub = child + 1
                    end = ends[child]
                    while sub < end:
                        leaf = nodes[sub]
                        cell = leaf.atom
                        if cell is None:
                            cell = leaf
                        alts.append((node, cell) if _own else (cell,))
                        matched = True
                        sub = ends[sub]
                    if not matched:
                        continue
                if claimed is not None:
                    claimed.add(child)
            return alts

        return leaf_var_item

    if isinstance(inner, FConst):
        value = inner.value

        def leaf_const_item(index, pos, children, claimed,
                            _label=label, _value=value,
                            _own=var is not None):
            nodes = index.preorder_nodes
            ends = index.subtree_ends
            alts: List[tuple] = []
            for child in index.children_map(_label).get(pos, _EMPTY):
                node = nodes[child]
                atom = node.atom
                if atom is not None:
                    if atom != _value:
                        continue
                    alts.append((atom,) if _own else ())
                else:
                    matched = False
                    sub = child + 1
                    end = ends[child]
                    while sub < end:
                        cell = nodes[sub].atom
                        if cell is not None and cell == _value:
                            alts.append((node,) if _own else ())
                            matched = True
                        sub = ends[sub]
                    if not matched:
                        continue
                if claimed is not None:
                    claimed.add(child)
            return alts

        return leaf_const_item

    return None


def _compile_item(target: Filter):
    """``(needs_children, fn)`` for one (star-unwrapped) item, or ``None``."""
    if isinstance(target, FElem):
        specialized = _compile_leaf_elem_item(target)
        if specialized is not None:
            return False, specialized
        compiled = _compile_elem(target)
        if compiled is None:
            return None
        sub_label, sub_fn = compiled

        def elem_item(index, pos, children, claimed,
                      _label=sub_label, _sub=sub_fn):
            alts: List[tuple] = []
            for child in index.children_map(_label).get(pos, _EMPTY):
                bindings = _sub(index, child)
                if bindings:
                    if claimed is not None:
                        claimed.add(child)
                    alts.extend(bindings)
            return alts

        return False, elem_item

    if isinstance(target, FVar):

        def var_item(index, pos, children, claimed):
            if claimed is not None:
                claimed.update(children)
            nodes = index.preorder_nodes
            return [(_bound_cell(nodes[child]),) for child in children]

        return True, var_item

    if isinstance(target, FConst):
        value = target.value

        def const_item(index, pos, children, claimed, _value=value):
            nodes = index.preorder_nodes
            alts: List[tuple] = []
            for child in children:
                atom = nodes[child].atom
                if atom is not None and atom == _value:
                    if claimed is not None:
                        claimed.add(child)
                    alts.append(())
            return alts

        return True, const_item

    if isinstance(target, FDescend):
        inner = target.child
        if isinstance(inner, FElem):
            compiled = _compile_elem(inner)
            if compiled is None:
                return None
            sub_label, sub_fn = compiled

            def descend_elem_item(index, pos, children, claimed,
                                  _label=sub_label, _sub=sub_fn):
                ends = index.subtree_ends
                positions = index.label_list(_label)
                alts: List[tuple] = []
                for child in children:
                    lo = bisect_left(positions, child)
                    hi = bisect_left(positions, ends[child], lo)
                    bindings: List[tuple] = []
                    for descendant in positions[lo:hi]:
                        bindings.extend(_sub(index, descendant))
                    if bindings:
                        if claimed is not None:
                            claimed.add(child)
                        alts.extend(bindings)
                return alts

            return True, descend_elem_item

        if isinstance(inner, FVar):

            def descend_var_item(index, pos, children, claimed):
                nodes = index.preorder_nodes
                ends = index.subtree_ends
                alts: List[tuple] = []
                for child in children:
                    # Every descendant (the child included) matches a
                    # bare variable, so the child is always claimed.
                    if claimed is not None:
                        claimed.add(child)
                    for descendant in range(child, ends[child]):
                        alts.append((_bound_cell(nodes[descendant]),))
                return alts

            return True, descend_var_item

        if isinstance(inner, FConst):
            value = inner.value

            def descend_const_item(index, pos, children, claimed,
                                   _value=value):
                nodes = index.preorder_nodes
                ends = index.subtree_ends
                alts: List[tuple] = []
                for child in children:
                    bindings: List[tuple] = []
                    for descendant in range(child, ends[child]):
                        atom = nodes[descendant].atom
                        if atom is not None and atom == _value:
                            bindings.append(())
                    if bindings:
                        if claimed is not None:
                            claimed.add(child)
                        alts.extend(bindings)
                return alts

            return True, descend_const_item

        return None

    # LabelVar/LabelRegex elements are rejected by _compile_elem; a
    # nested star (FStar(FStar(...))) or stray FRest lands here.
    return None


# Item kinds for the fused element matcher, pre-resolved at compile time.
_BARE = 0       # childless element, no variable: binding ()
_NODE = 1       # childless element binding the node (or its atom)
_LEAF_VAR = 2   # element whose single child is a variable
_LEAF_CONST = 3  # element whose single child is a constant


def _fused_entry(item, slot):
    """``(label, (slot, kind, own, value))`` for a simple item, or ``None``."""
    target = item.child if isinstance(item, FStar) else item
    if not isinstance(target, FElem) or not isinstance(target.label, str):
        return None
    own = target.var is not None
    declared = target.children
    if not declared:
        return target.label, (slot, _NODE if own else _BARE, own, None)
    if len(declared) != 1:
        return None
    inner = declared[0]
    if isinstance(inner, FVar):
        return target.label, (slot, _LEAF_VAR, own, None)
    if isinstance(inner, FConst):
        return target.label, (slot, _LEAF_CONST, own, inner.value)
    return None


def _compile_fused_elem(label, var, declared, leaf_fn):
    """A single-walk matcher when every item is a simple field access.

    The generic ``match_at`` probes one per-label children map per item;
    a Figure 4 ``work`` element pays that four times per node.  When all
    items are childless-or-leaf elements with literal labels the whole
    element matches in *one* pass over its direct children, dispatching
    each child by label — the TwigStack edge checks collapse into a dict
    probe.  Bindings, claiming and rest semantics are exactly the
    oracle's; anything more complex returns ``None`` and takes the
    per-item path.
    """
    dispatch = {}
    part_is_item: List[bool] = []
    has_rest = False
    slot = 0
    for item in declared:
        if isinstance(item, FRest):
            has_rest = True
            part_is_item.append(False)
            continue
        part_is_item.append(True)
        entry = _fused_entry(item, slot)
        if entry is None:
            return None
        item_label, record = entry
        dispatch.setdefault(item_label, []).append(record)
        slot += 1
    n_items = slot
    table = {key: tuple(records) for key, records in dispatch.items()}
    parts = tuple(part_is_item)
    rest_is_last = has_rest and part_is_item[-1] is False

    def fused_match_at(index, pos, _var=var, _leaf=leaf_fn, _table=table,
                       _n=n_items, _parts=parts, _has_rest=has_rest,
                       _rest_is_last=rest_is_last):
        nodes = index.preorder_nodes
        node = nodes[pos]
        atom = node.atom
        if atom is not None:
            if _leaf is None:
                return []
            inner = _leaf(atom)
            if not inner or _var is None:
                return inner
            return [(atom,) + binding for binding in inner]

        ends = index.subtree_ends
        alternatives = [[] for _ in range(_n)]
        rest: Optional[List] = [] if _has_rest else None
        child = pos + 1
        end = ends[pos]
        while child < end:
            cnode = nodes[child]
            entries = _table.get(cnode.label)
            matched = False
            if entries is not None:
                catom = cnode.atom
                for islot, kind, own, value in entries:
                    if kind == _LEAF_VAR:
                        if catom is not None:
                            alternatives[islot].append(
                                (catom, catom) if own else (catom,)
                            )
                            matched = True
                        else:
                            sub = child + 1
                            cend = ends[child]
                            while sub < cend:
                                leaf = nodes[sub]
                                cell = leaf.atom
                                if cell is None:
                                    cell = leaf
                                alternatives[islot].append(
                                    (cnode, cell) if own else (cell,)
                                )
                                matched = True
                                sub = ends[sub]
                    elif kind == _BARE:
                        alternatives[islot].append(())
                        matched = True
                    elif kind == _NODE:
                        alternatives[islot].append(
                            (catom,) if catom is not None else (cnode,)
                        )
                        matched = True
                    else:  # _LEAF_CONST
                        if catom is not None:
                            if catom == value:
                                alternatives[islot].append(
                                    (catom,) if own else ()
                                )
                                matched = True
                        else:
                            sub = child + 1
                            cend = ends[child]
                            while sub < cend:
                                cell = nodes[sub].atom
                                if cell is not None and cell == value:
                                    alternatives[islot].append(
                                        (cnode,) if own else ()
                                    )
                                    matched = True
                                sub = ends[sub]
            if not matched and rest is not None:
                rest.append(cnode)
            child = ends[child]

        singletons = True
        for alts in alternatives:
            if not alts:
                return []
            if len(alts) != 1:
                singletons = False

        own_cells = (node,) if _var is not None else ()
        if singletons:
            row = own_cells
            if _has_rest:
                rest_value = tuple(rest)
                if _rest_is_last:
                    for alts in alternatives:
                        row += alts[0]
                    return [row + (rest_value,)]
                cursor = 0
                for is_item in _parts:
                    if is_item:
                        row += alternatives[cursor][0]
                        cursor += 1
                    else:
                        row += (rest_value,)
                return [row]
            for alts in alternatives:
                row += alts[0]
            return [row]

        total = 1
        for alts in alternatives:
            total *= len(alts)
            if total > MAX_MATCHES:
                raise _explosion()
        if not _has_rest:
            results: List[tuple] = []
            for combo in product(*alternatives):
                row = own_cells
                for part in combo:
                    row += part
                results.append(row)
            return results
        rest_value = tuple(rest)
        results = []
        if _rest_is_last:
            tail = (rest_value,)
            for combo in product(*alternatives):
                row = own_cells
                for part in combo:
                    row += part
                results.append(row + tail)
            return results
        for combo in product(*alternatives):
            row = own_cells
            cursor = 0
            for is_item in _parts:
                if is_item:
                    row += combo[cursor]
                    cursor += 1
                else:
                    row += (rest_value,)
            results.append(row)
        return results

    return fused_match_at


def _compile_elem(flt: FElem):
    """``(label, match_at)`` for one element filter, or ``None``.

    ``match_at(index, pos)`` assumes the node at ``pos`` already carries
    the element's label (candidates come from label-keyed lookups); the
    root entry point checks it explicitly.
    """
    label = flt.label
    if not isinstance(label, str):
        return None
    var = flt.var
    declared = flt.children

    if not declared:
        if var is not None:

            def match_leaf_elem(index, pos):
                return [(_bound_cell(index.preorder_nodes[pos]),)]

            return label, match_leaf_elem

        def match_bare_elem(index, pos):
            return [()]

        return label, match_bare_elem

    # Atom-leaf content: an element filter whose single child is a
    # variable or constant can match an atom leaf (bind.py's
    # _match_leaf_content).  Built from the *raw* child — a starred or
    # rest single child never matches a leaf, exactly like the oracle.
    leaf_fn: Optional[Callable] = None
    if len(declared) == 1:
        raw = declared[0]
        if isinstance(raw, FVar):
            leaf_fn = lambda atom: [(atom,)]  # noqa: E731
        elif isinstance(raw, FConst):
            leaf_value = raw.value
            leaf_fn = (
                lambda atom, _v=leaf_value: [()] if atom == _v else []
            )  # noqa: E731

    fused = _compile_fused_elem(label, var, declared, leaf_fn)
    if fused is not None:
        return label, fused

    item_fns: List[Callable] = []
    part_is_item: List[bool] = []  # declared order; False marks the rest
    has_rest = False
    needs_children = False
    for item in declared:
        if isinstance(item, FRest):
            has_rest = True
            part_is_item.append(False)
            continue
        part_is_item.append(True)
        target = item.child if isinstance(item, FStar) else item
        compiled = _compile_item(target)
        if compiled is None:
            return None
        item_needs_children, fn = compiled
        needs_children = needs_children or item_needs_children
        item_fns.append(fn)
    needs_children = needs_children or has_rest
    rest_is_last = has_rest and part_is_item[-1] is False
    parts = tuple(part_is_item)
    items = tuple(item_fns)
    single_item = len(items) == 1 and not has_rest

    def match_at(index, pos, _var=var, _items=items, _parts=parts,
                 _leaf=leaf_fn, _has_rest=has_rest,
                 _needs_children=needs_children,
                 _rest_is_last=rest_is_last, _single=single_item):
        nodes = index.preorder_nodes
        node = nodes[pos]
        atom = node.atom
        if atom is not None:
            if _leaf is None:
                return []
            inner = _leaf(atom)
            if not inner or _var is None:
                return inner
            return [(atom,) + binding for binding in inner]

        claimed: Optional[set] = set() if _has_rest else None
        children: Optional[List[int]] = None
        if _needs_children:
            ends = index.subtree_ends
            children = []
            child = pos + 1
            end = ends[pos]
            while child < end:
                children.append(child)
                child = ends[child]

        alternatives: List[List[tuple]] = []
        singletons = True
        for fn in _items:
            alts = fn(index, pos, children, claimed)
            if not alts:
                return []
            if len(alts) != 1:
                singletons = False
            alternatives.append(alts)

        own = (node,) if _var is not None else ()
        if singletons:
            # One combination total (the overwhelmingly common case):
            # concatenate in place of the product machinery.
            row = own
            if _has_rest:
                rest_value = tuple(
                    nodes[child] for child in children
                    if child not in claimed
                )
                if _rest_is_last:
                    for alts in alternatives:
                        row += alts[0]
                    return [row + (rest_value,)]
                cursor = 0
                for is_item in _parts:
                    if is_item:
                        row += alternatives[cursor][0]
                        cursor += 1
                    else:
                        row += (rest_value,)
                return [row]
            for alts in alternatives:
                row += alts[0]
            return [row]

        total = 1
        for alts in alternatives:
            total *= len(alts)
            if total > MAX_MATCHES:
                raise _explosion()

        if not _has_rest:
            if _single:
                alts = alternatives[0]
                if _var is None:
                    return alts
                return [own + binding for binding in alts]
            results: List[tuple] = []
            for combo in product(*alternatives):
                row = own
                for part in combo:
                    row += part
                results.append(row)
            return results

        rest_value = tuple(
            nodes[child] for child in children if child not in claimed
        )
        results = []
        if _rest_is_last:
            tail = (rest_value,)
            for combo in product(*alternatives):
                row = own
                for part in combo:
                    row += part
                results.append(row + tail)
            return results
        for combo in product(*alternatives):
            row = own
            cursor = 0
            for is_item in _parts:
                if is_item:
                    row += combo[cursor]
                    cursor += 1
                else:
                    row += (rest_value,)
            results.append(row)
        return results

    return label, match_at


# ---------------------------------------------------------------------------
# Public surface
# ---------------------------------------------------------------------------

class CompiledTwig:
    """A filter compiled to a positional twig join over a DocumentIndex.

    :meth:`match` returns binding *tuples* whose cells line up with
    :attr:`variables` (the filter's declaration order) — the vectorized
    Bind zips them straight into columns.  The caller is responsible for
    only offering roots the index covers (``index.covers(root)``).
    """

    __slots__ = ("filter", "variables", "_root_label", "_root_fn")

    def __init__(self, flt: Filter, root_label: str, root_fn: Callable) -> None:
        self.filter = flt
        self.variables: Tuple[str, ...] = flt.variables()
        self._root_label = root_label
        self._root_fn = root_fn

    @property
    def max_matches(self) -> int:
        return MAX_MATCHES

    def match(self, root: DataNode, index: DocumentIndex) -> List[tuple]:
        """All binding tuples of the filter against *root*, via *index*."""
        if root.label != self._root_label:
            return []
        return self._root_fn(index, index.position_of(root))

    def match_collection(
        self, roots, index: DocumentIndex
    ) -> List[tuple]:
        """Union of :meth:`match` over *roots*, with the collection guard."""
        from repro.core.algebra.bind import collection_explosion

        bindings: List[tuple] = []
        for root in roots:
            bindings.extend(self.match(root, index))
            if len(bindings) > MAX_MATCHES:
                raise collection_explosion(MAX_MATCHES)
        return bindings


def compile_twig(flt: Filter) -> Optional[CompiledTwig]:
    """Compile *flt* to a twig join, or ``None`` outside the fragment."""
    if not isinstance(flt, FElem):
        return None
    compiled = _compile_elem(flt)
    if compiled is None:
        return None
    label, fn = compiled
    return CompiledTwig(flt, label, fn)


# Bounded id-keyed memo, same shape as the compiled-kernel caches; the
# entry may be None (filter outside the twig fragment), which the memo
# remembers so ineligible filters are analyzed once, not per Bind.
from repro.core.algebra.compiled import _KernelCache  # noqa: E402

_TWIG_KERNELS = _KernelCache()


def compiled_twig(flt: Filter) -> Optional[CompiledTwig]:
    """Memoized :func:`compile_twig` (keyed by filter identity)."""
    return _TWIG_KERNELS.get(flt, compile_twig)


def twig_cache_stats() -> dict:
    """Counters for metrics: twigs resident, memo hits and compiles."""
    return {
        "entries": len(_TWIG_KERNELS),
        "hits": _TWIG_KERNELS.hits,
        "compiles": _TWIG_KERNELS.misses,
        "evictions": _TWIG_KERNELS.evictions,
        "capacity": _TWIG_KERNELS.capacity,
    }


def reset_twig_cache() -> None:
    """Drop all memoized twigs (tests, benchmarks)."""
    global _TWIG_KERNELS
    _TWIG_KERNELS = _KernelCache()
