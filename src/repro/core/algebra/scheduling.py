"""Federated execution scheduling: policy, thread pool, source-call cache.

The paper's mediator minimizes its *own* work by shipping fragments to
wrapped sources, but the seed evaluator still talks to those sources one
call at a time: Union branches over disjoint sources evaluate serially,
and a DJoin issues one pushed round trip per outer row even when the
outer values repeat.  This module holds the machinery the evaluator uses
to remove that serialization without changing any answer:

* :class:`ExecutionPolicy` — immutable knobs (``parallelism``,
  ``cache_source_calls``, ``batch_djoin``).  The default keeps
  ``parallelism=1``, so evaluation order — and therefore every side
  effect visible to a single-threaded run — is unchanged;
* :class:`PlanScheduler` — a bounded thread pool for concurrent branch
  evaluation that cannot deadlock under nesting: a waiting thread
  reclaims any task the pool has not started yet and runs it inline;
* :class:`SourceCallCache` — a per-execution memo of wrapper round trips
  keyed by ``(operation, source, canonical plan key, outer constants)``;
* :func:`plan_parameters` — the outer columns a plan can observe, which
  is both the DJoin batching key and the pushed-call cache key.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.algebra.operators import (
    BindOp,
    DJoinOp,
    FuseOp,
    IntersectOp,
    JoinOp,
    LiteralOp,
    MapOp,
    Plan,
    PushedOp,
    SelectOp,
    SourceOp,
    UnionOp,
    UnitOp,
)
from repro.core.algebra.tab import Row
from repro.model.filters import MissingValue
from repro.model.trees import DataNode


class ExecutionPolicy:
    """Immutable configuration of the federated execution scheduler.

    ``parallelism`` bounds the number of plan branches evaluated
    concurrently; ``1`` (the default) keeps the seed's strictly serial
    evaluation order.  ``cache_source_calls`` memoizes wrapper round
    trips for the duration of one execution, and ``batch_djoin`` makes a
    DJoin evaluate its right input once per *distinct* outer binding
    tuple instead of once per left row.  ``compile_kernels`` runs Bind
    filters and Select/Join predicates through the compiled closures of
    :mod:`repro.core.algebra.compiled` instead of the interpretive
    matcher/evaluator.  ``use_document_indexes`` lets seekable Bind
    filters consult the lazy per-document label/value indexes of
    :mod:`repro.model.indexes` (associative access) instead of scanning.
    ``vectorize`` switches the evaluator's Select/Join/Union/DJoin and
    Bind output onto columnar Tab batches (late materialization) instead
    of per-row ``Row`` objects, and ``twig_joins`` lets twig-expressible
    Bind filters run as one holistic positional join
    (:mod:`repro.core.algebra.twig`) over indexed documents instead of
    recursive descent.  All are on by default: they never change the
    produced Tab, only the amount of mediator work.
    """

    __slots__ = (
        "parallelism", "cache_source_calls", "batch_djoin",
        "compile_kernels", "use_document_indexes", "vectorize",
        "twig_joins",
    )

    def __init__(
        self,
        parallelism: int = 1,
        cache_source_calls: bool = True,
        batch_djoin: bool = True,
        compile_kernels: bool = True,
        use_document_indexes: bool = True,
        vectorize: bool = True,
        twig_joins: bool = True,
    ) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.cache_source_calls = cache_source_calls
        self.batch_djoin = batch_djoin
        self.compile_kernels = compile_kernels
        self.use_document_indexes = use_document_indexes
        self.vectorize = vectorize
        self.twig_joins = twig_joins

    @classmethod
    def serial(cls) -> "ExecutionPolicy":
        """The seed behavior, byte for byte: no pool, no cache, no
        batching, interpretive matching, no indexes, row-at-a-time
        execution (the differential oracle)."""
        return cls(
            parallelism=1,
            cache_source_calls=False,
            batch_djoin=False,
            compile_kernels=False,
            use_document_indexes=False,
            vectorize=False,
            twig_joins=False,
        )

    @classmethod
    def parallel(cls, parallelism: int = 4) -> "ExecutionPolicy":
        """Concurrent dispatch with caching and batching on."""
        return cls(parallelism=parallelism)

    @property
    def concurrent(self) -> bool:
        return self.parallelism > 1

    def __repr__(self) -> str:
        return (
            f"ExecutionPolicy(parallelism={self.parallelism}, "
            f"cache_source_calls={self.cache_source_calls}, "
            f"batch_djoin={self.batch_djoin}, "
            f"compile_kernels={self.compile_kernels}, "
            f"use_document_indexes={self.use_document_indexes}, "
            f"vectorize={self.vectorize}, "
            f"twig_joins={self.twig_joins})"
        )


class PlanScheduler:
    """Bounded thread pool for concurrent plan-branch evaluation.

    Deadlock freedom under nesting (a parallel Union inside a parallel
    Join, say) relies on one rule: :meth:`run` submits every thunk to the
    pool, then — instead of blocking on a queued task — *reclaims* it.
    ``Future.cancel`` succeeds exactly when the pool has not started the
    task, in which case the waiting thread runs the thunk inline.  A
    thread therefore only ever blocks on tasks actually running on some
    other thread, and those terminate; a saturated pool degrades to
    inline (serial) evaluation instead of deadlocking.
    """

    def __init__(self, parallelism: int) -> None:
        if parallelism < 2:
            raise ValueError("a scheduler needs parallelism >= 2")
        self.parallelism = parallelism
        self._executor = ThreadPoolExecutor(
            max_workers=parallelism, thread_name_prefix="yat-exec"
        )

    def run(
        self, thunks: Sequence[Callable[[], object]], tracer=None, context=None
    ) -> List[tuple]:
        """Evaluate *thunks*, returning ``(value, error)`` pairs in order.

        Exactly one of the pair is ``None``; errors are captured rather
        than raised so the caller can apply its own propagation order
        (the evaluator prefers the leftmost branch's error, matching
        serial semantics).

        When *tracer* is given, each thunk is bound to the dispatching
        thread's open span (:meth:`~repro.observability.tracer.Tracer.bind`),
        so spans created on pool threads — or inline on the reclaim
        path — parent exactly as they would under serial evaluation.

        When *context* is given, each thunk additionally runs under that
        :class:`~repro.observability.context.RequestContext` — bound
        *outermost*, so the request's kernel mode and call cache are
        already active when the tracer binding installs its span parent.
        One scheduler pool may serve many concurrent requests; the
        binding is what keeps each thunk inside its own request.
        """
        if tracer is None and context is not None:
            tracer = context.tracer
        if tracer is not None:
            thunks = [tracer.bind(thunk) for thunk in thunks]
        if context is not None:
            thunks = [context.bind(thunk) for thunk in thunks]
        futures = [self._executor.submit(_capture, thunk) for thunk in thunks]
        results: List[tuple] = []
        for future, thunk in zip(futures, thunks):
            if future.cancel():
                results.append(_capture(thunk))
            else:
                results.append(future.result())
        return results

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)


def _capture(thunk: Callable[[], object]) -> tuple:
    try:
        return (thunk(), None)
    except BaseException as error:  # re-raised by the caller, in branch order
        return (None, error)


class SourceCallCache:
    """Per-execution memo of wrapper round trips.

    Entries are keyed by ``(operation, source, canonical plan key, outer
    constants)`` — everything a deterministic source call can depend on.
    Sources are read-only for the duration of one execution (the paper's
    setting), so a repeated call is pure waste; the evaluator consults
    the cache before crossing the wrapper boundary and records a
    ``cache_hits`` stat instead of a call on a hit.

    The table is guarded by one lock, but misses run *outside* it: a slow
    source never serializes unrelated calls.  Two threads missing on the
    same key may both call the source — results are deterministic, so
    either write is correct.
    """

    __slots__ = ("_lock", "_entries")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[tuple, object] = {}

    def lookup(self, key: tuple) -> Tuple[bool, object]:
        with self._lock:
            if key in self._entries:
                return True, self._entries[key]
        return False, None

    def store(self, key: tuple, value: object) -> None:
        with self._lock:
            self._entries[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# ---------------------------------------------------------------------------
# Outer-parameter analysis
# ---------------------------------------------------------------------------

def plan_parameters(plan: Plan) -> frozenset:
    """Outer columns *plan* can observe during evaluation.

    A column is a parameter when some operator resolves it against the
    outer environment rather than its own input: a ``Bind`` whose target
    is not an input column, a predicate/Map variable no input provides,
    or a pushed fragment inlining an outer constant (information
    passing).  Two outer rows that agree on these columns — compared by
    :func:`identity_cell_key` — make the plan evaluate identically,
    which is exactly what DJoin batching and the pushed-call cache key
    on.

    Memoized on the (immutable) plan instance at every level of the
    recursion: a DJoin recomputes its right fragment's parameters once
    per outer row, and the pushed-call cache once per round trip.
    """
    try:
        return plan._params_memo
    except AttributeError:
        parameters = plan._params_memo = _plan_parameters(plan)
        return parameters


def _plan_parameters(plan: Plan) -> frozenset:
    if isinstance(plan, (UnitOp, LiteralOp, SourceOp)):
        return frozenset()
    if isinstance(plan, PushedOp):
        return plan_parameters(plan.plan)
    if isinstance(plan, BindOp):
        free = set(plan_parameters(plan.input))
        if plan.on not in plan.input.output_columns():
            free.add(plan.on)
        return frozenset(free)
    if isinstance(plan, SelectOp):
        local = set(plan.input.output_columns())
        return plan_parameters(plan.input) | (
            set(plan.predicate.variables()) - local
        )
    if isinstance(plan, MapOp):
        local = set(plan.input.output_columns())
        free = set(plan_parameters(plan.input))
        for _name, expr in plan.bindings:
            free |= set(expr.variables()) - local
        return frozenset(free)
    if isinstance(plan, JoinOp):
        local = set(plan.left.output_columns()) | set(plan.right.output_columns())
        return (
            plan_parameters(plan.left)
            | plan_parameters(plan.right)
            | (set(plan.predicate.variables()) - local)
        )
    if isinstance(plan, DJoinOp):
        return plan_parameters(plan.left) | (
            plan_parameters(plan.right) - set(plan.left.output_columns())
        )
    if isinstance(plan, (UnionOp, IntersectOp)):
        return plan_parameters(plan.left) | plan_parameters(plan.right)
    if isinstance(plan, FuseOp):
        free: frozenset = frozenset()
        for input_plan in plan.inputs:
            free |= plan_parameters(input_plan)
        return free
    # Distinct, Project, Group, Sort, Tree: column references resolve
    # against the input Tab only, never the outer environment.
    result: frozenset = frozenset()
    for child in plan.children():
        result |= plan_parameters(child)
    return result


#: Marker for a parameter column absent from the outer row (the plan
#: will fail to resolve it the same way every time, so keying on the
#: absence is sound).
ABSENT = ("absent",)


def identity_cell_key(cell: object) -> tuple:
    """Hashable key under which equal cells evaluate identically.

    Stricter than structural ``Row`` equality: node identifiers are
    *included* (``_value_key`` excludes them), because ``ref_is`` joins
    and reference dereferencing distinguish structurally equal nodes
    with different identities.
    """
    if isinstance(cell, DataNode):
        return (
            "node",
            cell.label,
            cell.collection,
            cell.ident,
            cell.atom if cell.is_atom_leaf else None,
            cell.ref_target if cell.is_reference else None,
            tuple(identity_cell_key(child) for child in cell.children),
        )
    if isinstance(cell, tuple):
        return ("coll",) + tuple(identity_cell_key(item) for item in cell)
    if isinstance(cell, MissingValue):
        return ("missing",)
    if isinstance(cell, Row):
        return (
            "row",
            cell.columns,
            tuple(identity_cell_key(c) for c in cell.cells),
        )
    return ("atom", type(cell).__name__, cell)


def outer_binding_key(
    outer: Optional[Row], parameters: frozenset
) -> tuple:
    """The projection of *outer* onto *parameters*, as a hashable key."""
    if not parameters:
        return ()
    parts = []
    for column in sorted(parameters):
        if outer is not None and column in outer:
            parts.append((column, identity_cell_key(outer[column])))
        else:
            parts.append((column, ABSENT))
    return tuple(parts)
