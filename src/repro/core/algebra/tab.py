"""The ``Tab`` structure: a ¬1NF relation over variable bindings.

"Starting from an arbitrary XML structure, we apply an operator, called
Bind, whose purpose is to extract the relevant information and produce a
structure, called Tab, comparable to a ¬1NF relation" (paper, Section 3.1).

A :class:`Tab` has named columns (the filter variables, without the ``$``
sigil) and rows of cells.  A cell holds:

* an atom (``int``/``float``/``str``/``bool``) — a bound leaf value,
* a :class:`~repro.model.trees.DataNode` — a bound subtree,
* a tuple of cells — a bound *collection* (edge variables like
  ``$fields`` in Figure 4, or the output of ``Group``),
* :data:`~repro.model.filters.MISSING` — an optional item that matched
  nothing.

Tabs are the unit of exchange between wrappers and the mediator: a pushed
``Bind`` returns a Tab serialized in XML, and
:func:`tab_to_xml`/:func:`xml_to_tab` define that wire format.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import AlgebraError, UnknownVariableError, XmlFormatError
from repro.model.filters import MISSING, MissingValue
from repro.model.trees import DataNode
from repro.model.values import atom_type_name, is_atom, parse_atom
from repro.model.xml_io import (
    decode_atom_text,
    element_to_tree,
    element_size,
    encode_atom_text,
    escaped_text_size,
    serialized_size,
    tree_to_element,
)

Cell = object  # Atom | DataNode | tuple | MissingValue

#: Bounded process-wide memo of column shapes.  Keyed by the columns
#: tuple itself; the value is ``(interned_tuple, {name: position})`` so
#: every Row/Tab of the same shape shares one tuple and one position map
#: (O(1) column probes instead of ``tuple.index``'s O(n) scan).  Cleared
#: wholesale when full, like the other bounded memos in this codebase.
_COLUMN_MAP_CAPACITY = 4096
_COLUMN_MAPS: dict = {}


def _column_map(columns: Sequence[str]) -> Tuple[Tuple[str, ...], dict]:
    columns = tuple(columns)
    entry = _COLUMN_MAPS.get(columns)
    if entry is None:
        if len(_COLUMN_MAPS) >= _COLUMN_MAP_CAPACITY:
            _COLUMN_MAPS.clear()
        positions: dict = {}
        for index, name in enumerate(columns):
            # First occurrence wins, matching ``tuple.index`` semantics
            # for (pathological) duplicate column names.
            if name not in positions:
                positions[name] = index
        entry = (columns, positions)
        _COLUMN_MAPS[columns] = entry
    return entry


def column_map_stats() -> dict:
    """Entries/capacity of the shared column-shape memo (observability)."""
    return {
        "entries": len(_COLUMN_MAPS),
        "capacity": _COLUMN_MAP_CAPACITY,
        "evictions": 0,
    }


class Row:
    """One row of a :class:`Tab`: an immutable mapping column -> cell."""

    __slots__ = ("_columns", "_cells", "_positions", "_vkey", "_vhash")

    def __init__(self, columns: Sequence[str], cells: Sequence[Cell]) -> None:
        if len(columns) != len(cells):
            raise AlgebraError(
                f"row arity mismatch: {len(columns)} columns, {len(cells)} cells"
            )
        self._columns, self._positions = _column_map(columns)
        self._cells = tuple(cells)
        # Rows are immutable; the structural key and hash are computed at
        # most once per row (distinct(), hash-join probes, set operators
        # all consume them repeatedly).
        self._vkey = None
        self._vhash = None

    @property
    def columns(self) -> Tuple[str, ...]:
        return self._columns

    @property
    def cells(self) -> Tuple[Cell, ...]:
        return self._cells

    def __getitem__(self, column: str) -> Cell:
        index = self._positions.get(column)
        if index is None:
            raise UnknownVariableError(
                f"unknown variable ${column}; row has {list(self._columns)}"
            )
        return self._cells[index]

    def get(self, column: str, default: Cell = None) -> Cell:
        """Like ``dict.get`` over the row's columns."""
        index = self._positions.get(column)
        if index is None:
            return default
        return self._cells[index]

    def __contains__(self, column: str) -> bool:
        return column in self._positions

    def as_dict(self) -> dict:
        """A fresh ``{column: cell}`` dictionary for this row."""
        return dict(zip(self._columns, self._cells))

    def extended(self, columns: Sequence[str], cells: Sequence[Cell]) -> "Row":
        """A new row with extra columns appended."""
        return Row(self._columns + tuple(columns), self._cells + tuple(cells))

    def projected(self, columns: Sequence[str]) -> "Row":
        """A new row restricted to *columns*, in the given order."""
        return Row(tuple(columns), tuple(self[c] for c in columns))

    def renamed(self, mapping: dict) -> "Row":
        """A new row with columns renamed through *mapping* (old -> new)."""
        return Row(
            tuple(mapping.get(c, c) for c in self._columns), self._cells
        )

    def _value_key(self) -> tuple:
        key = self._vkey
        if key is None:
            key = self._vkey = (
                self._columns,
                tuple(_cell_key(cell) for cell in self._cells),
            )
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self._value_key() == other._value_key()

    def __hash__(self) -> int:
        h = self._vhash
        if h is None:
            h = self._vhash = hash(self._value_key())
        return h

    def __repr__(self) -> str:
        pairs = ", ".join(f"${c}={v!r}" for c, v in zip(self._columns, self._cells))
        return f"Row({pairs})"


def _cell_key(cell: Cell) -> object:
    """Hashable structural key for a cell (used for set semantics)."""
    if isinstance(cell, tuple):
        return ("coll",) + tuple(_cell_key(item) for item in cell)
    if isinstance(cell, DataNode):
        return ("node", cell._value_key())
    if isinstance(cell, MissingValue):
        return ("missing",)
    if isinstance(cell, Row):
        return ("row", cell._value_key())
    return ("atom", type(cell).__name__, cell)


class Tab:
    """A ¬1NF relation: named columns plus a sequence of rows.

    Storage is dual: a Tab holds either materialized :class:`Row` objects
    (the seed representation, still the wire/wrapper format) or parallel
    per-column cell arrays (the vectorized evaluator's batch format, see
    :meth:`from_columns`).  Either side is derived lazily from the other
    and cached — *late materialization*: a columnar Tab only pays for Row
    objects when a row-at-a-time consumer (serialization, tree
    construction, the interpretive oracle) actually iterates it.
    """

    __slots__ = ("_columns", "_rows", "_cols", "_length", "_ssize")

    def __init__(self, columns: Sequence[str], rows: Iterable[Row] = ()) -> None:
        self._columns, _ = _column_map(columns)
        rows = tuple(rows)
        for row in rows:
            if row.columns is not self._columns and row.columns != self._columns:
                raise AlgebraError(
                    f"row columns {row.columns} do not match tab columns {self._columns}"
                )
        self._rows = rows
        self._cols = None
        self._length = len(rows)
        # Serialized byte size, cached by ``tab_serialized_size`` — a
        # wrapper-cached pushed result is re-measured on every hit.
        self._ssize = None

    @classmethod
    def from_dicts(cls, columns: Sequence[str], dicts: Iterable[dict]) -> "Tab":
        """Build a Tab from dictionaries (missing keys become MISSING)."""
        columns = tuple(columns)
        rows = [
            Row(columns, tuple(d.get(c, MISSING) for c in columns)) for d in dicts
        ]
        return cls(columns, rows)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[str],
        column_data: Sequence[Sequence[Cell]],
        length: int = None,
    ) -> "Tab":
        """Build a columnar Tab from parallel per-column cell arrays.

        No Row objects are created; they materialize lazily on first
        row-wise access.  All columns must share one length (pass
        *length* explicitly for the zero-column edge case).
        """
        tab = cls.__new__(cls)
        tab._columns, _ = _column_map(columns)
        cols = tuple(
            data if type(data) is tuple else tuple(data) for data in column_data
        )
        if len(cols) != len(tab._columns):
            raise AlgebraError(
                f"column data arity mismatch: {len(tab._columns)} columns, "
                f"{len(cols)} arrays"
            )
        if length is None:
            length = len(cols[0]) if cols else 0
        for data in cols:
            if len(data) != length:
                raise AlgebraError(
                    f"ragged column data: expected {length} cells, got {len(data)}"
                )
        tab._rows = None
        tab._cols = cols
        tab._length = length
        tab._ssize = None
        return tab

    @property
    def columns(self) -> Tuple[str, ...]:
        return self._columns

    @property
    def rows(self) -> Tuple[Row, ...]:
        rows = self._rows
        if rows is None:
            columns = self._columns
            if self._cols:
                rows = tuple(Row(columns, cells) for cells in zip(*self._cols))
            else:
                rows = tuple(Row(columns, ()) for _ in range(self._length))
            self._rows = rows
        return rows

    @property
    def is_columnar(self) -> bool:
        """True while the Tab holds only column arrays (no Row objects)."""
        return self._rows is None

    def column_data(self) -> Tuple[Tuple[Cell, ...], ...]:
        """Parallel per-column cell arrays (derived from rows if needed)."""
        cols = self._cols
        if cols is None:
            if self._rows:
                cols = tuple(zip(*(row.cells for row in self._rows)))
            else:
                cols = tuple(() for _ in self._columns)
            self._cols = cols
        return cols

    def column(self, name: str) -> Tuple[Cell, ...]:
        """One column's cells, by name."""
        index = _column_map(self._columns)[1].get(name)
        if index is None:
            raise UnknownVariableError(
                f"unknown variable ${name}; tab has {list(self._columns)}"
            )
        return self.column_data()[index]

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tab):
            return NotImplemented
        return self._columns == other._columns and self.rows == other.rows

    def __repr__(self) -> str:
        return f"Tab({list(self._columns)}, {self._length} rows)"

    # -- algebra-support helpers -------------------------------------------

    def project(self, columns: Sequence[str]) -> "Tab":
        """Restrict every row to *columns* (order preserved as given)."""
        columns = tuple(columns)
        if self._rows is None:
            positions = _column_map(self._columns)[1]
            data = []
            for name in columns:
                index = positions.get(name)
                if index is None:
                    raise UnknownVariableError(
                        f"unknown variable ${name}; row has {list(self._columns)}"
                    )
                data.append(self._cols[index])
            return Tab.from_columns(columns, data, self._length)
        return Tab(columns, [row.projected(columns) for row in self._rows])

    def rename(self, mapping: dict) -> "Tab":
        """Rename columns through *mapping* (old -> new)."""
        renamed = tuple(mapping.get(c, c) for c in self._columns)
        if self._rows is None:
            return Tab.from_columns(renamed, self._cols, self._length)
        return Tab(renamed, [row.renamed(mapping) for row in self._rows])

    def select(self, predicate: Callable[[Row], bool]) -> "Tab":
        """Keep rows satisfying *predicate*."""
        return Tab(self._columns, [row for row in self.rows if predicate(row)])

    def distinct(self) -> "Tab":
        """Remove duplicate rows (structural value equality)."""
        if self._rows is None:
            # Batch-level distinct: structural keys straight off the
            # column arrays, no Row materialization.
            cols = self._cols
            seen = set()
            keep: List[int] = []
            for index, cells in enumerate(zip(*cols) if cols else ()):
                key = tuple(_cell_key(cell) for cell in cells)
                if key not in seen:
                    seen.add(key)
                    keep.append(index)
            if not cols:
                keep = [0] if self._length else []
            if len(keep) == self._length:
                return self
            return Tab.from_columns(
                self._columns,
                tuple(tuple(col[i] for i in keep) for col in cols),
                len(keep),
            )
        seen = set()
        kept: List[Row] = []
        for row in self._rows:
            key = row._value_key()
            if key not in seen:
                seen.add(key)
                kept.append(row)
        return Tab(self._columns, kept)

    def extend(self, columns: Sequence[str], compute: Callable[[Row], Sequence[Cell]]) -> "Tab":
        """Append computed columns to every row."""
        new_columns = self._columns + tuple(columns)
        rows = [row.extended(columns, compute(row)) for row in self.rows]
        return Tab(new_columns, rows)

    def sorted_by(self, key: Callable[[Row], object], reverse: bool = False) -> "Tab":
        """Rows sorted by *key*."""
        return Tab(self._columns, sorted(self.rows, key=key, reverse=reverse))

    def pretty(self, limit: int = 20) -> str:
        """Plain-text table rendering for examples and debugging."""
        header = " | ".join(f"${c}" for c in self._columns)
        lines = [header, "-" * len(header)]
        for row in self.rows[:limit]:
            lines.append(" | ".join(_cell_text(cell) for cell in row.cells))
        if self._length > limit:
            lines.append(f"... ({self._length - limit} more rows)")
        return "\n".join(lines)


class ColumnCursor:
    """A reusable Row-shaped view over one position of a columnar Tab.

    Vectorized Select/Join evaluate predicates against this cursor
    instead of materializing a Row per input position: :meth:`seek` moves
    the view, ``__getitem__``/``get``/``__contains__`` behave exactly
    like the Row they stand in for.  Optional *outer* provides the
    correlation overlay (DJoin outer bindings) consulted for columns the
    batch does not carry.
    """

    __slots__ = ("_columns", "_positions", "_cols", "_outer", "_index")

    def __init__(self, tab: Tab, outer: "Row" = None) -> None:
        self._columns, self._positions = _column_map(tab.columns)
        self._cols = tab.column_data()
        self._outer = outer
        self._index = 0

    def seek(self, index: int) -> "ColumnCursor":
        self._index = index
        return self

    def __getitem__(self, column: str) -> Cell:
        position = self._positions.get(column)
        if position is not None:
            return self._cols[position][self._index]
        if self._outer is not None and column in self._outer:
            return self._outer[column]
        raise UnknownVariableError(
            f"unknown variable ${column}; row has {list(self._columns)}"
        )

    def get(self, column: str, default: Cell = None) -> Cell:
        position = self._positions.get(column)
        if position is not None:
            return self._cols[position][self._index]
        if self._outer is not None:
            return self._outer.get(column, default)
        return default

    def __contains__(self, column: str) -> bool:
        if column in self._positions:
            return True
        return self._outer is not None and column in self._outer


def _cell_text(cell: Cell) -> str:
    if isinstance(cell, DataNode):
        if cell.is_atom_leaf:
            return f"<{cell.label}>{cell.atom}</{cell.label}>"
        return f"<{cell.label}.../> ({len(cell.children)} children)"
    if isinstance(cell, tuple):
        return "{" + ", ".join(_cell_text(item) for item in cell) + "}"
    return repr(cell)


# ---------------------------------------------------------------------------
# XML wire format (wrapper boundary)
# ---------------------------------------------------------------------------

def tab_to_element(tab: Tab) -> ET.Element:
    """Serialize a Tab to its XML wire element.

    Format::

        <tab columns="t a fields">
          <row>
            <cell var="t" type="String">Nympheas</cell>
            <cell var="a" type="String">Claude Monet</cell>
            <cell var="fields"><coll><history>...</history></coll></cell>
          </row>
          ...
        </tab>
    """
    root = ET.Element("tab")
    root.set("columns", " ".join(tab.columns))
    for row in tab.rows:
        row_el = ET.SubElement(root, "row")
        for column, cell in zip(row.columns, row.cells):
            cell_el = ET.SubElement(row_el, "cell")
            cell_el.set("var", column)
            _cell_into_element(cell, cell_el)
    return root


def _cell_into_element(cell: Cell, cell_el: ET.Element) -> None:
    if isinstance(cell, MissingValue):
        cell_el.set("missing", "true")
    elif is_atom(cell):
        cell_el.set("type", atom_type_name(cell))
        text, encoding = encode_atom_text(cell)
        if encoding is not None:
            cell_el.set("enc", encoding)
        cell_el.text = text
    elif isinstance(cell, DataNode):
        cell_el.append(tree_to_element(cell))
    elif isinstance(cell, tuple):
        # The kind attribute distinguishes the collection marker from a
        # tree cell whose root happens to be labelled "coll".
        cell_el.set("kind", "coll")
        coll = ET.SubElement(cell_el, "coll")
        for item in cell:
            item_el = ET.SubElement(coll, "item")
            _cell_into_element(item, item_el)
    else:
        raise XmlFormatError(f"cannot serialize cell: {cell!r}")


def tab_to_xml(tab: Tab) -> str:
    """Serialize a Tab to an XML string."""
    return ET.tostring(tab_to_element(tab), encoding="unicode")


def element_to_tab(root: ET.Element) -> Tab:
    """Parse a Tab wire element back into a :class:`Tab`."""
    if root.tag != "tab":
        raise XmlFormatError(f"expected <tab>, got <{root.tag}>")
    columns_attr = root.get("columns", "")
    columns = tuple(columns_attr.split()) if columns_attr else ()
    rows = []
    for row_el in root:
        if row_el.tag != "row":
            raise XmlFormatError(f"expected <row>, got <{row_el.tag}>")
        cells = {}
        for cell_el in row_el:
            var = cell_el.get("var")
            if var is None:
                raise XmlFormatError("<cell> requires a var attribute")
            cells[var] = _element_to_cell(cell_el)
        rows.append(Row(columns, tuple(cells.get(c, MISSING) for c in columns)))
    return Tab(columns, rows)


def _element_to_cell(cell_el: ET.Element) -> Cell:
    if cell_el.get("missing") == "true":
        return MISSING
    type_name = cell_el.get("type")
    if type_name is not None:
        text = decode_atom_text(cell_el.text or "", cell_el.get("enc"))
        try:
            return parse_atom(type_name, text)
        except ValueError as exc:
            raise XmlFormatError(f"bad cell atom: {exc}") from exc
    children = list(cell_el)
    if (
        len(children) == 1
        and children[0].tag == "coll"
        and cell_el.get("kind") == "coll"
    ):
        items = []
        for item_el in children[0]:
            items.append(_element_to_cell(item_el))
        return tuple(items)
    if len(children) == 1:
        return element_to_tree(children[0])
    raise XmlFormatError("cell must hold an atom, one tree, or one <coll>")


def xml_to_tab(text: str) -> Tab:
    """Parse an XML string into a :class:`Tab`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}") from exc
    return element_to_tab(root)


def _cell_size(tag: str, attrs: list, cell: Cell) -> int:
    """Serialized byte size of one ``<cell>``/``<item>`` element.

    Mirrors :func:`_cell_into_element` structurally, so the arithmetic
    total matches ``len(tab_to_xml(tab).encode())`` byte for byte.
    """
    if isinstance(cell, MissingValue):
        attrs.append(("missing", "true"))
        return element_size(tag, attrs, None)
    if is_atom(cell):
        attrs.append(("type", atom_type_name(cell)))
        text, encoding = encode_atom_text(cell)
        if encoding is not None:
            attrs.append(("enc", encoding))
        content = escaped_text_size(text) if text else None
        return element_size(tag, attrs, content)
    if isinstance(cell, DataNode):
        return element_size(tag, attrs, serialized_size(cell))
    if isinstance(cell, tuple):
        attrs.append(("kind", "coll"))
        items = 0
        for item in cell:
            items += _cell_size("item", [], item)
        coll = element_size("coll", (), items if cell else None)
        return element_size(tag, attrs, coll)
    raise XmlFormatError(f"cannot serialize cell: {cell!r}")


def tab_serialized_size(tab: Tab) -> int:
    """UTF-8 byte size of the Tab's XML serialization (transfer cost).

    Computed arithmetically instead of materializing the XML string —
    this runs for every pushed-fragment result, and on the paper's Q2 it
    was about half the mediator-side execution time.  Kept byte-for-byte
    consistent with ``len(tab_to_xml(tab).encode())`` (tested
    differentially).  Cached on the (immutable) Tab, so a pushed result
    served from a wrapper memo is measured once.
    """
    cached = tab._ssize
    if cached is not None:
        return cached
    size = _compute_tab_serialized_size(tab)
    tab._ssize = size
    return size


def _compute_tab_serialized_size(tab: Tab) -> int:
    rows_size = 0
    for row in tab.rows:
        cells = 0
        for column, cell in zip(row.columns, row.cells):
            cells += _cell_size("cell", [("var", column)], cell)
        rows_size += element_size("row", (), cells if row.cells else None)
    columns_value = " ".join(tab.columns)
    return element_size(
        "tab", (("columns", columns_value),), rows_size if tab.rows else None
    )
