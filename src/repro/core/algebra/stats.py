"""Execution statistics: what the paper's optimizations actually save.

Capability-based pushdown exists "to minimize the communication costs
between the sources and the mediator, as well as the conversion costs to
the middleware model" (paper, Section 5.3).  :class:`ExecutionStats`
measures exactly those quantities during plan evaluation:

* ``rows_transferred`` / ``bytes_transferred`` — data crossing a wrapper
  boundary (whole documents for ``Source``, result Tabs for ``Pushed``),
  per source and in total;
* ``source_calls`` — round trips to each wrapper (a DJoin with
  information passing makes one call per outer row);
* ``mediator_rows`` — rows processed by mediator-side operators;
* ``operator_counts`` — evaluations per operator kind.

Benchmarks report these alongside wall-clock time, because the shape of
the paper's claims is about transfer and processing, not absolute speed.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict


class ExecutionStats:
    """Mutable counters filled in by the evaluator.

    All ``record_*`` methods are thread-safe: under an
    :class:`~repro.core.algebra.scheduling.ExecutionPolicy` with
    ``parallelism > 1``, branches of one plan accumulate into the same
    instance from pool threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.rows_transferred: Counter = Counter()
        self.bytes_transferred: Counter = Counter()
        self.source_calls: Counter = Counter()
        self.operator_counts: Counter = Counter()
        self.mediator_rows: int = 0
        #: ``(source, native text)`` for every query a wrapper executed,
        #: in execution order (a bind join appends one entry per call).
        self.native_queries: list = []
        #: Resilience counters (filled in only under a retrying
        #: :class:`~repro.mediator.resilience.ResiliencePolicy`).
        self.retries: Counter = Counter()
        self.failures: Counter = Counter()
        #: ``{source: last failure message}`` for every failed source call.
        self.last_errors: Dict[str, str] = {}
        #: ``{source: cause}`` for sources dropped by graceful degradation.
        self.dropped_sources: Dict[str, str] = {}
        #: True when any part of the answer was sacrificed to keep going.
        self.degraded: bool = False
        #: Round trips avoided by the per-execution source-call cache.
        self.cache_hits: Counter = Counter()
        #: Right-branch DJoin evaluations served from the batch memo
        #: (duplicate outer binding tuples re-expanded without a call).
        self.batched_calls: int = 0
        #: Plan branches dispatched to the scheduler's thread pool.
        self.parallel_branches: int = 0
        #: Document-index consultations by Bind (associative access):
        #: seeks issued, candidate nodes returned, indexes built during
        #: this execution and the time spent building them.
        self.bind_index_seeks: int = 0
        self.bind_index_hits: int = 0
        self.bind_index_builds: int = 0
        self.bind_index_build_seconds: float = 0.0
        #: Holistic twig matching: targets matched via the positional
        #: twig join, binding tuples it produced, and targets that fell
        #: back to recursive matching (unindexed tree / unsupported
        #: filter shape) on a Bind where the twig path was engaged.
        self.twig_matches: int = 0
        self.twig_bindings: int = 0
        self.twig_fallbacks: int = 0
        #: Vectorized execution: operator evaluations that ran on
        #: columnar batches and the rows they carried.
        self.batch_operators: int = 0
        self.batch_rows: int = 0
        #: Out-of-core document store: pushed Binds answered by SQL
        #: interval self-joins vs. hydrated scans, nodes materialized
        #: from shredded rows, and serialized bytes the pushdowns never
        #: transferred (untouched node share of the stored documents).
        self.store_pushdowns: int = 0
        self.store_scans: int = 0
        self.store_hydrated_nodes: int = 0
        self.store_bytes_avoided: int = 0
        #: Sharded sources: shard branches actually evaluated by
        #: scatter-gather, branches pruned away (statically by a
        #: constant partition-key restriction or per outer row under a
        #: DJoin), and shard calls routed to a fallback replica after
        #: the preferred one was unavailable.
        self.shard_scatter: int = 0
        self.shard_pruned: int = 0
        self.shard_failovers: int = 0

    # -- recording -----------------------------------------------------------

    def record_transfer(self, source: str, rows: int, size: int) -> None:
        """Record *rows* rows / *size* bytes received from *source*."""
        with self._lock:
            self.rows_transferred[source] += rows
            self.bytes_transferred[source] += size

    def record_call(self, source: str) -> None:
        """Record one round trip to *source*."""
        with self._lock:
            self.source_calls[source] += 1

    def record_native(self, source: str, native: str) -> None:
        """Record the native query text a wrapper executed."""
        with self._lock:
            self.native_queries.append((source, native))

    def distinct_native_queries(self):
        """Native queries with duplicates removed, order preserved."""
        seen = set()
        result = []
        for source, native in self.native_queries:
            if (source, native) not in seen:
                seen.add((source, native))
                result.append((source, native))
        return result

    def record_retry(self, source: str) -> None:
        """Record one retry (a repeated attempt) against *source*."""
        with self._lock:
            self.retries[source] += 1

    def record_failure(self, source: str, error: str) -> None:
        """Record one failed call to *source* with its cause."""
        with self._lock:
            self.failures[source] += 1
            self.last_errors[source] = error

    def record_dropped(self, source: str, cause: str) -> None:
        """Record that *source* was dropped from the answer (degradation).
        The first recorded cause wins — it names the original failure."""
        with self._lock:
            self.dropped_sources.setdefault(source, cause)
            self.degraded = True

    def record_operator(self, name: str, rows_out: int) -> None:
        """Record one evaluation of operator *name* producing *rows_out* rows."""
        with self._lock:
            self.operator_counts[name] += 1
            self.mediator_rows += rows_out

    def record_cache_hit(self, source: str) -> None:
        """Record one round trip to *source* avoided by the call cache."""
        with self._lock:
            self.cache_hits[source] += 1

    def record_batched(self, avoided: int) -> None:
        """Record *avoided* DJoin right-branch evaluations served from
        the batch memo."""
        if avoided <= 0:
            return
        with self._lock:
            self.batched_calls += avoided

    def record_parallel(self, branches: int) -> None:
        """Record *branches* plan branches dispatched concurrently."""
        with self._lock:
            self.parallel_branches += branches

    def record_bind_index(
        self, seeks: int, hits: int, builds: int, build_seconds: float
    ) -> None:
        """Record one Bind's document-index usage (associative access)."""
        with self._lock:
            self.bind_index_seeks += seeks
            self.bind_index_hits += hits
            self.bind_index_builds += builds
            self.bind_index_build_seconds += build_seconds

    def record_twig(self, matches: int, bindings: int, fallbacks: int) -> None:
        """Record one Bind's holistic twig-join usage."""
        with self._lock:
            self.twig_matches += matches
            self.twig_bindings += bindings
            self.twig_fallbacks += fallbacks

    def record_batch(self, rows: int) -> None:
        """Record one operator evaluation that ran on columnar batches."""
        with self._lock:
            self.batch_operators += 1
            self.batch_rows += rows

    def record_store(
        self,
        pushdowns: int = 0,
        scans: int = 0,
        hydrated_nodes: int = 0,
        bytes_avoided: int = 0,
    ) -> None:
        """Record a document-store counter delta (one wrapper call)."""
        with self._lock:
            self.store_pushdowns += pushdowns
            self.store_scans += scans
            self.store_hydrated_nodes += hydrated_nodes
            self.store_bytes_avoided += bytes_avoided

    def record_shard(
        self, scatter: int = 0, pruned: int = 0, failovers: int = 0
    ) -> None:
        """Record one scatter evaluation (or replica failover) over shards."""
        with self._lock:
            self.shard_scatter += scatter
            self.shard_pruned += pruned
            self.shard_failovers += failovers

    # -- totals ---------------------------------------------------------------

    @property
    def total_rows_transferred(self) -> int:
        return sum(self.rows_transferred.values())

    @property
    def total_bytes_transferred(self) -> int:
        return sum(self.bytes_transferred.values())

    @property
    def total_source_calls(self) -> int:
        return sum(self.source_calls.values())

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    @property
    def total_failures(self) -> int:
        return sum(self.failures.values())

    @property
    def total_cache_hits(self) -> int:
        return sum(self.cache_hits.values())

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary summary, convenient for benchmark reports."""
        return {
            "rows_transferred": dict(self.rows_transferred),
            "bytes_transferred": dict(self.bytes_transferred),
            "source_calls": dict(self.source_calls),
            "operator_counts": dict(self.operator_counts),
            "mediator_rows": self.mediator_rows,
            "total_rows_transferred": self.total_rows_transferred,
            "total_bytes_transferred": self.total_bytes_transferred,
            "total_source_calls": self.total_source_calls,
            "retries": dict(self.retries),
            "failures": dict(self.failures),
            "dropped_sources": dict(self.dropped_sources),
            "degraded": self.degraded,
            "cache_hits": dict(self.cache_hits),
            "total_cache_hits": self.total_cache_hits,
            "batched_calls": self.batched_calls,
            "parallel_branches": self.parallel_branches,
            "bind_index_seeks": self.bind_index_seeks,
            "bind_index_hits": self.bind_index_hits,
            "bind_index_builds": self.bind_index_builds,
            "bind_index_build_seconds": self.bind_index_build_seconds,
            "twig_matches": self.twig_matches,
            "twig_bindings": self.twig_bindings,
            "twig_fallbacks": self.twig_fallbacks,
            "batch_operators": self.batch_operators,
            "batch_rows": self.batch_rows,
            "store_pushdowns": self.store_pushdowns,
            "store_scans": self.store_scans,
            "store_hydrated_nodes": self.store_hydrated_nodes,
            "store_bytes_avoided": self.store_bytes_avoided,
            "shard_scatter": self.shard_scatter,
            "shard_pruned": self.shard_pruned,
            "shard_failovers": self.shard_failovers,
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"transferred: {self.total_rows_transferred} rows, "
            f"{self.total_bytes_transferred} bytes over "
            f"{self.total_source_calls} source calls",
        ]
        for source in sorted(self.bytes_transferred):
            lines.append(
                f"  from {source}: {self.rows_transferred[source]} rows, "
                f"{self.bytes_transferred[source]} bytes, "
                f"{self.source_calls[source]} calls"
            )
        lines.append(f"mediator rows processed: {self.mediator_rows}")
        ops = ", ".join(
            f"{name}×{count}" for name, count in sorted(self.operator_counts.items())
        )
        lines.append(f"operators: {ops}")
        if self.total_cache_hits or self.batched_calls or self.parallel_branches:
            lines.append(
                f"scheduler: {self.total_cache_hits} cache hits, "
                f"{self.batched_calls} batched calls, "
                f"{self.parallel_branches} parallel branches"
            )
        if self.bind_index_seeks or self.bind_index_builds:
            lines.append(
                f"bind index: {self.bind_index_seeks} seeks, "
                f"{self.bind_index_hits} hits, "
                f"{self.bind_index_builds} builds"
            )
        if self.twig_matches or self.twig_fallbacks:
            lines.append(
                f"twig join: {self.twig_matches} matches, "
                f"{self.twig_bindings} bindings, "
                f"{self.twig_fallbacks} fallbacks"
            )
        if self.batch_operators:
            lines.append(
                f"vectorized: {self.batch_operators} batch operators, "
                f"{self.batch_rows} batch rows"
            )
        if self.store_pushdowns or self.store_scans:
            lines.append(
                f"document store: {self.store_pushdowns} pushdowns, "
                f"{self.store_scans} scans, "
                f"{self.store_hydrated_nodes} nodes hydrated, "
                f"{self.store_bytes_avoided} bytes avoided"
            )
        if self.shard_scatter or self.shard_pruned or self.shard_failovers:
            lines.append(
                f"shards: {self.shard_scatter} scattered, "
                f"{self.shard_pruned} pruned, "
                f"{self.shard_failovers} failovers"
            )
        if self.total_failures or self.total_retries:
            lines.append(
                f"resilience: {self.total_failures} failed calls, "
                f"{self.total_retries} retries"
            )
        if self.degraded:
            dropped = ", ".join(
                f"{source} ({cause})"
                for source, cause in sorted(self.dropped_sources.items())
            )
            lines.append(f"DEGRADED — dropped: {dropped}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExecutionStats(rows={self.total_rows_transferred}, "
            f"bytes={self.total_bytes_transferred}, "
            f"calls={self.total_source_calls})"
        )
