"""The ``Tree`` operator: rebuild nested XML from a ``Tab``.

"The Tree operator is applied on Tab structures and returns a collection
of trees conforming to some input pattern" (paper, Section 3.1,
Figure 4).  It captures the restructuring semantics of the ``MAKE``
clause: grouping (the ``*($a)`` primitive), sorting, Skolem-function
identifiers and references.

Constructor vocabulary
----------------------

=====================  ======================================================
:class:`CElem`         build one element; optionally identified by a Skolem
                       function of some expressions
:class:`CLeaf`         build one atom leaf from an expression (omitted when
                       the expression evaluates to ``MISSING``)
:class:`CValue`        splice the value of an expression: a tree is inserted
                       as a child, a collection is spliced item by item,
                       an atom is wrapped in a ``<value>`` leaf
:class:`CGroup`        the grouping primitive ``*(e1, ..., en)``: partition
                       the current rows by the expressions' values and
                       build the child once per group
:class:`CIterate`      build the child once per (distinct) row, optionally
                       sorted
:class:`CRef`          build a reference node to a Skolem-identified tree
=====================  ======================================================

A full ``Tree`` application is :func:`construct`: given a Tab, a root
constructor and a :class:`~repro.core.algebra.skolem.SkolemRegistry`, it
returns the constructed tree with *object fusion* applied — constructors
that produce the same Skolem identifier are merged into one node.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import AlgebraError
from repro.core.algebra.expressions import Expr
from repro.core.algebra.skolem import SkolemRegistry
from repro.core.algebra.tab import Row, Tab, _cell_key
from repro.model.filters import MISSING, MissingValue
from repro.model.trees import DataNode


class Constructor:
    """Base class of ``Tree`` constructor nodes (immutable)."""

    __slots__ = ()

    def children_constructors(self) -> Tuple["Constructor", ...]:
        return ()

    def walk(self) -> Iterator["Constructor"]:
        yield self
        for child in self.children_constructors():
            yield from child.walk()

    def expressions(self) -> Tuple[Expr, ...]:
        """Expressions evaluated directly by this constructor node."""
        return ()

    def variables(self) -> Tuple[str, ...]:
        """All Tab columns read anywhere in this constructor subtree."""
        seen: List[str] = []
        for node in self.walk():
            for expr in node.expressions():
                for name in expr.variables():
                    if name not in seen:
                        seen.append(name)
        return tuple(seen)

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constructor):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())


class CElem(Constructor):
    """Build an element node, optionally Skolem-identified.

    ``skolem`` is a ``(function_name, [expressions])`` pair: the
    expressions are evaluated on the current representative row and passed
    to the Skolem function to obtain the node's identifier.
    """

    __slots__ = ("label", "children", "skolem")

    def __init__(
        self,
        label: str,
        children: Sequence[Constructor] = (),
        skolem: Optional[Tuple[str, Sequence[Expr]]] = None,
    ) -> None:
        self.label = label
        self.children = tuple(children)
        self.skolem = (skolem[0], tuple(skolem[1])) if skolem else None

    def children_constructors(self):
        return self.children

    def expressions(self):
        return self.skolem[1] if self.skolem else ()

    def _key(self):
        skolem_key = (
            (self.skolem[0], tuple(e._key() for e in self.skolem[1]))
            if self.skolem
            else None
        )
        return ("celem", self.label, skolem_key, tuple(c._key() for c in self.children))


class CLeaf(Constructor):
    """Build a labelled field ``<label>value</label>`` from an expression.

    This is the ``label: $v`` form of a MAKE clause.  Atoms become atom
    leaves; a bound subtree is re-labelled under *label*; a bound
    collection (e.g. ``more: $fields``) becomes an element whose children
    are the collection's items; ``MISSING`` produces nothing.
    """

    __slots__ = ("label", "expr")

    def __init__(self, label: str, expr: Expr) -> None:
        self.label = label
        self.expr = expr

    def expressions(self):
        return (self.expr,)

    def _key(self):
        return ("cleaf", self.label, self.expr._key())


class CValue(Constructor):
    """Splice the expression's value into the parent's child list."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        self.expr = expr

    def expressions(self):
        return (self.expr,)

    def _key(self):
        return ("cvalue", self.expr._key())


class CGroup(Constructor):
    """The grouping primitive ``*(e1, ..., en)`` of Figure 4.

    Partitions the current rows by the expression values; the child
    constructor is built once per group, over the group's rows.
    """

    __slots__ = ("by", "child")

    def __init__(self, by: Sequence[Expr], child: Constructor) -> None:
        self.by = tuple(by)
        self.child = child

    def children_constructors(self):
        return (self.child,)

    def expressions(self):
        return self.by

    def _key(self):
        return ("cgroup", tuple(e._key() for e in self.by), self.child._key())


class CIterate(Constructor):
    """Build the child once per row (distinct by default, optionally sorted)."""

    __slots__ = ("child", "distinct", "order_by", "descending")

    def __init__(
        self,
        child: Constructor,
        distinct: bool = True,
        order_by: Sequence[Expr] = (),
        descending: bool = False,
    ) -> None:
        self.child = child
        self.distinct = distinct
        self.order_by = tuple(order_by)
        self.descending = descending

    def children_constructors(self):
        return (self.child,)

    def expressions(self):
        return self.order_by

    def _key(self):
        return (
            "citerate",
            self.child._key(),
            self.distinct,
            tuple(e._key() for e in self.order_by),
            self.descending,
        )


class CNest(Constructor):
    """Build the child over the rows nested in a column.

    After a ``Group`` operator, each row holds a collection of sub-rows in
    one column; ``CNest(column, child)`` evaluates *child* over those
    sub-rows (each extended with the parent row's columns, so grouping
    keys stay visible).  This is what lets a ``Tree`` with grouping be
    decomposed into ``Group`` + a grouping-free ``Tree`` (paper,
    Section 5.2: "a Tree can be rewritten as sequence of Group, Sort and
    nested Map operations").
    """

    __slots__ = ("column", "child")

    def __init__(self, column: str, child: Constructor) -> None:
        self.column = column
        self.child = child

    def children_constructors(self):
        return (self.child,)

    def variables(self) -> Tuple[str, ...]:
        # The nested rows supply the child's variables; from the outer
        # Tab's point of view only the nested column is consumed.
        return (self.column,)

    def _key(self):
        return ("cnest", self.column, self.child._key())


class CRef(Constructor):
    """Build a reference node ``<label ref=...>`` to a Skolem identifier."""

    __slots__ = ("label", "function", "args")

    def __init__(self, label: str, function: str, args: Sequence[Expr]) -> None:
        self.label = label
        self.function = function
        self.args = tuple(args)

    def expressions(self):
        return self.args

    def _key(self):
        return ("cref", self.label, self.function, tuple(a._key() for a in self.args))


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------

class _MutableNode:
    """Node under construction: children stay mutable until freezing."""

    __slots__ = ("label", "ident", "children")

    def __init__(self, label: str, ident: Optional[str]) -> None:
        self.label = label
        self.ident = ident
        self.children: List[object] = []  # _MutableNode | DataNode


def construct(
    tab: Tab,
    root: Constructor,
    skolems: Optional[SkolemRegistry] = None,
    functions: Optional[dict] = None,
) -> DataNode:
    """Apply ``Tree``: build the tree described by *root* over *tab*.

    Nodes sharing a Skolem identifier are fused (their children are
    concatenated, structural duplicates removed), implementing the
    object-fusion semantics of Skolem functions.
    """
    if not isinstance(root, CElem):
        raise AlgebraError("the root of a Tree constructor must be a CElem")
    skolems = skolems if skolems is not None else SkolemRegistry()
    builder = _Builder(skolems, functions or {})
    rows = list(tab.rows)
    nodes = builder.build(root, rows)
    if len(nodes) != 1:
        raise AlgebraError(
            f"root constructor produced {len(nodes)} nodes; expected exactly 1"
        )
    node = nodes[0]
    if not isinstance(node, _MutableNode):
        raise AlgebraError("root constructor must build an element")
    return builder.freeze(node)


class _Builder:
    def __init__(self, skolems: SkolemRegistry, functions: dict) -> None:
        self._skolems = skolems
        self._functions = functions
        self._by_ident: Dict[str, _MutableNode] = {}

    # -- construction --------------------------------------------------------

    def build(self, spec: Constructor, rows: List[Row]) -> List[object]:
        """Build *spec* over *rows*; returns mutable nodes and/or DataNodes."""
        if isinstance(spec, CElem):
            return self._build_elem(spec, rows)
        if isinstance(spec, CLeaf):
            return self._build_leaf(spec, rows)
        if isinstance(spec, CValue):
            return self._build_value(spec, rows)
        if isinstance(spec, CGroup):
            return self._build_group(spec, rows)
        if isinstance(spec, CIterate):
            return self._build_iterate(spec, rows)
        if isinstance(spec, CNest):
            return self._build_nest(spec, rows)
        if isinstance(spec, CRef):
            return self._build_ref(spec, rows)
        raise AlgebraError(f"unknown constructor: {spec!r}")

    def _representative(self, rows: List[Row], spec: Constructor) -> Optional[Row]:
        if rows:
            return rows[0]
        return None

    def _build_elem(self, spec: CElem, rows: List[Row]) -> List[object]:
        ident = None
        if spec.skolem is not None:
            row = self._representative(rows, spec)
            if row is None:
                return []
            name, exprs = spec.skolem
            args = tuple(expr.evaluate(row, self._functions) for expr in exprs)
            ident = self._skolems.ident(name, args)
            existing = self._by_ident.get(ident)
            if existing is not None:
                # Object fusion: contribute children to the existing node.
                for child_spec in spec.children:
                    existing.children.extend(self.build(child_spec, rows))
                return []  # already emitted elsewhere
        node = _MutableNode(spec.label, ident)
        if ident is not None:
            self._by_ident[ident] = node
        for child_spec in spec.children:
            node.children.extend(self.build(child_spec, rows))
        return [node]

    def _build_leaf(self, spec: CLeaf, rows: List[Row]) -> List[object]:
        row = self._representative(rows, spec)
        if row is None:
            return []
        value = spec.expr.evaluate(row, self._functions)
        if isinstance(value, MissingValue):
            return []
        if isinstance(value, DataNode):
            if value.is_atom_leaf:
                value = value.atom
            else:
                # A structured value under a field label: relabel the tree.
                return [DataNode(spec.label, children=value.children,
                                 collection=value.collection)]
        if isinstance(value, tuple):
            # A bound collection: its items become the field's children.
            children = [
                child
                for item in value
                for child in self._splice(item)
                if isinstance(child, DataNode)
            ]
            return [DataNode(spec.label, children=children)]
        return [DataNode(spec.label, atom=value)]

    def _build_value(self, spec: CValue, rows: List[Row]) -> List[object]:
        row = self._representative(rows, spec)
        if row is None:
            return []
        value = spec.expr.evaluate(row, self._functions)
        return list(self._splice(value))

    def _splice(self, value: object) -> Iterator[object]:
        if isinstance(value, MissingValue):
            return
        if isinstance(value, DataNode):
            yield value
            return
        if isinstance(value, tuple):
            for item in value:
                yield from self._splice(item)
            return
        yield DataNode("value", atom=value)

    def _build_group(self, spec: CGroup, rows: List[Row]) -> List[object]:
        groups: Dict[tuple, List[Row]] = {}
        order: List[tuple] = []
        for row in rows:
            key = tuple(
                _cell_key(expr.evaluate(row, self._functions)) for expr in spec.by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        result: List[object] = []
        for key in order:
            result.extend(self.build(spec.child, groups[key]))
        return result

    def _build_iterate(self, spec: CIterate, rows: List[Row]) -> List[object]:
        selected = rows
        if spec.distinct:
            relevant = spec.child.variables()
            seen = set()
            selected = []
            for row in rows:
                key = tuple(_cell_key(row.get(name, MISSING)) for name in relevant)
                if key not in seen:
                    seen.add(key)
                    selected.append(row)
        if spec.order_by:
            def sort_key(row: Row):
                return tuple(
                    _orderable(expr.evaluate(row, self._functions))
                    for expr in spec.order_by
                )

            selected = sorted(selected, key=sort_key, reverse=spec.descending)
        result: List[object] = []
        for row in selected:
            result.extend(self.build(spec.child, [row]))
        return result

    def _build_nest(self, spec: CNest, rows: List[Row]) -> List[object]:
        result: List[object] = []
        for row in rows:
            nested = row[spec.column]
            if not isinstance(nested, tuple):
                raise AlgebraError(
                    f"CNest column ${spec.column} does not hold nested rows"
                )
            scoped: List[Row] = []
            parent_columns = tuple(
                c for c in row.columns if c != spec.column
            )
            parent_cells = tuple(row[c] for c in parent_columns)
            for sub in nested:
                if not isinstance(sub, Row):
                    raise AlgebraError(
                        f"CNest column ${spec.column} holds non-row items"
                    )
                extra_columns = tuple(
                    c for c in parent_columns if c not in sub.columns
                )
                extra_cells = tuple(
                    parent_cells[parent_columns.index(c)] for c in extra_columns
                )
                scoped.append(sub.extended(extra_columns, extra_cells))
            result.extend(self.build(spec.child, scoped))
        return result

    def _build_ref(self, spec: CRef, rows: List[Row]) -> List[object]:
        row = self._representative(rows, spec)
        if row is None:
            return []
        args = tuple(expr.evaluate(row, self._functions) for expr in spec.args)
        ident = self._skolems.ident(spec.function, args)
        return [DataNode(spec.label, ref_target=ident)]

    # -- freezing -------------------------------------------------------------

    def freeze(self, node: _MutableNode) -> DataNode:
        """Turn the mutable construction into immutable DataNodes.

        Structural duplicates among a fused node's children are removed,
        preserving first-occurrence order.
        """
        frozen_children: List[DataNode] = []
        for child in node.children:
            if isinstance(child, _MutableNode):
                frozen_children.append(self.freeze(child))
            else:
                frozen_children.append(child)
        if node.ident is not None:
            deduped: List[DataNode] = []
            seen = set()
            for child in frozen_children:
                key = child._value_key()
                if key not in seen:
                    seen.add(key)
                    deduped.append(child)
            frozen_children = deduped
        return DataNode(node.label, children=frozen_children, ident=node.ident)


def _orderable(value: object) -> object:
    if isinstance(value, DataNode) and value.is_atom_leaf:
        value = value.atom
    if isinstance(value, MissingValue):
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))
