"""Skolem functions: stable identifier creation with side effects.

"Skolem functions are used to create new identifiers and perform value
assignment ...  Skolem functions do not create values but have side
effects on the integrated view and are somehow orthogonal to the rest of
the algebra" (paper, Section 3.1).

A :class:`SkolemRegistry` maps ``(function name, argument values)`` pairs
to identifiers: the first call mints a fresh identifier, later calls with
equal arguments return the same one.  This is what makes *object fusion*
work: two rules (or two rows) constructing ``artwork($t, $c)`` with the
same title and creator contribute to the same output tree.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from repro.core.algebra.tab import _cell_key


class SkolemRegistry:
    """Mint stable identifiers for (function, arguments) pairs.

    Minting is thread-safe: concurrent plan branches share one registry,
    and equal arguments must map to one identifier even when two threads
    race on the first use.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idents: Dict[Tuple[str, tuple], str] = {}
        self._counters: Dict[str, int] = {}

    def ident(self, function: str, args: tuple) -> str:
        """The identifier for ``function(*args)``; minted on first use.

        Arguments are compared by structural value (atoms by value, trees
        by shape), so the identity is deterministic across evaluations of
        the same data.
        """
        key = (function, tuple(_cell_key(arg) for arg in args))
        with self._lock:
            ident = self._idents.get(key)
            if ident is None:
                count = self._counters.get(function, 0) + 1
                self._counters[function] = count
                ident = f"{function}_{count}"
                self._idents[key] = ident
            return ident

    def known(self, function: str, args: tuple) -> bool:
        """``True`` when an identifier was already minted for these arguments."""
        key = (function, tuple(_cell_key(arg) for arg in args))
        with self._lock:
            return key in self._idents

    def __len__(self) -> int:
        return len(self._idents)
