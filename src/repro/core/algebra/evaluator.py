"""Plan evaluation at the mediator.

The evaluator walks a plan DAG bottom-up and produces a
:class:`~repro.core.algebra.tab.Tab`.  It is deliberately a *naive*
iterator-style engine: the paper's point is not a fast mediator but the
amount of work the algebraic rewritings remove, which the evaluator
measures faithfully through :class:`~repro.core.algebra.stats.ExecutionStats`:

* evaluating a ``Source`` pulls the whole named document through the
  wrapper's XML boundary (rows=1, bytes=document size);
* evaluating a ``Pushed`` fragment asks the wrapper to run it natively
  and transfers only the result Tab;
* a ``DJoin`` re-evaluates its right input once per left row, passing the
  row as an outer environment (information passing, Section 5.3).

Federated scheduling (:mod:`repro.core.algebra.scheduling`) layers three
optimizations over that baseline, none of which changes any answer:
Union branches and independent Join inputs evaluate concurrently on a
bounded pool when ``ExecutionPolicy.parallelism > 1``; a DJoin batches
its right input per *distinct* outer binding tuple; and a per-execution
cache memoizes wrapper round trips.  ``ExecutionPolicy.serial()``
restores the naive engine byte for byte.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    EvaluationError,
    PartialResultError,
    SourceUnavailableError,
    UnknownDocumentError,
    UnknownSourceError,
    UnknownVariableError,
)
from repro.core.algebra.bind import FilterMatcher, collection_explosion
from repro.core.algebra.compiled import (
    MatchContext,
    compiled_filter,
    compiled_predicate,
)
from repro.core.algebra.operators import (
    BindOp,
    DJoinOp,
    DistinctOp,
    FuseOp,
    GroupOp,
    LiteralOp,
    IntersectOp,
    JoinOp,
    MapOp,
    Plan,
    ProjectOp,
    PushedOp,
    ScatterOp,
    SelectOp,
    SortOp,
    SourceOp,
    TreeOp,
    UnionOp,
    UnitOp,
)
from repro.core.algebra.scheduling import (
    ExecutionPolicy,
    PlanScheduler,
    SourceCallCache,
    outer_binding_key,
    plan_parameters,
)
from repro.core.algebra.skolem import SkolemRegistry
from repro.observability.context import RequestContext
from repro.core.algebra.stats import ExecutionStats
from repro.core.algebra.tab import ColumnCursor, Row, Tab, tab_serialized_size
from repro.core.algebra.twig import compiled_twig
from repro.core.algebra.tree import _orderable, construct
from repro.model.filters import MISSING, MissingValue
from repro.model.indexes import document_index, index_eligibility
from repro.model.trees import DataNode
from repro.model.xml_io import serialized_size


class SourceAdapter(ABC):
    """What the evaluator needs from a wrapped source.

    Implemented by the wrappers in :mod:`repro.wrappers`; tests may supply
    lightweight fakes.
    """

    @abstractmethod
    def document_names(self) -> Tuple[str, ...]:
        """Names of the documents this source exports."""

    def document_name_set(self) -> frozenset:
        """Exported document names as a set (membership tests).

        The default rebuilds the set on each call; adapters with a
        stable catalog (every wrapper) override this with a cached
        frozenset so per-SourceOp membership checks are O(1).
        """
        return frozenset(self.document_names())

    @abstractmethod
    def document(self, name: str) -> DataNode:
        """The full tree of the named document (an expensive transfer)."""

    @abstractmethod
    def ident_index(self) -> Dict[str, DataNode]:
        """Identifier index used to dereference references during Bind."""

    @abstractmethod
    def execute_pushed(
        self, plan: Plan, outer: Optional[Row] = None
    ) -> Tuple[Tab, str]:
        """Evaluate *plan* natively; returns the result Tab and the native text."""


class Environment:
    """Everything a plan evaluation needs: sources, functions, counters."""

    def __init__(
        self,
        sources: Dict[str, SourceAdapter],
        functions: Optional[Dict[str, Callable]] = None,
        stats: Optional[ExecutionStats] = None,
        skolems: Optional[SkolemRegistry] = None,
        resilience=None,
        policy: Optional[ExecutionPolicy] = None,
        tracer=None,
        context=None,
    ) -> None:
        self.sources = dict(sources)
        self.functions = dict(functions or {})
        self.stats = stats if stats is not None else ExecutionStats()
        self.skolems = skolems if skolems is not None else SkolemRegistry()
        #: Optional :class:`~repro.mediator.resilience.PolicyRuntime`;
        #: when set and permitting partial results, Union branches and
        #: ident indexes of unavailable sources degrade instead of failing.
        self.resilience = resilience
        #: Federated scheduling knobs; the default keeps evaluation
        #: strictly serial (parallelism=1) with caching and batching on.
        self.policy = policy if policy is not None else ExecutionPolicy()
        #: The :class:`~repro.observability.context.RequestContext` this
        #: evaluation runs under.  The environment *finalizes* it: the
        #: kernel mode always follows the execution policy, an explicit
        #: ``tracer=`` argument wins over the context's, and the
        #: per-request source-call cache is created here when the policy
        #: asks for one.  Callers that pass no context get a fresh
        #: anonymous one, so evaluation never falls back to globals.
        if context is None:
            context = RequestContext(tracer=tracer)
        elif tracer is None:
            tracer = context.tracer
        context.tracer = tracer
        context.compile_kernels = self.policy.compile_kernels
        if self.policy.cache_source_calls:
            if context.call_cache is None:
                context.call_cache = SourceCallCache()
        else:
            context.call_cache = None
        self.context = context
        #: Optional :class:`~repro.observability.tracer.Tracer`.  ``None``
        #: (the default) keeps the untraced fast path: every hook in this
        #: module is a single attribute read plus an ``is None`` test.
        self.tracer = tracer
        self.call_cache = context.call_cache
        self._scheduler: Optional[PlanScheduler] = None
        self._ident_index: Optional[Dict[str, DataNode]] = None
        self._ident_lock = threading.Lock()
        self._deref: Optional[Callable[[DataNode], DataNode]] = None

    def source(self, name: str) -> SourceAdapter:
        try:
            return self.sources[name]
        except KeyError:
            raise UnknownSourceError(f"source {name!r} is not connected") from None

    def scheduler(self) -> Optional[PlanScheduler]:
        """The shared thread pool, or ``None`` under a serial policy.

        Created lazily on the first concurrent dispatch; callers that
        own the environment should :meth:`shutdown` when done (``run_plan``
        does).
        """
        if not self.policy.concurrent:
            return None
        if self._scheduler is None:
            self._scheduler = PlanScheduler(self.policy.parallelism)
        return self._scheduler

    def shutdown(self) -> None:
        """Release the thread pool, if one was created."""
        if self._scheduler is not None:
            self._scheduler.shutdown()
            self._scheduler = None

    def plan_parameters(self, plan: Plan) -> frozenset:
        """Outer columns *plan* observes (memoized on the plan itself)."""
        return plan_parameters(plan)

    def plan_key(self, plan: Plan) -> tuple:
        """``plan._key()`` memoized on the plan itself.

        Cached plans outlive any one execution, so the memo lives on the
        (immutable) plan instance rather than per environment — warm
        plan-cache hits skip the recomputation entirely.
        """
        return plan.cached_key()

    def deref(self) -> Callable[[DataNode], DataNode]:
        """Reference-chasing closure over the merged ident index.

        Follows reference chains exactly like ``FilterMatcher._deref``;
        built once per execution for the compiled Bind kernels.
        """
        fn = self._deref
        if fn is None:
            index = self.ident_index()
            if index:

                def fn(node, _index=index):
                    target = node.ref_target
                    while target is not None:
                        found = _index.get(target)
                        if found is None:
                            break
                        node = found
                        target = node.ref_target
                    return node

            else:

                def fn(node):
                    return node

            self._deref = fn
        return fn

    def ident_index(self) -> Dict[str, DataNode]:
        """Merged identifier index across all connected sources (cached).

        The merge runs once per execution, however many Bind evaluations
        (including DJoin-driven re-evaluations) ask for it; the lock
        keeps the one-shot guarantee under concurrent branches.  Under a
        degradation-enabled resilience policy, a source whose index is
        unavailable is skipped (its references simply stop
        dereferencing) and recorded as dropped; otherwise the error
        propagates as before.
        """
        with self._ident_lock:
            if self._ident_index is None:
                merged: Dict[str, DataNode] = {}
                for name, adapter in self.sources.items():
                    try:
                        merged.update(adapter.ident_index())
                    except SourceUnavailableError as error:
                        if self.resilience is None or not self.resilience.allow_partial:
                            raise
                        self.resilience.record_dropped(
                            name, f"ident index unavailable: {error}"
                        )
                self._ident_index = merged
            return self._ident_index


def evaluate(plan: Plan, env: Environment, outer: Optional[Row] = None) -> Tab:
    """Evaluate *plan* to a Tab under *env* (and an optional outer row)."""
    tab = _evaluate(plan, env, outer)
    return tab


def _evaluate(plan: Plan, env: Environment, outer: Optional[Row]) -> Tab:
    tracer = env.tracer
    if tracer is None:
        return _dispatch(plan, env, outer)
    # One span per operator evaluation.  ``node`` keys per-node actuals
    # for EXPLAIN ANALYZE (the plan object outlives the execution);
    # ``_eval_source`` / ``_eval_pushed`` annotate the open span with
    # transfer details while it is current on this thread.
    with tracer.start(
        plan.describe(),
        kind="operator",
        operator=plan.operator_name(),
        node=id(plan),
    ) as span:
        tab = _dispatch(plan, env, outer)
        span.annotate(rows=len(tab))
        return tab


def _dispatch(plan: Plan, env: Environment, outer: Optional[Row]) -> Tab:
    if isinstance(plan, UnitOp):
        return Tab((), [Row((), ())])
    if isinstance(plan, LiteralOp):
        return plan.tab
    if isinstance(plan, SourceOp):
        return _eval_source(plan, env)
    if isinstance(plan, BindOp):
        return _eval_bind(plan, env, outer)
    if isinstance(plan, SelectOp):
        return _eval_select(plan, env, outer)
    if isinstance(plan, DistinctOp):
        source = _evaluate(plan.input, env, outer)
        tab = source.distinct()
        env.stats.record_operator("Distinct", len(tab))
        if env.policy.vectorize and source.is_columnar:
            env.stats.record_batch(len(tab))
        return tab
    if isinstance(plan, ProjectOp):
        return _eval_project(plan, env, outer)
    if isinstance(plan, JoinOp):
        return _eval_join(plan, env, outer)
    if isinstance(plan, DJoinOp):
        return _eval_djoin(plan, env, outer)
    if isinstance(plan, UnionOp):
        return _eval_union(plan, env, outer)
    if isinstance(plan, ScatterOp):
        return _eval_scatter(plan, env, outer)
    if isinstance(plan, IntersectOp):
        return _eval_intersect(plan, env, outer)
    if isinstance(plan, GroupOp):
        return _eval_group(plan, env, outer)
    if isinstance(plan, SortOp):
        return _eval_sort(plan, env, outer)
    if isinstance(plan, MapOp):
        return _eval_map(plan, env, outer)
    if isinstance(plan, TreeOp):
        return _eval_tree(plan, env, outer)
    if isinstance(plan, FuseOp):
        return _eval_fuse(plan, env, outer)
    if isinstance(plan, PushedOp):
        return _eval_pushed(plan, env, outer)
    raise EvaluationError(f"cannot evaluate operator: {plan!r}")


# ---------------------------------------------------------------------------
# Leaf operators
# ---------------------------------------------------------------------------

def _eval_source(plan: SourceOp, env: Environment) -> Tab:
    adapter = env.source(plan.source)
    if plan.document not in adapter.document_name_set():
        raise UnknownDocumentError(
            f"source {plan.source!r} exports no document {plan.document!r}"
        )
    cache = env.call_cache
    key = ("document", plan.source, plan.document)
    if cache is not None:
        found, root = cache.lookup(key)
        if found:
            env.stats.record_cache_hit(plan.source)
            env.stats.record_operator("Source", 1)
            if env.tracer is not None:
                env.tracer.annotate(source=plan.source, cache_hits=1)
            return Tab((plan.document,), [Row((plan.document,), (root,))])
    root = adapter.document(plan.document)
    if cache is not None:
        cache.store(key, root)
    size = serialized_size(root)
    env.stats.record_call(plan.source)
    env.stats.record_transfer(plan.source, rows=1, size=size)
    env.stats.record_operator("Source", 1)
    _record_store_delta(adapter, env)
    if env.tracer is not None:
        env.tracer.annotate(source=plan.source, calls=1, bytes=size)
    return Tab((plan.document,), [Row((plan.document,), (root,))])


def _record_store_delta(adapter, env: Environment) -> None:
    """Fold a document-store adapter's counter delta into the stats.

    Duck-typed: adapters over shredded stores expose ``pop_store_stats``
    returning ``{pushdowns, scans, hydrated_nodes, bytes_avoided}`` since
    the last pop; everything else records nothing.  Cache hits never get
    here — a served-from-cache call touched no store.
    """
    pop = getattr(adapter, "pop_store_stats", None)
    if pop is None:
        return
    delta = pop()
    if delta:
        env.stats.record_store(**delta)
        if env.tracer is not None:
            env.tracer.annotate(
                **{f"store_{name}": value for name, value in delta.items()}
            )


def _eval_pushed(plan: PushedOp, env: Environment, outer: Optional[Row]) -> Tab:
    adapter = env.source(plan.source)
    cache = env.call_cache
    key = None
    if cache is not None:
        # Two calls with the same fragment and the same outer constants
        # (the only outer values a wrapper can inline) return the same Tab.
        key = (
            "pushed",
            plan.source,
            env.plan_key(plan.plan),
            outer_binding_key(outer, env.plan_parameters(plan.plan)),
        )
        found, tab = cache.lookup(key)
        if found:
            env.stats.record_cache_hit(plan.source)
            env.stats.record_operator("Pushed", len(tab))
            if env.tracer is not None:
                env.tracer.annotate(source=plan.source, cache_hits=1)
            return tab
    tab, native = adapter.execute_pushed(plan.plan, outer)
    if cache is not None:
        cache.store(key, tab)
    size = tab_serialized_size(tab)
    env.stats.record_native(plan.source, native)
    env.stats.record_call(plan.source)
    env.stats.record_transfer(plan.source, rows=len(tab), size=size)
    env.stats.record_operator("Pushed", len(tab))
    _record_store_delta(adapter, env)
    if env.tracer is not None:
        env.tracer.annotate(source=plan.source, calls=1, bytes=size, native=native)
    return tab


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------

def _eval_bind(plan: BindOp, env: Environment, outer: Optional[Row]) -> Tab:
    input_tab = _evaluate(plan.input, env, outer)
    # Associative access: when the policy allows it and the filter is
    # sargable, each matched document's lazy label/value index seeds the
    # match instead of a full scan.  The index yields ordered supersets
    # of candidates only, so bindings are byte-identical either way.
    use_indexes = env.policy.use_document_indexes
    vectorize = env.policy.vectorize
    seeks = hits = builds = 0
    build_seconds = 0.0
    twig_matches = twig_rows = twig_fallbacks = 0
    # Holistic twig matching: a twig-expressible filter over an indexed
    # document enumerates all embeddings in one positional join, emitting
    # binding tuples in declaration order.  Targets without a usable
    # index (small / reference / shared-node trees) fall back to the
    # recursive engines below, byte-identical by construction.
    twig = (
        compiled_twig(plan.filter)
        if env.policy.twig_joins and use_indexes
        else None
    )
    matcher: Optional[FilterMatcher] = None
    if env.policy.compile_kernels:
        kernel = compiled_filter(plan.filter)
        deref = env.deref()
        variables = kernel.variables
        seekable = use_indexes and kernel.access.seekable
        bound = kernel.max_matches

        def match_one(target):
            nonlocal seeks, hits, builds, build_seconds
            if seekable:
                index, built = document_index(target)
                if built:
                    builds += 1
                    build_seconds += index.build_seconds
                if index is not None:
                    context = MatchContext(index)
                    bindings = kernel.match(target, deref, context)
                    seeks += context.seeks
                    hits += context.hits
                    return bindings
            return kernel.match(target, deref)

    else:
        matcher = FilterMatcher(index=env.ident_index())
        variables = plan.filter.variables()
        seekable = use_indexes and index_eligibility(plan.filter).seekable
        bound = matcher.max_matches

        def match_one(target):
            nonlocal builds, build_seconds
            if seekable:
                index, built = document_index(target)
                if built:
                    builds += 1
                    build_seconds += index.build_seconds
                matcher.document_index = index
            return matcher.match(target, plan.filter)

    def tuples_one(target):
        """Binding cell tuples (declaration order) for one target tree."""
        nonlocal builds, build_seconds, twig_matches, twig_rows, twig_fallbacks
        if twig is not None:
            index, built = document_index(target)
            if built:
                builds += 1
                build_seconds += index.build_seconds
            if index is not None and index.covers(target):
                bindings = twig.match(target, index)
                twig_matches += 1
                twig_rows += len(bindings)
                return bindings
            twig_fallbacks += 1
        return [
            tuple(binding.get(var, MISSING) for var in variables)
            for binding in match_one(target)
        ]

    def tuples_many(targets):
        bindings: List[tuple] = []
        for target in targets:
            bindings.extend(tuples_one(target))
            if len(bindings) > bound:
                raise collection_explosion(bound)
        return bindings

    def tuples_for(target):
        if isinstance(target, tuple):
            return tuples_many([t for t in target if isinstance(t, DataNode)])
        if isinstance(target, DataNode):
            return tuples_one(target)
        return []

    keep_all = plan.keep_on
    out_columns = tuple(
        c for c in input_tab.columns if keep_all or c != plan.on
    ) + variables

    if vectorize:
        result = _bind_columnar(
            plan, env, outer, input_tab, out_columns, variables, tuples_for
        )
    else:
        rows: List[Row] = []
        for row in input_tab:
            target = _lookup(row, outer, plan.on)
            bindings = tuples_for(target)
            base_cells = tuple(
                row[c] for c in input_tab.columns if keep_all or c != plan.on
            )
            for binding in bindings:
                rows.append(Row(out_columns, base_cells + binding))
        result = Tab(out_columns, rows)

    if matcher is not None:
        seeks += matcher.seeks
        hits += matcher.hits
    env.stats.record_operator("Bind", len(result))
    if seeks or builds:
        env.stats.record_bind_index(seeks, hits, builds, build_seconds)
    if twig_matches or twig_fallbacks:
        env.stats.record_twig(twig_matches, twig_rows, twig_fallbacks)
    if env.tracer is not None:
        if twig_matches:
            env.tracer.annotate(
                access="twig-join", twig_matches=twig_matches,
                twig_fallbacks=twig_fallbacks,
            )
        elif seeks:
            env.tracer.annotate(
                access="index-seek", index_seeks=seeks, index_hits=hits
            )
        else:
            env.tracer.annotate(access="scan")
        if vectorize:
            env.tracer.annotate(batch_rows=len(result))
    return result


def _bind_columnar(
    plan: BindOp, env: Environment, outer: Optional[Row], input_tab: Tab,
    out_columns, variables, tuples_for,
) -> Tab:
    """Vectorized Bind output: bindings zip straight into column arrays.

    Base cells are gathered by repetition counts and binding tuples are
    transposed once at the end — no per-output-row ``Row`` objects.
    """
    in_columns = input_tab.columns
    length = len(input_tab)
    in_cols = input_tab.column_data()
    positions = {name: i for i, name in enumerate(in_columns)}
    target_position = positions.get(plan.on)
    outer_target = None
    if target_position is None:
        if outer is not None and plan.on in outer:
            outer_target = outer[plan.on]
        elif length:
            raise EvaluationError(
                f"Bind target ${plan.on} is neither a local nor an outer column"
            )
    target_col = in_cols[target_position] if target_position is not None else None

    counts: List[int] = []
    all_bindings: List[tuple] = []
    for i in range(length):
        target = target_col[i] if target_col is not None else outer_target
        bindings = tuples_for(target)
        counts.append(len(bindings))
        all_bindings.extend(bindings)

    total = len(all_bindings)
    out_cols: List[tuple] = []
    for name, source in zip(in_columns, in_cols):
        if not plan.keep_on and name == plan.on:
            continue
        column: List[object] = []
        extend = column.extend
        append = column.append
        for i, count in enumerate(counts):
            if count == 1:
                append(source[i])
            elif count:
                extend([source[i]] * count)
        out_cols.append(tuple(column))
    if variables:
        if all_bindings:
            out_cols.extend(zip(*all_bindings))
        else:
            out_cols.extend(() for _ in variables)
    env.stats.record_batch(total)
    return Tab.from_columns(out_columns, out_cols, total)


def _eval_select(plan: SelectOp, env: Environment, outer: Optional[Row]) -> Tab:
    input_tab = _evaluate(plan.input, env, outer)
    predicate = (
        compiled_predicate(plan.predicate)
        if env.policy.compile_kernels
        else plan.predicate.evaluate
    )
    functions = env.functions
    if env.policy.vectorize and input_tab.is_columnar:
        # Batch select: the predicate probes a reusable cursor over the
        # column arrays; survivors are gathered by position.
        cursor = ColumnCursor(input_tab, outer)
        keep = [
            i for i in range(len(input_tab))
            if bool(predicate(cursor.seek(i), functions))
        ]
        result = Tab.from_columns(
            input_tab.columns,
            tuple(
                tuple(column[i] for i in keep)
                for column in input_tab.column_data()
            ),
            len(keep),
        )
        env.stats.record_operator("Select", len(keep))
        env.stats.record_batch(len(keep))
        return result
    rows = [
        row
        for row in input_tab
        if bool(predicate(_overlay(row, outer), functions))
    ]
    env.stats.record_operator("Select", len(rows))
    return Tab(input_tab.columns, rows)


def _eval_project(plan: ProjectOp, env: Environment, outer: Optional[Row]) -> Tab:
    input_tab = _evaluate(plan.input, env, outer)
    columns = tuple(alias for _c, alias in plan.items)
    if env.policy.vectorize and input_tab.is_columnar:
        # Batch project: pure column selection, zero per-row work.
        positions = {name: i for i, name in enumerate(input_tab.columns)}
        in_cols = input_tab.column_data()
        data = []
        for name, _alias in plan.items:
            index = positions.get(name)
            if index is None:
                raise UnknownVariableError(
                    f"unknown variable ${name}; row has "
                    f"{list(input_tab.columns)}"
                )
            data.append(in_cols[index])
        result = Tab.from_columns(columns, data, len(input_tab))
        env.stats.record_operator("Project", len(result))
        env.stats.record_batch(len(result))
        return result
    rows = [
        Row(columns, tuple(row[c] for c, _a in plan.items)) for row in input_tab
    ]
    env.stats.record_operator("Project", len(rows))
    return Tab(columns, rows)


def _eval_group(plan: GroupOp, env: Environment, outer: Optional[Row]) -> Tab:
    input_tab = _evaluate(plan.input, env, outer)
    nested_columns = tuple(c for c in input_tab.columns if c not in plan.by)
    groups: Dict[tuple, List[Row]] = {}
    order: List[tuple] = []
    keys_cells: Dict[tuple, tuple] = {}
    for row in input_tab:
        key_cells = tuple(row[c] for c in plan.by)
        key = Row(plan.by, key_cells)._value_key()
        if key not in groups:
            groups[key] = []
            order.append(key)
            keys_cells[key] = key_cells
        groups[key].append(row.projected(nested_columns))
    out_columns = plan.by + (plan.into,)
    rows = [
        Row(out_columns, keys_cells[key] + (tuple(groups[key]),)) for key in order
    ]
    env.stats.record_operator("Group", len(rows))
    return Tab(out_columns, rows)


def _eval_sort(plan: SortOp, env: Environment, outer: Optional[Row]) -> Tab:
    input_tab = _evaluate(plan.input, env, outer)
    rows = sorted(
        input_tab.rows,
        key=lambda row: tuple(_orderable(row[c]) for c in plan.by),
        reverse=plan.descending,
    )
    env.stats.record_operator("Sort", len(rows))
    return Tab(input_tab.columns, rows)


def _eval_map(plan: MapOp, env: Environment, outer: Optional[Row]) -> Tab:
    input_tab = _evaluate(plan.input, env, outer)
    new_names = tuple(name for name, _e in plan.bindings)
    out_columns = input_tab.columns + new_names
    if env.policy.compile_kernels:
        evaluators = tuple(
            compiled_predicate(expr) for _n, expr in plan.bindings
        )
    else:
        evaluators = tuple(expr.evaluate for _n, expr in plan.bindings)
    rows = []
    for row in input_tab:
        scoped = _overlay(row, outer)
        computed = tuple(fn(scoped, env.functions) for fn in evaluators)
        rows.append(Row(out_columns, row.cells + computed))
    env.stats.record_operator("Map", len(rows))
    return Tab(out_columns, rows)


def _eval_tree(plan: TreeOp, env: Environment, outer: Optional[Row]) -> Tab:
    input_tab = _evaluate(plan.input, env, outer)
    tree = construct(input_tab, plan.constructor, env.skolems, env.functions)
    env.stats.record_operator("Tree", 1)
    return Tab((plan.document,), [Row((plan.document,), (tree,))])


def _eval_fuse(plan: FuseOp, env: Environment, outer: Optional[Row]) -> Tab:
    """Evaluate every rule and merge the documents by Skolem identifier.

    The rules share ``env.skolems``, so equal Skolem arguments yield
    equal identifiers across rules; identified root children then merge
    (children concatenated, structural duplicates removed).
    """
    documents: List[DataNode] = []
    for input_plan in plan.inputs:
        tab = _evaluate(input_plan, env, outer)
        if len(tab.columns) != 1 or len(tab) != 1:
            raise EvaluationError("Fuse inputs must each build one document")
        cell = tab.rows[0].cells[0]
        if not isinstance(cell, DataNode):
            raise EvaluationError("Fuse inputs must build document trees")
        documents.append(cell)
    fused = fuse_documents(documents)
    env.stats.record_operator("Fuse", 1)
    return Tab((plan.document,), [Row((plan.document,), (fused,))])


def fuse_documents(documents: List[DataNode]) -> DataNode:
    """Merge same-label roots: children concatenated, idents fused."""
    label = documents[0].label
    merged_children: List[DataNode] = []
    by_ident: Dict[str, int] = {}
    for document in documents:
        if document.label != label:
            raise EvaluationError(
                f"cannot fuse documents with roots {label!r} and "
                f"{document.label!r}"
            )
        for child in document.children:
            if child.ident is not None and child.ident in by_ident:
                index = by_ident[child.ident]
                existing = merged_children[index]
                seen = {c._value_key() for c in existing.children}
                extra = [
                    c for c in child.children if c._value_key() not in seen
                ]
                merged_children[index] = DataNode(
                    existing.label,
                    children=tuple(existing.children) + tuple(extra),
                    ident=existing.ident,
                    collection=existing.collection,
                )
            else:
                if child.ident is not None:
                    by_ident[child.ident] = len(merged_children)
                merged_children.append(child)
    return DataNode(
        label, children=merged_children, ident=documents[0].ident,
        collection=documents[0].collection,
    )


# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------

def _eval_pair(
    left_plan: Plan, right_plan: Plan, env: Environment, outer: Optional[Row]
) -> Tuple[Tab, Tab]:
    """Evaluate two independent inputs, concurrently when the policy allows.

    Error propagation is deterministic either way: the left input's
    error wins, exactly as in serial evaluation (where a failing left
    input means the right is never evaluated at all).
    """
    scheduler = env.scheduler()
    if scheduler is None:
        return (
            _evaluate(left_plan, env, outer),
            _evaluate(right_plan, env, outer),
        )
    outcomes = scheduler.run(
        [
            lambda: _evaluate(left_plan, env, outer),
            lambda: _evaluate(right_plan, env, outer),
        ],
        tracer=env.tracer,
        context=env.context,
    )
    env.stats.record_parallel(2)
    for value, error in outcomes:
        if error is not None:
            raise error
    return outcomes[0][0], outcomes[1][0]


def _eval_join(plan: JoinOp, env: Environment, outer: Optional[Row]) -> Tab:
    left, right = _eval_pair(plan.left, plan.right, env, outer)
    out_columns = left.columns + right.columns

    # Associative access (the Figure 7 payoff): equality and
    # reference-identity predicates evaluate as hash joins; everything
    # else falls back to the nested loop.
    keys = _hash_join_keys(plan, left.columns, right.columns)
    if keys is not None:
        left_keys, right_keys = keys
        if env.policy.vectorize and (left.is_columnar or right.is_columnar):
            result = _hash_join_columnar(
                left, right, out_columns, left_keys, right_keys
            )
            env.stats.record_operator("Join", len(result))
            env.stats.record_batch(len(result))
            return result
        buckets: Dict[tuple, List[Row]] = {}
        for rrow in right:
            key = tuple(k(rrow) for k in right_keys)
            buckets.setdefault(key, []).append(rrow)
        rows: List[Row] = []
        for lrow in left:
            key = tuple(k(lrow) for k in left_keys)
            for rrow in buckets.get(key, ()):
                rows.append(Row(out_columns, lrow.cells + rrow.cells))
        env.stats.record_operator("Join", len(rows))
        return Tab(out_columns, rows)

    predicate = (
        compiled_predicate(plan.predicate)
        if env.policy.compile_kernels
        else plan.predicate.evaluate
    )
    rows = []
    for lrow in left:
        for rrow in right:
            merged = Row(out_columns, lrow.cells + rrow.cells)
            if bool(predicate(_overlay(merged, outer), env.functions)):
                rows.append(merged)
    env.stats.record_operator("Join", len(rows))
    return Tab(out_columns, rows)


def _hash_join_keys(plan: JoinOp, left_columns, right_columns):
    """``(left key fns, right key fns)`` when every conjunct is hashable;
    ``None`` otherwise.

    Hashable conjuncts: ``Var = Var`` across the two sides (keyed by the
    structural value), and ``ref_is($ref, $obj)`` (keyed by the reference
    target / node identifier).  Key functions accept anything Row-shaped
    (a Row or a :class:`ColumnCursor`).
    """
    from repro.core.algebra.expressions import Cmp, FunCall, Var, conjuncts

    left_cols = set(left_columns)
    right_cols = set(right_columns)
    left_keys: List = []
    right_keys: List = []
    for part in conjuncts(plan.predicate):
        if (
            isinstance(part, Cmp)
            and part.op == "="
            and isinstance(part.left, Var)
            and isinstance(part.right, Var)
        ):
            names = (part.left.name, part.right.name)
            if names[0] in left_cols and names[1] in right_cols:
                lname, rname = names
            elif names[1] in left_cols and names[0] in right_cols:
                rname, lname = names
            else:
                return None
            left_keys.append(lambda row, n=lname: _eq_key(row[n]))
            right_keys.append(lambda row, n=rname: _eq_key(row[n]))
        elif (
            isinstance(part, FunCall)
            and part.name == "ref_is"
            and len(part.args) == 2
            and all(isinstance(arg, Var) for arg in part.args)
        ):
            ref_name, obj_name = (arg.name for arg in part.args)
            if ref_name in left_cols and obj_name in right_cols:
                left_keys.append(lambda row, n=ref_name: _ref_target(row[n]))
                right_keys.append(lambda row, n=obj_name: _node_ident(row[n]))
            elif ref_name in right_cols and obj_name in left_cols:
                left_keys.append(lambda row, n=obj_name: _node_ident(row[n]))
                right_keys.append(lambda row, n=ref_name: _ref_target(row[n]))
            else:
                return None
        else:
            return None
    if not left_keys:
        return None
    return left_keys, right_keys


def _hash_join_columnar(
    left: Tab, right: Tab, out_columns, left_keys, right_keys
) -> Tab:
    """Batch hash join: match by cursor probes, emit by column gathers."""
    right_cursor = ColumnCursor(right)
    buckets: Dict[tuple, List[int]] = {}
    for j in range(len(right)):
        right_cursor.seek(j)
        key = tuple(k(right_cursor) for k in right_keys)
        buckets.setdefault(key, []).append(j)
    left_cursor = ColumnCursor(left)
    left_picks: List[int] = []
    right_picks: List[int] = []
    for i in range(len(left)):
        left_cursor.seek(i)
        key = tuple(k(left_cursor) for k in left_keys)
        matched = buckets.get(key)
        if matched:
            left_picks.extend([i] * len(matched))
            right_picks.extend(matched)
    data = [
        tuple(column[i] for i in left_picks) for column in left.column_data()
    ] + [
        tuple(column[j] for j in right_picks) for column in right.column_data()
    ]
    return Tab.from_columns(out_columns, data, len(left_picks))


def _unwrap(value):
    if isinstance(value, DataNode) and value.is_atom_leaf:
        return value.atom
    return value


def _eq_key(value):
    """Hash key mirroring ``=`` semantics (numeric cross-type equality,
    MISSING never equal, atom leaves unwrapped)."""
    from repro.core.algebra.tab import _cell_key

    value = _unwrap(value)
    if isinstance(value, MissingValue):
        return ("never", object())
    if isinstance(value, (bool, int, float)):
        return ("num", float(value))
    return _cell_key(value)


def _ref_target(value):
    if isinstance(value, DataNode) and value.is_reference:
        return ("ident", value.ref_target)
    return ("ident", None)


def _node_ident(value):
    if isinstance(value, DataNode) and value.ident is not None:
        return ("ident", value.ident)
    return ("ident", object())  # never joins


def _eval_djoin(plan: DJoinOp, env: Environment, outer: Optional[Row]) -> Tab:
    left = _evaluate(plan.left, env, outer)
    # Column names come from the actual right-hand Tabs (a pushed fragment
    # may order its columns differently from the static inference).
    out_columns = plan.output_columns()
    if not env.policy.batch_djoin:
        rows = []
        for lrow in left:
            inner_outer = _overlay(lrow, outer)
            right = _evaluate(plan.right, env, inner_outer)
            out_columns = left.columns + right.columns
            for rrow in right:
                rows.append(Row(out_columns, lrow.cells + rrow.cells))
        env.stats.record_operator("DJoin", len(rows))
        return Tab(out_columns, rows)

    # Dependent-join batching: the right plan only observes the outer
    # columns in plan_parameters(right), so left rows that agree on them
    # share one right-branch evaluation.  Distinct binding tuples are
    # evaluated in first-appearance order (and concurrently under a
    # parallel policy), then re-expanded in the original row order —
    # row-for-row identical to the serial nested loop.
    parameters = env.plan_parameters(plan.right)
    keys: List[tuple] = []
    representative: Dict[tuple, Row] = {}
    for lrow in left:
        inner_outer = _overlay(lrow, outer)
        key = outer_binding_key(inner_outer, parameters)
        keys.append(key)
        if key not in representative:
            representative[key] = inner_outer
    avoided = len(left.rows) - len(representative)
    env.stats.record_batched(avoided)
    if env.tracer is not None and avoided > 0:
        env.tracer.annotate(batched=avoided)
    order = list(representative)
    scheduler = env.scheduler() if len(order) > 1 else None
    tabs: Dict[tuple, Tab] = {}
    if scheduler is not None:
        outcomes = scheduler.run(
            [
                lambda o=representative[key]: _evaluate(plan.right, env, o)
                for key in order
            ],
            tracer=env.tracer,
            context=env.context,
        )
        env.stats.record_parallel(len(order))
        for key, (tab, error) in zip(order, outcomes):
            if error is not None:
                raise error
            tabs[key] = tab
    else:
        for key in order:
            tabs[key] = _evaluate(plan.right, env, representative[key])

    # Batched re-expansion as column gathers: when every right-branch Tab
    # shares one column layout, the output is assembled without building a
    # Row per result — left cells repeat per match count, right columns
    # concatenate in outer-row order (identical to the nested loop).
    right_columns = None
    uniform = env.policy.vectorize
    if uniform:
        for tab in tabs.values():
            if right_columns is None:
                right_columns = tab.columns
            elif tab.columns != right_columns:
                uniform = False
                break
    if uniform and right_columns is not None:
        out_columns = left.columns + right_columns
        left_cols = left.column_data()
        out_left = [[] for _ in left.columns]
        out_right = [[] for _ in right_columns]
        total = 0
        for i, key in enumerate(keys):
            right = tabs[key]
            count = len(right)
            if not count:
                continue
            total += count
            for gathered, column in zip(out_left, left_cols):
                if count == 1:
                    gathered.append(column[i])
                else:
                    gathered.extend([column[i]] * count)
            for gathered, column in zip(out_right, right.column_data()):
                gathered.extend(column)
        data = tuple(tuple(col) for col in out_left) + tuple(
            tuple(col) for col in out_right
        )
        result = Tab.from_columns(out_columns, data, total)
        env.stats.record_operator("DJoin", total)
        env.stats.record_batch(total)
        return result

    rows = []
    for lrow, key in zip(left.rows, keys):
        right = tabs[key]
        out_columns = left.columns + right.columns
        for rrow in right:
            rows.append(Row(out_columns, lrow.cells + rrow.cells))
    env.stats.record_operator("DJoin", len(rows))
    return Tab(out_columns, rows)


def _eval_union(plan: UnionOp, env: Environment, outer: Optional[Row]) -> Tab:
    """Union of two branches, optionally degrading on source failure.

    When the environment carries a resilience runtime that allows partial
    results, a branch whose sources are unavailable (retries exhausted or
    circuit open) is *dropped*: its sources and the failure cause are
    recorded on the stats, the answer is marked degraded, and the
    surviving branch is returned.  With both branches down there is no
    partial answer, so :class:`PartialResultError` is raised.
    """
    scheduler = env.scheduler()
    if scheduler is not None:
        # Both branches evaluate concurrently; their outcomes are then
        # folded in branch order, so degradation bookkeeping and error
        # propagation match the serial path (a failing left branch under
        # a fail-fast policy re-raises before the right is examined).
        outcomes = scheduler.run(
            [
                lambda: _evaluate(plan.left, env, outer),
                lambda: _evaluate(plan.right, env, outer),
            ],
            tracer=env.tracer,
            context=env.context,
        )
        env.stats.record_parallel(2)

        def branch_result(index: int, branch: Plan) -> Tab:
            tab, error = outcomes[index]
            if error is not None:
                raise error
            return tab

    else:

        def branch_result(index: int, branch: Plan) -> Tab:
            return _evaluate(branch, env, outer)

    branches: List[Optional[Tab]] = []
    last_error: Optional[SourceUnavailableError] = None
    for index, branch in enumerate((plan.left, plan.right)):
        try:
            branches.append(branch_result(index, branch))
        except SourceUnavailableError as error:
            if env.resilience is None or not env.resilience.allow_partial:
                raise
            involved = ", ".join(sorted(_branch_sources(branch))) or "?"
            failed = error.source or involved
            env.resilience.record_dropped(
                failed, f"union branch over [{involved}] dropped: {error}"
            )
            if env.tracer is not None:
                env.tracer.annotate(dropped=failed)
            last_error = error
            branches.append(None)
    left, right = branches
    if left is None and right is None:
        raise PartialResultError(
            "every Union branch failed; no partial result to return"
        ) from last_error
    if left is None or right is None:
        combined = (left if right is None else right).distinct()
        env.stats.record_operator("Union", len(combined))
        return combined
    if left.columns != right.columns:
        right = right.project(left.columns)
    if env.policy.vectorize and (left.is_columnar or right.is_columnar):
        data = tuple(
            lcol + rcol
            for lcol, rcol in zip(left.column_data(), right.column_data())
        )
        combined = Tab.from_columns(
            left.columns, data, len(left) + len(right)
        ).distinct()
        env.stats.record_operator("Union", len(combined))
        env.stats.record_batch(len(combined))
        return combined
    combined = Tab(left.columns, tuple(left.rows) + tuple(right.rows)).distinct()
    env.stats.record_operator("Union", len(combined))
    return combined


def _eval_scatter(plan: ScatterOp, env: Environment, outer: Optional[Row]) -> Tab:
    """Scatter-gather over shard branches, concatenated in shard order.

    Unlike Union, no ``distinct`` is applied: the partitioning function
    places every document on exactly one shard, so the branches are
    disjoint bags whose shard-order concatenation *is* the logical
    source's answer.  Branches run concurrently under a parallel policy
    and fold in shard order, so the result — and error propagation — is
    byte-identical to serial evaluation.

    ``prune_param`` adds information-passing pruning: when the outer row
    supplies the column the rule equated with the partition key, only
    the branch owning that value's shard evaluates; the others are
    pruned at runtime (per outer row, under a DJoin).

    Degradation mirrors Union: under a partial-results policy a branch
    whose shard is unavailable (all replicas down) is dropped and
    recorded; with every branch down there is no partial answer.
    """
    active: List[Tuple[int, Plan]] = list(zip(plan.shard_ids, plan.branches))
    runtime_pruned = 0
    if plan.prune_param is not None and outer is not None and plan.prune_param in outer:
        target = plan.partition.shard_of(_unwrap(outer[plan.prune_param]))
        kept = [(sid, branch) for sid, branch in active if sid == target]
        runtime_pruned = len(active) - len(kept)
        active = kept
    env.stats.record_shard(
        scatter=len(active),
        pruned=(plan.total - len(plan.branches)) + runtime_pruned,
    )
    if env.tracer is not None:
        env.tracer.annotate(
            shards=len(active), shard_total=plan.total,
            shard_pruned=plan.total - len(active),
        )
    if not active:
        # Every branch statically targeted other shards than the outer
        # row's key value: the row matches nothing on this source.
        return Tab(plan.output_columns(), [])

    scheduler = env.scheduler() if len(active) > 1 else None
    if scheduler is not None:
        outcomes = scheduler.run(
            [lambda b=branch: _evaluate(b, env, outer) for _sid, branch in active],
            tracer=env.tracer,
            context=env.context,
        )
        env.stats.record_parallel(len(active))

        def branch_result(index: int) -> Tab:
            tab, error = outcomes[index]
            if error is not None:
                raise error
            return tab

    else:

        def branch_result(index: int) -> Tab:
            return _evaluate(active[index][1], env, outer)

    tabs: List[Tab] = []
    last_error: Optional[SourceUnavailableError] = None
    for index, (_sid, branch) in enumerate(active):
        try:
            tabs.append(branch_result(index))
        except SourceUnavailableError as error:
            if env.resilience is None or not env.resilience.allow_partial:
                raise
            involved = ", ".join(sorted(_branch_sources(branch))) or "?"
            failed = error.source or involved
            env.resilience.record_dropped(
                failed, f"shard branch over [{involved}] dropped: {error}"
            )
            if env.tracer is not None:
                env.tracer.annotate(dropped=failed)
            last_error = error
    if not tabs:
        raise PartialResultError(
            "every shard branch failed; no partial result to return"
        ) from last_error
    columns = tabs[0].columns
    tabs = [
        tab if tab.columns == columns else tab.project(columns) for tab in tabs
    ]
    if env.policy.vectorize and any(tab.is_columnar for tab in tabs):
        data = tuple(
            tuple(cell for tab in tabs for cell in tab.column_data()[i])
            for i in range(len(columns))
        )
        combined = Tab.from_columns(columns, data, sum(len(t) for t in tabs))
        env.stats.record_operator("Scatter", len(combined))
        env.stats.record_batch(len(combined))
        return combined
    rows: List[Row] = []
    for tab in tabs:
        rows.extend(tab.rows)
    combined = Tab(columns, rows)
    env.stats.record_operator("Scatter", len(combined))
    return combined


def _branch_sources(plan: Plan) -> set:
    """Names of the sources a plan branch reads (Source and Pushed leaves)."""
    return {
        node.source
        for node in plan.walk()
        if isinstance(node, (SourceOp, PushedOp))
    }

def _eval_intersect(plan: IntersectOp, env: Environment, outer: Optional[Row]) -> Tab:
    left, right = _eval_pair(plan.left, plan.right, env, outer)
    if left.columns != right.columns:
        right = right.project(left.columns)
    right_keys = {row._value_key() for row in right}
    result = Tab(
        left.columns, [row for row in left if row._value_key() in right_keys]
    ).distinct()
    env.stats.record_operator("Intersect", len(result))
    return result


# ---------------------------------------------------------------------------
# Outer-environment helpers
# ---------------------------------------------------------------------------

def _lookup(row: Row, outer: Optional[Row], column: str):
    """Resolve *column* in the row, falling back to the outer environment."""
    if column in row:
        return row[column]
    if outer is not None and column in outer:
        return outer[column]
    raise EvaluationError(
        f"Bind target ${column} is neither a local nor an outer column"
    )


def _overlay(row: Row, outer: Optional[Row]) -> Row:
    """A row whose lookups fall back to *outer* for missing columns."""
    if outer is None:
        return row
    extra_columns = tuple(c for c in outer.columns if c not in row)
    if not extra_columns:
        return row
    return row.extended(extra_columns, tuple(outer[c] for c in extra_columns))
