"""The pattern-matching engine behind the ``Bind`` operator.

``Bind`` "extracts data from an input tree according to a given filter
(i.e., a tree with distinct variables).  It produces a table that contains
the variable bindings resulting from the pattern-matching" (paper,
Section 3.1 and Figure 4).

:class:`FilterMatcher` computes, for one data tree and one filter, the
list of binding dictionaries.  Each distinct way the filter's mandatory
items can be matched against the tree contributes one binding; optional
(starred) items iterate over their matches or bind
:data:`~repro.model.filters.MISSING`; rest items (``*($fields)``) bind the
collection of children claimed by no sibling.

References are followed transparently when an identifier index is
supplied: the view definition of Section 2 navigates from an artifact's
``owners`` list through person references, which requires dereferencing
during the match.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence

from repro.errors import BindError
from repro.model.filters import (
    FConst,
    FDescend,
    FElem,
    Filter,
    FRest,
    FStar,
    FVar,
    LabelVar,
)
from repro.model.indexes import required_constants
from repro.model.trees import DataNode

Binding = Dict[str, object]


def collection_explosion(bound: int) -> BindError:
    """The error both matching engines raise when a whole collection call
    exceeds the binding bound (the per-tree guard catches single trees)."""
    return BindError(
        f"filter produces more than {bound} bindings across a "
        f"collection; refusing the cartesian explosion"
    )


class FilterMatcher:
    """Matches filters against data trees, with optional reference deref.

    Parameters
    ----------
    index:
        Optional ``{ident: DataNode}`` mapping used to dereference
        reference nodes encountered during the match.  Without an index a
        reference node only matches variable filters (which bind the
        reference itself).
    max_matches:
        Safety bound on the number of bindings produced per tree and
        across one :meth:`match_collection` call; exceeded bounds raise
        :class:`BindError` (a runaway cartesian product is almost always
        a query bug).
    document_index:
        Optional :class:`~repro.model.indexes.DocumentIndex` over the
        tree(s) being matched.  Items demanding constants then seed
        their candidate children from the value index and ``**`` jumps
        via the label index — where :meth:`DocumentIndex.covers` proves
        it sound; bindings are byte-identical either way.  ``seeks`` and
        ``hits`` count the index consultations.
    """

    def __init__(
        self,
        index: Optional[Dict[str, DataNode]] = None,
        max_matches: int = 1_000_000,
        document_index=None,
    ) -> None:
        self._index = index or {}
        self._max_matches = max_matches
        #: Public and reassignable: the evaluator points one matcher at
        #: each row's document in turn.
        self.document_index = document_index
        #: ``id(item) -> (item, lookup label, required constants)`` so the
        #: sargability of each filter item is analyzed once per matcher,
        #: not once per node.
        self._item_access: Dict[int, tuple] = {}
        self.seeks = 0
        self.hits = 0

    @property
    def max_matches(self) -> int:
        return self._max_matches

    # -- public entry points -------------------------------------------------

    def match(self, node: DataNode, flt: Filter) -> List[Binding]:
        """All bindings of *flt* against the tree rooted at *node*."""
        return self._match(node, flt)

    def match_collection(
        self, nodes: Sequence[DataNode], flt: Filter
    ) -> List[Binding]:
        """Union of the bindings of *flt* against each tree in *nodes*."""
        match = self._match
        bound = self._max_matches
        bindings: List[Binding] = []
        for node in nodes:
            bindings.extend(match(node, flt))
            if len(bindings) > bound:
                raise collection_explosion(bound)
        return bindings

    # -- dispatch -------------------------------------------------------------

    def _match(self, node: DataNode, flt: Filter) -> List[Binding]:
        if isinstance(flt, FVar):
            return [{flt.name: _bound_value(node)}]
        if isinstance(flt, FConst):
            target = self._deref(node)
            if target.is_atom_leaf and target.atom == flt.value:
                return [{}]
            return []
        if isinstance(flt, FElem):
            return self._match_elem(node, flt)
        if isinstance(flt, FDescend):
            return self._match_descend(node, flt)
        if isinstance(flt, (FStar, FRest)):
            raise BindError(
                f"{type(flt).__name__} is only meaningful as a child of an element filter"
            )
        raise BindError(f"unknown filter kind: {flt!r}")

    def _deref(self, node: DataNode) -> DataNode:
        while node.is_reference and node.ref_target in self._index:
            node = self._index[node.ref_target]
        return node

    def _match_elem(self, node: DataNode, flt: FElem) -> List[Binding]:
        node = self._deref(node)
        if not flt.label_matches(node.label):
            return []
        own: Binding = {}
        if isinstance(flt.label, LabelVar):
            own[flt.label.name] = node.label
        if flt.var is not None:
            own[flt.var] = _bound_value(node)

        if not flt.children:
            return [own]

        # An atom leaf can satisfy an element filter whose single child is
        # a leaf-compatible filter (variable or constant).
        if node.is_atom_leaf:
            if len(flt.children) == 1:
                inner = self._match_leaf_content(node, flt.children[0])
                return [_merged(own, binding) for binding in inner]
            return []

        return self._match_children(node, flt, own)

    def _match_leaf_content(self, node: DataNode, flt: Filter) -> List[Binding]:
        if isinstance(flt, FVar):
            return [{flt.name: node.atom}]
        if isinstance(flt, FConst):
            return [{}] if node.atom == flt.value else []
        return []

    def _sargable(self, item: Filter) -> tuple:
        """``(lookup label, required constants)`` for one filter item."""
        entry = self._item_access.get(id(item))
        if entry is not None and entry[0] is item:
            return entry[1], entry[2]
        target = item.child if isinstance(item, FStar) else item
        lookup: Optional[str] = None
        required: tuple = ()
        if isinstance(target, FElem) and isinstance(target.label, str):
            lookup = target.label
            required = required_constants(target)
        self._item_access[id(item)] = (item, lookup, required)
        return lookup, required

    def _match_children(
        self, node: DataNode, flt: FElem, own: Binding
    ) -> List[Binding]:
        """Match the child filters against the node's children."""
        rest_item: Optional[FRest] = None
        alternatives_per_item: List[List[Binding]] = []
        claimed: set = set()  # ids of children matched by some sibling item
        doc_index = self.document_index
        if doc_index is not None and not doc_index.covers(node):
            doc_index = None

        for item in flt.children:
            if isinstance(item, FRest):
                rest_item = item
                continue
            # Stars iterate their inner filter: one binding alternative
            # per matching child.  Zero matches fail the element, exactly
            # like the DJoin the star is equivalent to (Figure 7): an
            # empty nested collection contributes no rows.  Mandatory
            # items fail the whole element the same way.
            target = item.child if isinstance(item, FStar) else item
            candidates: Sequence[DataNode] = node.children
            if doc_index is not None:
                lookup, required = self._sargable(item)
                if required:
                    # Associative access: only children whose subtree
                    # holds every required constant can match — a sound,
                    # ordered superset straight from the value index.
                    candidates = doc_index.child_candidates(
                        node, lookup, required
                    )
                    self.seeks += 1
                    self.hits += len(candidates)
            alts: List[Binding] = []
            for child in candidates:
                for binding in self._match(child, target):
                    claimed.add(id(child))
                    alts.append(binding)
            if not alts:
                return []
            alternatives_per_item.append(alts)

        rest_binding: Binding = {}
        if rest_item is not None:
            rest = tuple(
                child for child in node.children if id(child) not in claimed
            )
            rest_binding[rest_item.name] = rest

        results: List[Binding] = []
        total = 1
        for alts in alternatives_per_item:
            total *= len(alts)
            if total > self._max_matches:
                raise BindError(
                    f"filter produces more than {self._max_matches} bindings "
                    f"for one tree; refusing the cartesian explosion"
                )
        for combo in product(*alternatives_per_item):
            merged = dict(own)
            merged.update(rest_binding)
            for binding in combo:
                merged.update(binding)
            results.append(merged)
        return results

    def _match_descend(self, node: DataNode, flt: FDescend) -> List[Binding]:
        node = self._deref(node)
        child = flt.child
        doc_index = self.document_index
        if (
            doc_index is not None
            and isinstance(child, FElem)
            and isinstance(child.label, str)
            and doc_index.covers(node)
        ):
            # ``**`` into a literal label: jump to the label's positions
            # instead of probing every descendant (the child filter
            # re-checks the label, so the jump is a pure filter).
            candidates = doc_index.descendants_with_label(node, child.label)
            self.seeks += 1
            self.hits += len(candidates)
            bindings: List[Binding] = []
            for descendant in candidates:
                bindings.extend(self._match(descendant, child))
            return bindings
        bindings = []
        for descendant in node.descendants():
            bindings.extend(self._match(descendant, child))
        return bindings


def _merged(first: Binding, second: Binding) -> Binding:
    merged = dict(first)
    merged.update(second)
    return merged


def _bound_value(node: DataNode) -> object:
    """The Tab cell a variable receives: atom value for leaves, node otherwise."""
    if node.is_atom_leaf:
        return node.atom
    return node


def match_filter(
    node: DataNode,
    flt: Filter,
    index: Optional[Dict[str, DataNode]] = None,
    document_index=None,
) -> List[Binding]:
    """Convenience wrapper: one-shot :class:`FilterMatcher` call."""
    return FilterMatcher(index=index, document_index=document_index).match(
        node, flt
    )
