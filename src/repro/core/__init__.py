"""The paper's primary contribution: the YAT XML algebra and its optimizer."""
