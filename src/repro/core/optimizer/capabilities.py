"""Capability-based rewriting (paper, Section 5.3) — round two.

"Exploiting source capabilities during query processing is definitely the
most important technique in a distributed context."  Two rules:

:class:`EquivalenceInsertionRule`
    applies declared source equivalences.  For the Wais
    ``SelectionImplication`` ("starting from a selection with equality
    over the result of a Bind, one can add a more general contains
    predicate over the root of the document"), it finds
    ``Select($x = "text")`` above a Bind on a source that declared the
    implication, makes sure the document root is bound to a tree variable
    ``$w``, and inserts ``Select(contains($w, "text"))`` directly above
    the Bind.  The original equality stays: ``contains`` is weaker (word
    match), so the mediator still post-filters — false positives are
    expected and correct.

:class:`CapabilityPushdownRule`
    wraps the largest admissible ``[Select*](Bind(Source))`` fragment in
    a ``Pushed`` operator.  When the Bind itself is not admissible (the
    Wais filter restriction), it first splits the Bind linearly
    (Figure 7) and pushes the admissible prefix, leaving the residual
    navigation at the mediator — exactly the two-step rewriting of
    Figure 9.

Both rules consult only the imported interfaces; nothing here knows what
a "Wais" or an "O2" is.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.capabilities.equivalences import SelectionImplication
from repro.core.algebra.expressions import (
    Cmp,
    Const,
    Expr,
    FunCall,
    Var,
    conjuncts,
)
from repro.core.algebra.operators import (
    BindOp,
    Plan,
    ProjectOp,
    PushedOp,
    SelectOp,
    SourceOp,
)
from repro.core.optimizer.bind_split import split_below_root
from repro.core.optimizer.rules import OptimizerContext, RewriteRule
from repro.model.filters import FElem, FStar, FVar, Filter


class EquivalenceInsertionRule(RewriteRule):
    """Insert declared source predicates below mediator selections."""

    name = "EquivalenceInsertion"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, SelectOp):
            return None
        # Locate the Bind(Source) this chain of selections and residual
        # Binds ultimately feeds on (a residual Bind navigates deeper into
        # the same documents, so variables it binds still come from them).
        chain: List[Plan] = [plan]
        node: Plan = plan.input
        while True:
            if isinstance(node, BindOp) and isinstance(node.input, SourceOp):
                break
            if isinstance(node, (SelectOp, BindOp)):
                chain.append(node)
                node = node.children()[0]
                continue
            return None
        bind = node
        source = bind.input.source
        interface = context.interface(source)
        if interface is None:
            return None
        implications = [
            eq for eq in interface.equivalences
            if isinstance(eq, SelectionImplication)
        ]
        if not implications:
            return None
        bound = set(bind.filter.variables())
        for op in chain:
            if isinstance(op, BindOp):
                bound |= set(op.filter.variables())

        filters = [bind.filter] + [
            op.filter for op in chain if isinstance(op, BindOp)
        ]
        for implication in implications:
            for conjunct in conjuncts(plan.predicate):
                matched = self._matching_constant(conjunct, implication, bound)
                if matched is None:
                    continue
                variable, constant = matched
                predicate_name = implication.source_predicate
                if implication.field_scoped:
                    # Prefer the per-field predicate the source exported
                    # (free-WAIS-sf structured fields) when the variable's
                    # binding label is known and declared.
                    label = _binding_label(filters, variable)
                    if label is not None and interface.supports(
                        implication.scoped_predicate(label)
                    ):
                        predicate_name = implication.scoped_predicate(label)
                rewritten = self._insert(
                    plan, chain, bind, predicate_name, constant, context
                )
                if rewritten is not None:
                    return rewritten
        return None

    @staticmethod
    def _matching_constant(
        conjunct: Expr, implication: SelectionImplication, bound: set
    ) -> Optional[Tuple[str, str]]:
        """``(variable, constant)`` of ``$x = "text"`` when applicable."""
        if not isinstance(conjunct, Cmp) or conjunct.op != implication.mediator_predicate:
            return None
        sides = (conjunct.left, conjunct.right)
        variables = [s for s in sides if isinstance(s, Var)]
        constants = [s for s in sides if isinstance(s, Const)]
        if len(variables) != 1 or len(constants) != 1:
            return None
        if variables[0].name not in bound:
            return None
        value = constants[0].value
        if not isinstance(value, str):
            return None  # only textual predicates imply a full-text search
        if implication.argument_type not in (None, "String"):
            return None
        return variables[0].name, value

    def _insert(
        self,
        top: SelectOp,
        chain: List[Plan],
        bind: BindOp,
        predicate_name: str,
        constant: str,
        context: OptimizerContext,
    ) -> Optional[Plan]:
        root_var, new_filter = self._rooted_filter(bind.filter, context)
        if root_var is None:
            return None
        derived = FunCall(predicate_name, [Var(root_var), Const(constant)])
        # Idempotence: never insert the same derived predicate twice.
        for op in chain:
            if isinstance(op, SelectOp) and derived in conjuncts(op.predicate):
                return None
        new_bind = BindOp(bind.input, new_filter, on=bind.on, keep_on=bind.keep_on)
        rebuilt: Plan = SelectOp(new_bind, derived)
        for op in reversed(chain):
            if isinstance(op, SelectOp):
                rebuilt = SelectOp(rebuilt, op.predicate)
            else:
                assert isinstance(op, BindOp)
                rebuilt = BindOp(rebuilt, op.filter, on=op.on, keep_on=op.keep_on)
        if new_filter is not bind.filter:
            # A fresh document variable was introduced: restore the original
            # output schema so enclosing operators are unaffected.
            original = top.output_columns()
            rebuilt = ProjectOp.keep(rebuilt, original)
        return rebuilt

    @staticmethod
    def _rooted_filter(
        flt: Filter, context: OptimizerContext
    ) -> Tuple[Optional[str], Optional[Filter]]:
        """Ensure the per-document element carries a tree variable.

        For a ``root [ * doc[...] ]`` filter, returns the document
        variable (existing or freshly added) and the possibly-extended
        filter.
        """
        if not (
            isinstance(flt, FElem)
            and len(flt.children) == 1
            and isinstance(flt.children[0], FStar)
            and isinstance(flt.children[0].child, FElem)
        ):
            return None, None
        inner = flt.children[0].child
        if inner.var is not None:
            return inner.var, flt
        fresh = context.fresh_variable("w")
        extended = FElem(
            flt.label,
            [FStar(FElem(inner.label, inner.children, var=fresh))],
            var=flt.var,
        )
        return fresh, extended


def _binding_label(filters, variable: str) -> Optional[str]:
    """The concrete element label whose content binds *variable*, if any."""
    for flt in filters:
        for node in flt.walk():
            if not isinstance(node, FElem) or not isinstance(node.label, str):
                continue
            for child in node.children:
                if isinstance(child, FVar) and child.name == variable:
                    return node.label
    return None


class CapabilityPushdownRule(RewriteRule):
    """Wrap the largest admissible fragment in a ``Pushed`` operator."""

    name = "CapabilityPushdown"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        projection: Optional[ProjectOp] = None
        node = plan
        if isinstance(node, ProjectOp):
            projection = node
            node = node.input
        selects: List[SelectOp] = []
        while isinstance(node, SelectOp):
            selects.append(node)
            node = node.input
        if not isinstance(node, BindOp) or not isinstance(node.input, SourceOp):
            return None
        bind = node
        source = bind.input.source
        matcher = context.matcher(source)
        if matcher is None:
            return None

        if matcher.bind_admissible(bind.filter):
            return self._push_whole(plan, projection, selects, bind, source, matcher)
        return self._push_split(plan, projection, selects, bind, source, matcher, context)

    # -- the Bind itself is admissible -------------------------------------------

    def _push_whole(self, plan, projection, selects, bind, source, matcher):
        bound = set(bind.filter.variables())
        pushable = [
            s for s in selects
            if matcher.predicate_pushable(s.predicate)
            and set(s.predicate.variables()) <= bound
        ]
        kept = [s for s in selects if s not in pushable]

        fragment: Plan = bind
        for select in reversed(pushable):
            fragment = SelectOp(fragment, select.predicate)
        push_projection = (
            projection is not None
            and not kept
            and matcher.operation_pushable("project")
        )
        if push_projection:
            fragment = ProjectOp(fragment, projection.items)
        rebuilt: Plan = PushedOp(source, fragment)
        for select in reversed(kept):
            rebuilt = SelectOp(rebuilt, select.predicate)
        if projection is not None and not push_projection:
            rebuilt = ProjectOp(rebuilt, projection.items)
        return rebuilt

    # -- the Bind must be split first (Figure 9, Wais side) ------------------------

    def _push_split(self, plan, projection, selects, bind, source, matcher, context):
        split = split_below_root(bind, context)
        if split is None:
            return None
        outer, residual = split
        if not matcher.bind_admissible(outer.filter):
            return None
        outer_columns = set(outer.output_columns())
        pushable = [
            s for s in selects
            if matcher.predicate_pushable(s.predicate)
            and set(s.predicate.variables()) <= outer_columns
        ]
        if not pushable:
            # Pushing a bare whole-document Bind transfers as much as the
            # Source itself; without a pushed predicate there is no win.
            return None
        kept = [s for s in selects if s not in pushable]

        fragment: Plan = outer
        for select in reversed(pushable):
            fragment = SelectOp(fragment, select.predicate)
        rebuilt: Plan = BindOp(
            PushedOp(source, fragment),
            residual.filter,
            on=residual.on,
            keep_on=residual.keep_on,
        )
        for select in reversed(kept):
            rebuilt = SelectOp(rebuilt, select.predicate)
        if projection is not None:
            rebuilt = ProjectOp(rebuilt, projection.items)
        return rebuilt
