"""Classical pushdown rewritings, adapted to the YAT algebra.

"Optimization techniques from relational and object databases can be
applied directly on the corresponding operations in our algebra"
(Section 5).  These are the workhorses of the Figure 8 derivation:

* :class:`SelectPushdownRule` — move selection conjuncts below joins,
  dependency joins, projections, binds and distincts, as far as their
  variables allow;
* :class:`ProjectComposeRule` — collapse stacked projections;
* :class:`DropNoopProjectRule` — remove identity projections;
* :class:`JoinBranchEliminationRule` — "because all artifacts are
  available in the XML source, we can ... eliminate the branch
  corresponding to the O2 source": when the columns required above a join
  all come from one side, the join predicate is a pure cross-side
  equality, and the administrator has *declared* the containment that
  makes the join lossless, the other branch disappears.

Join-branch elimination is only sound under set semantics (a dropped
branch may have changed row multiplicities); the Bind–Tree elimination
that creates these opportunities always leaves a ``Distinct`` above.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.algebra.expressions import (
    Cmp,
    Expr,
    Var,
    conjunction,
    conjuncts,
)
from repro.core.algebra.operators import (
    BindOp,
    DJoinOp,
    DistinctOp,
    JoinOp,
    Plan,
    ProjectOp,
    SelectOp,
    SourceOp,
)
from repro.core.optimizer.rules import OptimizerContext, RewriteRule


class SelectPushdownRule(RewriteRule):
    """Push selection conjuncts as deep as their variables allow."""

    name = "SelectPushdown"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, SelectOp):
            return None
        child = plan.input
        parts = list(conjuncts(plan.predicate))

        if isinstance(child, JoinOp):
            return self._through_join(parts, child)
        if isinstance(child, DJoinOp):
            return self._through_djoin(parts, child)
        if isinstance(child, ProjectOp):
            return self._through_project(parts, child)
        if isinstance(child, DistinctOp):
            return DistinctOp(SelectOp(child.input, plan.predicate))
        if isinstance(child, BindOp):
            return self._through_bind(parts, child)
        if isinstance(child, SelectOp):
            # Canonicalize stacked selections into one conjunction.
            merged = conjunction(list(conjuncts(child.predicate)) + parts)
            return SelectOp(child.input, merged)
        return None

    @staticmethod
    def _rebuild(pushed_child: Plan, remaining: List[Expr]) -> Plan:
        if remaining:
            return SelectOp(pushed_child, conjunction(remaining))
        return pushed_child

    def _through_join(self, parts: List[Expr], join: JoinOp) -> Optional[Plan]:
        left_cols = set(join.left.output_columns())
        right_cols = set(join.right.output_columns())
        to_left = [p for p in parts if set(p.variables()) <= left_cols]
        to_right = [
            p for p in parts if p not in to_left and set(p.variables()) <= right_cols
        ]
        if not to_left and not to_right:
            return None
        remaining = [p for p in parts if p not in to_left and p not in to_right]
        left = join.left if not to_left else SelectOp(join.left, conjunction(to_left))
        right = (
            join.right if not to_right else SelectOp(join.right, conjunction(to_right))
        )
        return self._rebuild(JoinOp(left, right, join.predicate), remaining)

    def _through_djoin(self, parts: List[Expr], djoin: DJoinOp) -> Optional[Plan]:
        left_cols = set(djoin.left.output_columns())
        to_left = [p for p in parts if set(p.variables()) <= left_cols]
        if not to_left:
            return None
        remaining = [p for p in parts if p not in to_left]
        left = SelectOp(djoin.left, conjunction(to_left))
        return self._rebuild(DJoinOp(left, djoin.right), remaining)

    def _through_project(self, parts: List[Expr], project: ProjectOp) -> Optional[Plan]:
        # Rename predicate variables back to pre-projection columns.
        reverse = {alias: column for column, alias in project.items}
        pushable: List[Expr] = []
        remaining: List[Expr] = []
        for part in parts:
            if set(part.variables()) <= set(reverse):
                pushable.append(part.rename(reverse))
            else:
                remaining.append(part)
        if not pushable:
            return None
        pushed = ProjectOp(SelectOp(project.input, conjunction(pushable)),
                           project.items)
        return self._rebuild(pushed, remaining)

    def _through_bind(self, parts: List[Expr], bind: BindOp) -> Optional[Plan]:
        below_cols = set(bind.input.output_columns())
        pushable = [p for p in parts if set(p.variables()) <= below_cols]
        if not pushable:
            return None
        remaining = [p for p in parts if p not in pushable]
        pushed = BindOp(
            SelectOp(bind.input, conjunction(pushable)),
            bind.filter,
            on=bind.on,
            keep_on=bind.keep_on,
        )
        return self._rebuild(pushed, remaining)


class ProjectComposeRule(RewriteRule):
    """Collapse ``Project(Project(x))`` into one projection."""

    name = "ProjectCompose"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, ProjectOp) or not isinstance(plan.input, ProjectOp):
            return None
        inner = plan.input
        inner_map = {alias: column for column, alias in inner.items}
        try:
            items = [(inner_map[column], alias) for column, alias in plan.items]
        except KeyError:
            return None  # outer projection references a column inner dropped
        return ProjectOp(inner.input, items)


class DropNoopProjectRule(RewriteRule):
    """Remove projections that keep every column unchanged."""

    name = "DropNoopProject"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, ProjectOp):
            return None
        identity = all(column == alias for column, alias in plan.items)
        if identity and plan.output_columns() == plan.input.output_columns():
            return plan.input
        return None


class JoinBranchEliminationRule(RewriteRule):
    """Drop a join branch no one needs, under a declared containment.

    Looks for ``Project( [Select|Bind|Distinct]* ( Join(l, r, p) ) )``
    where every column required above the join comes from one side, ``p``
    is a conjunction of cross-side equalities, and the administrator
    declared that every entity of the kept side's document has a partner
    in the dropped side's document (``OptimizerContext.containments``).
    """

    name = "JoinBranchElimination"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, ProjectOp):
            return None
        required = {column for column, _alias in plan.items}
        chain: List[Plan] = []
        node: Plan = plan.input
        while isinstance(node, (SelectOp, BindOp, DistinctOp)):
            if isinstance(node, SelectOp):
                required |= set(node.predicate.variables())
            elif isinstance(node, BindOp):
                # A Bind produces its filter variables and consumes ``on``.
                required -= set(node.filter.variables())
                required.add(node.on)
            chain.append(node)
            node = node.children()[0]
        if not isinstance(node, JoinOp):
            return None
        join = node

        left_cols = set(join.left.output_columns())
        right_cols = set(join.right.output_columns())
        pairs = self._equality_pairs(join.predicate, left_cols, right_cols)
        if pairs is None:
            return None

        for keep, drop, keep_cols in (
            (join.left, join.right, left_cols),
            (join.right, join.left, right_cols),
        ):
            # Dropped-side columns may be recovered through the join
            # equalities (the query's $t is the view's $t' on the kept side).
            mapping = {
                a: b for a, b in pairs if b in keep_cols and a not in keep_cols
            }
            if not all(c in keep_cols or c in mapping for c in required):
                continue
            keep_doc = self._single_document(keep)
            drop_doc = self._single_document(drop)
            if keep_doc is None or drop_doc is None:
                continue
            if not context.contained(keep_doc, drop_doc):
                continue
            return self._rebuild(plan, chain, keep, mapping)
        return None

    @staticmethod
    def _rebuild(
        plan: ProjectOp,
        chain: List[Plan],
        keep: Plan,
        mapping: dict,
    ) -> Plan:
        """Rebuild the chain on the kept branch, renaming dropped columns."""
        rebuilt: Plan = keep
        for op in reversed(chain):
            if isinstance(op, SelectOp):
                rebuilt = SelectOp(rebuilt, op.predicate.rename(mapping))
            elif isinstance(op, BindOp):
                rebuilt = BindOp(
                    rebuilt,
                    op.filter,
                    on=mapping.get(op.on, op.on),
                    keep_on=op.keep_on,
                )
            else:
                rebuilt = op.with_children([rebuilt])
        items = [
            (mapping.get(column, column), alias) for column, alias in plan.items
        ]
        return ProjectOp(rebuilt, items)

    @staticmethod
    def _equality_pairs(
        predicate: Expr, left_cols: Set[str], right_cols: Set[str]
    ) -> Optional[List[Tuple[str, str]]]:
        """Symmetric (a, b) pairs from a pure cross-side equality predicate."""
        pairs: List[Tuple[str, str]] = []
        for part in conjuncts(predicate):
            if not isinstance(part, Cmp) or part.op != "=":
                return None
            if not isinstance(part.left, Var) or not isinstance(part.right, Var):
                return None
            sides = {part.left.name in left_cols, part.right.name in left_cols}
            if sides != {True, False}:
                return None
            pairs.append((part.left.name, part.right.name))
            pairs.append((part.right.name, part.left.name))
        return pairs

    @staticmethod
    def _single_document(plan: Plan) -> Optional[str]:
        documents = [
            node.document for node in plan.walk() if isinstance(node, SourceOp)
        ]
        if len(documents) == 1:
            return documents[0]
        return None
