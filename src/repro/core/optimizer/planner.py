"""The three-round heuristic optimizer (paper, Sections 5 and 6).

"The implementation of the optimizer is ... based on heuristics and a
simple linear search strategy consisting of the three rewriting rounds
presented in last section":

1. **Composition & simplification** — eliminate Bind–Tree frontiers,
   push selections and projections, simplify Binds with type
   information, eliminate join branches under declared containments,
   merge Bind chains (Figures 7 and 8);
2. **Capability-based rewriting** — apply declared equivalences and push
   admissible fragments to their sources (Figure 9, first part);
3. **Information passing** — turn equi-joins over pushed fragments into
   bind joins (Figure 9, second part).

Each round runs its rule set to a fixpoint; rounds run once, in order.
:class:`Optimizer` records every application in a
:class:`~repro.core.optimizer.rules.RewriteTrace` so callers can print
the full derivation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.algebra.operators import Plan
from repro.core.optimizer.bind_simplify import (
    LabelVarExpansionRule,
    ProjectDrivenBindSimplifyRule,
)
from repro.core.optimizer.bind_split import MergeBindChainRule
from repro.core.optimizer.bind_tree import BindTreeEliminationRule
from repro.core.optimizer.capabilities import (
    CapabilityPushdownRule,
    EquivalenceInsertionRule,
)
from repro.core.optimizer.info_passing import BindJoinRule
from repro.core.optimizer.pushdown import (
    DropNoopProjectRule,
    JoinBranchEliminationRule,
    ProjectComposeRule,
    SelectPushdownRule,
)
from repro.core.optimizer.rules import (
    OptimizerContext,
    RewriteRule,
    RewriteTrace,
    rewrite_fixpoint,
)
from repro.core.optimizer.sharding import ShardExpansionRule


def round_one_rules() -> List[RewriteRule]:
    """Composition elimination and classical/type-driven simplification."""
    return [
        BindTreeEliminationRule(),
        ProjectComposeRule(),
        SelectPushdownRule(),
        JoinBranchEliminationRule(),
        ProjectDrivenBindSimplifyRule(),
        LabelVarExpansionRule(),
        MergeBindChainRule(),
        DropNoopProjectRule(),
    ]


def round_two_rules() -> List[RewriteRule]:
    """Capability-based rewriting (and shard expansion, which must see
    the Bind chain before pushdown replaces it with a Pushed fragment)."""
    return [
        ShardExpansionRule(),
        EquivalenceInsertionRule(),
        CapabilityPushdownRule(),
    ]


def round_three_rules() -> List[RewriteRule]:
    """Information passing between sources."""
    return [
        BindJoinRule(),
    ]


class Optimizer:
    """The linear three-round strategy over an :class:`OptimizerContext`."""

    def __init__(self, context: OptimizerContext) -> None:
        self.context = context

    def optimize(
        self,
        plan: Plan,
        rounds: Sequence[int] = (1, 2, 3),
        trace: Optional[RewriteTrace] = None,
    ) -> Tuple[Plan, RewriteTrace]:
        """Run the selected rounds (default: all three, in order).

        ``rounds`` exists for the ablation benchmarks: passing ``(1,)``
        or ``(1, 2)`` measures what each round contributes.
        """
        if trace is None:
            trace = RewriteTrace()
        rule_sets = {
            1: round_one_rules(),
            2: round_two_rules(),
            3: round_three_rules(),
        }
        for round_number in rounds:
            rules = rule_sets.get(round_number)
            if rules is None:
                raise ValueError(f"unknown optimization round: {round_number}")
            plan = rewrite_fixpoint(plan, rules, self.context, trace)
        return plan, trace


def optimize(
    plan: Plan,
    context: OptimizerContext,
    rounds: Sequence[int] = (1, 2, 3),
) -> Tuple[Plan, RewriteTrace]:
    """Convenience one-shot entry point."""
    return Optimizer(context).optimize(plan, rounds=rounds)
