"""Bind splitting and merging: the equivalences of Figure 7.

Three interchangeable forms of a complex ``Bind``:

* **DJoin form** — "a complex Bind can always be splitted into elementary
  Binds (i.e., with only one-level deep filters), connected together
  through DJoins": nested-collection navigation becomes a dependent join
  whose right input binds into the collection
  (:func:`split_nested_collection`);
* **linear form** — "another possibility is to split a complex Bind into
  a linear sequence of elementary ones, each one navigating down the
  result of the previous one" (:func:`split_below_root`), which is the
  form capability pushdown needs for the Wais source;
* **extent form** — navigation through references "transformed into
  associative access": the dependent navigation becomes a standard Join
  against the referenced class's extent (:func:`navigation_to_extent_join`),
  using the mediator built-in ``ref_is`` predicate on reference identity.

:class:`MergeBindChainRule` is the linear split read right-to-left — the
final step of the Figure 8 derivation ("using the Bind-Split equivalence
in the other way, we can merge the remaining filters").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.algebra.expressions import FunCall, Var
from repro.core.algebra.operators import (
    BindOp,
    DJoinOp,
    JoinOp,
    Plan,
    ProjectOp,
    SourceOp,
    UnitOp,
)
from repro.core.optimizer.rules import OptimizerContext, RewriteRule
from repro.model.filters import FElem, FStar, FVar, Filter
from repro.model.patterns import PNode, PRef, PStar
from repro.model.trees import DataNode
from repro.model.values import COLLECTION_KINDS

#: Name of the mediator built-in reference-identity predicate.
REF_IS = "ref_is"


def ref_is(reference, node) -> bool:
    """Mediator implementation of ``ref_is``: does *reference* target *node*?

    Registered in every mediator's function registry; sources never see it
    (the extent-join rewriting exists precisely to turn navigation into
    plain joins the mediator can evaluate).
    """
    return (
        isinstance(reference, DataNode)
        and reference.is_reference
        and isinstance(node, DataNode)
        and node.ident is not None
        and reference.ref_target == node.ident
    )


# ---------------------------------------------------------------------------
# DJoin form
# ---------------------------------------------------------------------------

def split_nested_collection(
    bind: BindOp, context: OptimizerContext
) -> Optional[Plan]:
    """Split the first nested-collection navigation into a DJoin.

    ``Bind_{... attr: list * inner ...}`` becomes::

        Project(drop $x)( DJoin( Bind_{... attr: $x ...},
                                 Bind_{list * inner} on $x ) )

    where ``$x`` is a fresh variable binding the collection node (the
    paper's footnote: "the new variable $x ... removed afterwards by a
    projection").
    """
    fresh = context.fresh_variable("x")
    split = _split_first_collection(bind.filter, fresh)
    if split is None:
        return None
    outer_filter, inner_filter = split
    outer = BindOp(bind.input, outer_filter, on=bind.on, keep_on=bind.keep_on)
    inner = BindOp(UnitOp(), inner_filter, on=fresh)
    joined = DJoinOp(outer, inner)
    keep = [
        (column, column)
        for column in joined.output_columns()
        if column != fresh
    ]
    return ProjectOp(joined, keep)


def _split_first_collection(
    flt: Filter, fresh: str
) -> Optional[Tuple[Filter, Filter]]:
    """Replace the first nested collection filter with ``$fresh``.

    Returns ``(outer filter, inner filter)`` or ``None`` when the filter
    has no splittable navigation.
    """
    if not isinstance(flt, FElem):
        return None
    for index, child in enumerate(flt.children):
        if (
            isinstance(child, FElem)
            and isinstance(child.label, str)
            and len(child.children) == 1
            and isinstance(child.children[0], FElem)
            and isinstance(child.children[0].label, str)
            and child.children[0].label in COLLECTION_KINDS
            and any(isinstance(c, FStar) for c in child.children[0].children)
            and _has_variables(child.children[0])
        ):
            collection = child.children[0]
            new_child = FElem(child.label, [FVar(fresh)], var=child.var)
            new_children = list(flt.children)
            new_children[index] = new_child
            outer = FElem(flt.label, new_children, var=flt.var)
            return outer, collection
        # Recurse into nested elements.
        if isinstance(child, FElem):
            nested = _split_first_collection(child, fresh)
            if nested is not None:
                new_children = list(flt.children)
                new_children[index] = nested[0]
                return FElem(flt.label, new_children, var=flt.var), nested[1]
        if isinstance(child, FStar) and isinstance(child.child, FElem):
            nested = _split_first_collection(child.child, fresh)
            if nested is not None:
                new_children = list(flt.children)
                new_children[index] = FStar(nested[0])
                return FElem(flt.label, new_children, var=flt.var), nested[1]
    return None


def _has_variables(flt: Filter) -> bool:
    return bool(flt.variables())


# ---------------------------------------------------------------------------
# Linear form
# ---------------------------------------------------------------------------

def split_below_root(
    bind: BindOp, context: OptimizerContext
) -> Optional[Tuple[BindOp, BindOp]]:
    """Split a Bind into root iteration + per-element navigation.

    ``Bind_{root [ * inner[...] ]}`` becomes::

        Bind_{inner[...]} on $w ( Bind_{root [ * inner $w ]} )

    Returns ``(outer, full)`` where *full* is the final two-Bind plan's
    top operator, or ``None`` when the filter does not have the
    root-star shape.  This is the form Figure 9 pushes to Wais: the outer
    Bind (whole documents) is admissible, the residual navigation runs at
    the mediator.
    """
    flt = bind.filter
    if not (
        isinstance(flt, FElem)
        and isinstance(flt.label, str)
        and len(flt.children) == 1
        and isinstance(flt.children[0], FStar)
        and isinstance(flt.children[0].child, FElem)
    ):
        return None
    inner = flt.children[0].child
    if not inner.children:
        return None  # already elementary
    if not isinstance(inner.label, str):
        return None
    keep = inner.var is not None
    work_var = inner.var if inner.var is not None else context.fresh_variable("w")
    outer_filter = FElem(
        flt.label, [FStar(FElem(inner.label, var=work_var))], var=flt.var
    )
    outer = BindOp(bind.input, outer_filter, on=bind.on, keep_on=bind.keep_on)
    residual_filter = FElem(inner.label, inner.children)
    residual = BindOp(outer, residual_filter, on=work_var, keep_on=keep)
    return outer, residual


class MergeBindChainRule(RewriteRule):
    """Merge ``Bind(on=$w)(Bind binding $w)`` back into one Bind.

    Applicable when the inner Bind binds ``$w`` on an element filter with
    no children (a pure subtree binding) and the outer Bind navigates from
    ``$w`` with a filter rooted at the same label.  This is the final
    "merge the remaining filters" step of Figure 8.
    """

    name = "MergeBindChain"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, BindOp) or not isinstance(plan.input, BindOp):
            return None
        outer, inner = plan, plan.input
        if outer.keep_on:
            return None
        target = self._binding_element(inner.filter, outer.on)
        if target is None:
            return None
        if not isinstance(outer.filter, FElem):
            return None
        if isinstance(target.label, str) and isinstance(outer.filter.label, str):
            if target.label != outer.filter.label:
                return None
        merged_elem = FElem(
            target.label, tuple(target.children) + tuple(outer.filter.children),
            var=None,
        )
        merged_filter = _replace(inner.filter, target, merged_elem)
        if merged_filter is None:
            return None
        return BindOp(inner.input, merged_filter, on=inner.on, keep_on=inner.keep_on)

    @staticmethod
    def _binding_element(flt: Filter, var: str) -> Optional[FElem]:
        for node in flt.walk():
            if isinstance(node, FElem) and node.var == var and not node.children:
                return node
        return None


def _replace(flt: Filter, old: Filter, new: Filter) -> Optional[Filter]:
    """Structurally replace *old* (by identity) with *new* inside *flt*."""
    if flt is old:
        return new
    if isinstance(flt, FElem):
        changed = False
        children: List[Filter] = []
        for child in flt.children:
            replaced = _replace(child, old, new)
            if replaced is not None and replaced is not child:
                changed = True
                children.append(replaced)
            else:
                children.append(child)
        if changed:
            return FElem(flt.label, children, var=flt.var)
        return flt
    if isinstance(flt, FStar):
        replaced = _replace(flt.child, old, new)
        if replaced is not None and replaced is not flt.child:
            return FStar(replaced)
        return flt
    return flt


# ---------------------------------------------------------------------------
# Extent form (associative access)
# ---------------------------------------------------------------------------

def navigation_to_extent_join(
    bind: BindOp, context: OptimizerContext
) -> Optional[Plan]:
    """Turn reference navigation into a Join against the class extent.

    Requires the navigated class to have an extent exported by the same
    source (Figure 7: "we exploit the persons extent to transform the
    DJoin into a standard Join").
    """
    source = _bind_source(bind)
    if source is None:
        return None
    interface = context.interface(source)
    if interface is None:
        return None
    found = _find_class_navigation(bind.filter)
    if found is None:
        return None
    attr_elem, collection_elem, class_filter = found
    class_name = _navigated_class(class_filter)
    if class_name is None:
        return None
    extent_document = _extent_of(interface, class_name)
    if extent_document is None:
        return None

    ref_var = context.fresh_variable("ref")
    obj_var = context.fresh_variable("obj")

    # Outer: bind each member reference instead of navigating through it.
    new_collection = FElem(collection_elem.label, [FStar(FVar(ref_var))])
    new_attr = FElem(attr_elem.label, [new_collection], var=attr_elem.var)
    outer_filter = _replace(bind.filter, attr_elem, new_attr)
    if outer_filter is None or outer_filter is bind.filter:
        return None
    outer = BindOp(bind.input, outer_filter, on=bind.on, keep_on=bind.keep_on)

    # Right: the class extent, bound with the original inner filter.
    inner = class_filter
    right_filter = FElem(
        "set",
        [FStar(FElem("class", inner.children, var=obj_var))],
    )
    right = BindOp(
        SourceOp(source, extent_document), right_filter, on=extent_document
    )
    joined = JoinOp(outer, right, FunCall(REF_IS, [Var(ref_var), Var(obj_var)]))
    keep = [
        (column, column)
        for column in joined.output_columns()
        if column not in (ref_var, obj_var)
    ]
    return ProjectOp(joined, keep)


def _bind_source(bind: BindOp) -> Optional[str]:
    if isinstance(bind.input, SourceOp):
        return bind.input.source
    return None


def _find_class_navigation(flt: Filter):
    """Locate ``attr [ kind [ * class[...] ] ]`` inside the filter."""
    if isinstance(flt, FElem):
        for child in flt.children:
            if (
                isinstance(child, FElem)
                and isinstance(child.label, str)
                and len(child.children) == 1
                and isinstance(child.children[0], FElem)
                and isinstance(child.children[0].label, str)
                and child.children[0].label in COLLECTION_KINDS
            ):
                collection = child.children[0]
                stars = [c for c in collection.children if isinstance(c, FStar)]
                if len(stars) == 1 and len(collection.children) == 1:
                    inner = stars[0].child
                    if isinstance(inner, FElem) and inner.label == "class":
                        return child, collection, inner
            nested = _find_class_navigation(child)
            if nested is not None:
                return nested
        return None
    if isinstance(flt, FStar):
        return _find_class_navigation(flt.child)
    return None


def _navigated_class(class_filter: FElem) -> Optional[str]:
    if len(class_filter.children) == 1 and isinstance(class_filter.children[0], FElem):
        label = class_filter.children[0].label
        if isinstance(label, str):
            return label
    return None


def _extent_of(interface, class_name: str) -> Optional[str]:
    """Find a document whose pattern is ``set [ * &class_name ]``."""
    for document in interface.documents:
        pattern = interface.document_pattern(document)
        if (
            isinstance(pattern, PNode)
            and pattern.label == "set"
            and len(pattern.children) == 1
            and isinstance(pattern.children[0], PStar)
            and isinstance(pattern.children[0].child, PRef)
            and pattern.children[0].child.name == class_name
        ):
            return document
    return None
