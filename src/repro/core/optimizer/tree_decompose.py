"""Tree decomposition into Group/Sort + a grouping-free Tree.

"A Tree can be rewritten as sequence of Group, Sort and nested Map
operations, on which existing optimization techniques can be used"
(paper, Section 5.2).  This module implements that rewriting for the
common constructor shapes:

* a grouping child ``*(v1..vn) child`` becomes a ``Group`` operator on
  the input Tab plus a nested iteration (``CNest``) in the constructor —
  the grouping is now an algebra operator, visible to classical group-by
  optimization;
* an ordered iteration ``CIterate(order_by=[$v])`` hoists into a ``Sort``
  operator below the grouping (``Group`` preserves encounter order
  within groups, so pre-sorting orders every group's rows).

The rewriting is exposed both as :func:`decompose_tree` and as
:class:`TreeDecompositionRule`.  It is *not* part of the default three
rounds — the paper lists it as an enabling step for further group-by
optimization, which our heuristic rounds do not pursue — but it is
equivalence-tested and benchmarked like the Figure 7 rewritings.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.algebra.expressions import Var
from repro.core.algebra.operators import GroupOp, Plan, SortOp, TreeOp
from repro.core.algebra.tree import (
    CElem,
    CGroup,
    CIterate,
    CNest,
    Constructor,
)
from repro.core.optimizer.rules import OptimizerContext, RewriteRule

#: Column name used for the nested rows produced by the Group operator.
NESTED_COLUMN = "_grouped"


def decompose_tree(tree: TreeOp, context: OptimizerContext) -> Optional[Plan]:
    """Rewrite the Tree's grouping into a ``Group`` operator.

    Handles a root element whose children contain exactly one
    :class:`CGroup` over plain variables; other children must not read
    the input Tab (constants/references only), since grouping changes the
    row shape underneath them.  Returns ``None`` when the shape does not
    apply.
    """
    root = tree.constructor
    if not isinstance(root, CElem):
        return None
    groups = [c for c in root.children if isinstance(c, CGroup)]
    if len(groups) != 1:
        return None
    group = groups[0]
    if not all(isinstance(e, Var) for e in group.by):
        return None
    for child in root.children:
        if child is not group and child.variables():
            return None
    by_columns = tuple(e.name for e in group.by)
    input_columns = set(tree.input.output_columns())
    if not set(by_columns) <= input_columns or NESTED_COLUMN in input_columns:
        return None

    plan_input: Plan = tree.input
    inner, sort_columns, descending = _hoist_sort(group.child)
    if sort_columns:
        plan_input = SortOp(plan_input, sort_columns, descending)
    grouped = GroupOp(plan_input, by_columns, NESTED_COLUMN)

    replacement = CIterate(CNest(NESTED_COLUMN, inner), distinct=False)
    new_children: List[Constructor] = [
        replacement if child is group else child for child in root.children
    ]
    new_root = CElem(root.label, new_children, skolem=root.skolem)
    return TreeOp(grouped, new_root, tree.document)


def _hoist_sort(
    child: Constructor,
) -> Tuple[Constructor, Tuple[str, ...], bool]:
    """Extract a hoistable ordering from the group's child constructor.

    Only a top-level :class:`CIterate` ordered by plain variables hoists;
    anything else stays inside the constructor.
    """
    if (
        isinstance(child, CIterate)
        and child.order_by
        and all(isinstance(e, Var) for e in child.order_by)
    ):
        stripped = CIterate(
            child.child, distinct=child.distinct, order_by=(), descending=False
        )
        return (
            stripped,
            tuple(e.name for e in child.order_by),
            child.descending,
        )
    if isinstance(child, CElem):
        # Orderings one level down (the common `artist [ ..., *titles ]`
        # shape) hoist too, provided exactly one child is ordered.
        ordered = [
            (index, item)
            for index, item in enumerate(child.children)
            if isinstance(item, CIterate) and item.order_by
        ]
        if len(ordered) == 1:
            index, item = ordered[0]
            if all(isinstance(e, Var) for e in item.order_by):
                stripped_item = CIterate(
                    item.child, distinct=item.distinct, order_by=(),
                    descending=False,
                )
                children = list(child.children)
                children[index] = stripped_item
                return (
                    CElem(child.label, children, skolem=child.skolem),
                    tuple(e.name for e in item.order_by),
                    item.descending,
                )
    return child, (), False


class TreeDecompositionRule(RewriteRule):
    """Rule form of :func:`decompose_tree` (opt-in, see module docstring)."""

    name = "TreeDecomposition"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, TreeOp):
            return None
        return decompose_tree(plan, context)
