"""The rewrite-rule framework of the optimizer.

The paper's optimizer is "based on heuristics and a simple linear search
strategy consisting of the three rewriting rounds" (Section 6).  This
module provides the machinery those rounds share:

* :class:`RewriteRule` — one equivalence, applied at a single plan node;
* :class:`OptimizerContext` — what rules may consult: imported source
  interfaces, capability matchers, document structure patterns, declared
  containments;
* :class:`RewriteTrace` — a record of every application, so examples can
  print the Figure 8/9 derivations;
* :func:`rewrite_fixpoint` — repeated top-down application to a fixpoint.

Rules are *pure*: they return a replacement plan or ``None``; they never
mutate their input.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import YatError
from repro.capabilities.interface import SourceInterface
from repro.capabilities.matcher import CapabilityMatcher
from repro.core.algebra.operators import Plan
from repro.model.patterns import Pattern


class OptimizerContext:
    """Everything rules may consult about the integration setup.

    ``containments`` declares semantic inclusions between documents:
    ``("artifacts", "artworks")`` means every entity of ``artifacts`` also
    appears in ``artworks``, which licenses join-branch elimination (the
    "all artifacts are available in the XML source" step of Figure 8).
    Containments are metadata the integration administrator supplies; the
    optimizer never guesses them.
    """

    def __init__(
        self,
        interfaces: Optional[Dict[str, SourceInterface]] = None,
        containments: Optional[Set[Tuple[str, str]]] = None,
        cost_hints: Optional[object] = None,
        gate_information_passing: bool = False,
        shards: Optional[Dict[str, object]] = None,
    ) -> None:
        self.interfaces: Dict[str, SourceInterface] = dict(interfaces or {})
        self.containments: Set[Tuple[str, str]] = set(containments or ())
        #: ``{logical source name: ShardTopology}`` for partitioned
        #: sources; consulted by the shard-expansion rule.
        self.shards: Dict[str, object] = dict(shards or {})
        #: Optional :class:`~repro.core.optimizer.cost.CostHints` used by
        #: cost-gated rules.
        self.cost_hints = cost_hints
        #: Extension beyond the paper: when True, the information-passing
        #: round only converts a Join into a bind join if the cost model
        #: estimates the dependent plan cheaper.  The paper's heuristic
        #: optimizer applies the conversion unconditionally, which can
        #: lose when the driving side is large (see bench_djoin_vs_join).
        self.gate_information_passing = gate_information_passing
        self._matchers: Dict[str, CapabilityMatcher] = {}
        self._fresh_counter = 0

    def matcher(self, source: str) -> Optional[CapabilityMatcher]:
        """Capability matcher for *source* (``None`` if unknown)."""
        if source not in self.interfaces:
            return None
        if source not in self._matchers:
            self._matchers[source] = CapabilityMatcher(self.interfaces[source])
        return self._matchers[source]

    def interface(self, source: str) -> Optional[SourceInterface]:
        return self.interfaces.get(source)

    def document_pattern(self, source: str, document: str) -> Optional[Pattern]:
        """Structure pattern of a document's root, when the source exports one."""
        interface = self.interfaces.get(source)
        if interface is None:
            return None
        return interface.document_pattern(document)

    def declare_containment(self, subset_document: str, superset_document: str) -> None:
        """Declare that every entity of the first document appears in the second."""
        self.containments.add((subset_document, superset_document))

    def contained(self, subset_document: str, superset_document: str) -> bool:
        return (subset_document, superset_document) in self.containments

    def fresh_variable(self, stem: str = "v") -> str:
        """A variable name no user query will collide with."""
        self._fresh_counter += 1
        return f"_{stem}{self._fresh_counter}"


class RewriteRule(ABC):
    """One algebraic equivalence, applied at a single node."""

    #: Short name shown in traces (defaults to the class name).
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    @abstractmethod
    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        """Rewritten plan rooted at *plan*, or ``None`` when not applicable."""


class RewriteStep:
    """One recorded rule application."""

    __slots__ = ("rule_name", "before", "after")

    def __init__(self, rule_name: str, before: Plan, after: Plan) -> None:
        self.rule_name = rule_name
        self.before = before
        self.after = after

    def __repr__(self) -> str:
        return f"RewriteStep({self.rule_name}: {self.before.describe()} -> {self.after.describe()})"


class RewriteTrace:
    """The derivation: every rule application, in order."""

    def __init__(self) -> None:
        self.steps: List[RewriteStep] = []

    def record(self, rule: RewriteRule, before: Plan, after: Plan) -> None:
        self.steps.append(RewriteStep(rule.name, before, after))

    def rule_names(self) -> Tuple[str, ...]:
        return tuple(step.rule_name for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def summary(self) -> str:
        if not self.steps:
            return "(no rewrites applied)"
        lines = []
        for index, step in enumerate(self.steps, start=1):
            lines.append(
                f"{index}. {step.rule_name}: {step.before.describe()} "
                f"=> {step.after.describe()}"
            )
        return "\n".join(lines)


class RewriteBudgetExceeded(YatError):
    """The fixpoint loop did not converge within its application budget."""


def apply_rules_once(
    plan: Plan,
    rules: Sequence[RewriteRule],
    context: OptimizerContext,
    trace: Optional[RewriteTrace] = None,
) -> Tuple[Plan, bool]:
    """Apply the first applicable rule at the topmost applicable node.

    Returns ``(new plan, changed?)``.  Top-down order means composition
    eliminations fire before the rewrites they enable, matching the
    paper's narrative for Figures 8 and 9.
    """
    for rule in rules:
        replacement = rule.apply(plan, context)
        if replacement is not None and replacement != plan:
            if trace is not None:
                trace.record(rule, plan, replacement)
            return replacement, True
    children = plan.children()
    for index, child in enumerate(children):
        new_child, changed = apply_rules_once(child, rules, context, trace)
        if changed:
            new_children = list(children)
            new_children[index] = new_child
            return plan.with_children(new_children), True
    return plan, False


def rewrite_fixpoint(
    plan: Plan,
    rules: Sequence[RewriteRule],
    context: OptimizerContext,
    trace: Optional[RewriteTrace] = None,
    max_applications: int = 200,
) -> Plan:
    """Apply *rules* repeatedly until no rule fires anywhere.

    ``max_applications`` bounds runaway rule sets; exceeding it raises
    :class:`RewriteBudgetExceeded` (a rule-authoring bug, not a user
    error).
    """
    for _iteration in range(max_applications):
        plan, changed = apply_rules_once(plan, rules, context, trace)
        if not changed:
            return plan
    raise RewriteBudgetExceeded(
        f"rewriting did not converge within {max_applications} applications; "
        f"applied: {trace.rule_names() if trace else '(untraced)'}"
    )
