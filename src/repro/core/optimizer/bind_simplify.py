"""Type-driven Bind simplification (paper, Section 5.1, Figure 7 bottom).

Two rewritings that need *type information* — one per direction of the
structured/semistructured mix:

**Structured queries over semistructured data**
    (:class:`ProjectDrivenBindSimplifyRule`) — "assume a user is only
    interested in the title and artist elements ... this corresponds to a
    projection that can be used to rewrite the Bind operation and
    simplify the query.  Doing so, we must be careful not to change the
    type filtering semantics of the Bind: a sufficient condition for the
    equivalence to hold is for the type of works to be an instance of the
    type of the filter."  We drop filter items that bind only unneeded
    variables when the source's exported structure pattern *guarantees*
    the dropped item would have matched exactly once (mandatory, single
    occurrence), or when the item never constrains matching at all
    (rest variables).

**Semistructured queries over structured data**
    (:class:`LabelVarExpansionRule`) — "the lower right part of Figure 7
    retrieves the attribute names of person objects.  Because we have
    precise type information, we can simplify the filter."  A label
    variable over a known tuple type expands into a union of ground
    filters, one per declared attribute, each tagged with the attribute
    name — after which every branch is pushable to O2.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.algebra.expressions import Const
from repro.core.algebra.operators import (
    BindOp,
    DistinctOp,
    MapOp,
    Plan,
    ProjectOp,
    SelectOp,
    SourceOp,
    UnionOp,
)
from repro.core.optimizer.rules import OptimizerContext, RewriteRule
from repro.model.filters import (
    FElem,
    Filter,
    FRest,
    FStar,
    FVar,
    LabelVar,
)
from repro.model.patterns import (
    PNode,
    PRef,
    PStar,
    Pattern,
    PatternLibrary,
)


def _resolve(pattern: Optional[Pattern], library: Optional[PatternLibrary]):
    seen = set()
    while isinstance(pattern, PRef) and library is not None:
        if pattern.name in seen or pattern.name not in library:
            return None
        seen.add(pattern.name)
        pattern = library.resolve(pattern.name)
    return pattern


def _source_structure(plan: BindOp, context: OptimizerContext):
    """(document pattern, library) for a Bind reading a Source, if known."""
    if not isinstance(plan.input, SourceOp):
        return None, None
    source_op = plan.input
    interface = context.interface(source_op.source)
    if interface is None:
        return None, None
    spec = interface.documents.get(source_op.document)
    if spec is None:
        return None, None
    model, pattern_name = spec
    library = interface.structures.get(model)
    if library is None or pattern_name not in library:
        return None, None
    return library.resolve(pattern_name), library


class ProjectDrivenBindSimplifyRule(RewriteRule):
    """Drop filter items that bind only variables nobody needs."""

    name = "ProjectDrivenBindSimplify"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, ProjectOp):
            return None
        needed: Set[str] = {column for column, _alias in plan.items}
        chain: List[Plan] = []
        node: Plan = plan.input
        while isinstance(node, (SelectOp, BindOp, DistinctOp)):
            if isinstance(node, SelectOp):
                needed |= set(node.predicate.variables())
            elif isinstance(node, BindOp):
                needed.add(node.on)
                # A deeper Bind both consumes and produces columns; its own
                # variables may feed operators above it, which we already
                # accounted for, so nothing else to add.
                if isinstance(node.input, SourceOp):
                    break
            chain.append(node)
            node = node.children()[0]
        if not isinstance(node, BindOp) or not isinstance(node.input, SourceOp):
            return None
        bind = node
        pattern, library = _source_structure(bind, context)
        if pattern is None:
            return None
        simplified = _simplify_filter(bind.filter, pattern, library, needed)
        if simplified is None or simplified == bind.filter:
            return None
        rebuilt: Plan = BindOp(
            bind.input, simplified, on=bind.on, keep_on=bind.keep_on
        )
        for op in reversed(chain):
            rebuilt = op.with_children([rebuilt])
        return ProjectOp(rebuilt, plan.items)


def _simplify_filter(
    flt: Filter,
    pattern: Optional[Pattern],
    library: Optional[PatternLibrary],
    needed: Set[str],
) -> Optional[Filter]:
    """The filter with droppable items removed; ``None`` when nothing is known."""
    pattern = _resolve(pattern, library)
    if not isinstance(flt, FElem) or not isinstance(pattern, PNode):
        return flt
    kept: List[Filter] = []
    changed = False
    for item in flt.children:
        if _binds_needed(item, needed):
            descended = _descend(item, pattern, library, needed)
            changed = changed or descended != item
            kept.append(descended)
            continue
        if isinstance(item, FRest):
            changed = True  # never constrains matching
            continue
        if _guaranteed_single(item, pattern, library):
            changed = True
            continue
        descended = _descend(item, pattern, library, needed)
        changed = changed or descended != item
        kept.append(descended)
    if not changed:
        return flt
    return FElem(flt.label, kept, var=flt.var)


def _descend(
    item: Filter,
    pattern: PNode,
    library: Optional[PatternLibrary],
    needed: Set[str],
) -> Filter:
    """Recurse into kept items to simplify deeper levels."""
    if isinstance(item, FStar):
        child_pattern = _star_child(pattern, item.child, library)
        inner = _simplify_filter(item.child, child_pattern, library, needed)
        if inner is not None and inner != item.child:
            return FStar(inner)
        return item
    if isinstance(item, FElem) and isinstance(item.label, str):
        child_pattern = _single_child(pattern, item.label, library)
        inner = _simplify_filter(item, child_pattern, library, needed)
        if inner is not None and inner != item:
            return inner
    return item


def _binds_needed(item: Filter, needed: Set[str]) -> bool:
    return any(name in needed for name in item.variables())


def _guaranteed_single(
    item: Filter, pattern: PNode, library: Optional[PatternLibrary]
) -> bool:
    """Would dropping *item* change which trees match, or row multiplicity?

    Safe only for a plain element item whose label the pattern declares as
    a mandatory, single-occurrence child, with content that is itself a
    pure variable or empty (no constants, no deeper structure to check).
    """
    if not isinstance(item, FElem) or not isinstance(item.label, str):
        return False
    if item.children and not all(isinstance(c, FVar) for c in item.children):
        return False
    for child in pattern.children:
        if isinstance(child, PNode) and child.label == item.label:
            return True  # mandatory single occurrence in the pattern
    return False


def _single_child(pattern, label: str, library) -> Optional[Pattern]:
    pattern = _resolve(pattern, library)
    if not isinstance(pattern, PNode):
        return None
    for child in pattern.children:
        resolved = _resolve(child, library)
        if isinstance(resolved, PNode) and resolved.label == label:
            return resolved
    return None


def _star_child(pattern, inner: Filter, library) -> Optional[Pattern]:
    pattern = _resolve(pattern, library)
    if not isinstance(pattern, PNode):
        return None
    for child in pattern.children:
        if isinstance(child, PStar):
            return _resolve(child.child, library)
    return None


class LabelVarExpansionRule(RewriteRule):
    """Expand a label variable over a known tuple type into a union.

    ``Bind_{... tuple [ $l: $v ] ...}`` over a typed O2 class whose tuple
    attributes are declared becomes a union of ground binds, one per
    attribute, each extended with ``$l := <attribute name>``.  Every
    branch is then admissible for the source (the Figure 7 payoff: "the
    Bind operation can now be pushed to O2!").
    """

    name = "LabelVarExpansion"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, BindOp) or not isinstance(plan.input, SourceOp):
            return None
        found = _find_labelvar_in_tuple(plan.filter, None)
        if found is None:
            return None
        target, class_name = found
        if class_name is None:
            return None
        interface = context.interface(plan.input.source)
        if interface is None:
            return None
        attributes = _tuple_attributes(interface, class_name)
        if not attributes:
            return None
        label_var = target.label.name
        value_columns = [v for v in target.variables() if v != label_var]
        original_columns = plan.output_columns()

        branches: List[Plan] = []
        for attribute in attributes:
            ground = FElem(attribute, target.children, var=target.var)
            new_filter = _replace_filter(plan.filter, target, ground)
            if new_filter is None:
                return None
            branch: Plan = BindOp(
                plan.input, new_filter, on=plan.on, keep_on=plan.keep_on
            )
            branch = MapOp(branch, [(label_var, Const(attribute))])
            branch = ProjectOp.keep(branch, original_columns)
            branches.append(branch)
        union = branches[0]
        for branch in branches[1:]:
            union = UnionOp(union, branch)
        return union


def _find_labelvar_in_tuple(
    flt: Filter, enclosing_class: Optional[str]
) -> Optional[Tuple[FElem, Optional[str]]]:
    """Locate ``$l: ...`` under a ``tuple`` node; report the class name."""
    if isinstance(flt, FStar):
        return _find_labelvar_in_tuple(flt.child, enclosing_class)
    if not isinstance(flt, FElem):
        return None
    if flt.label == "class" and len(flt.children) == 1:
        inner = flt.children[0]
        if isinstance(inner, FElem) and isinstance(inner.label, str):
            enclosing_class = inner.label
    if flt.label == "tuple":
        for item in flt.children:
            if isinstance(item, FElem) and isinstance(item.label, LabelVar):
                return item, enclosing_class
    for child in flt.children:
        found = _find_labelvar_in_tuple(child, enclosing_class)
        if found is not None:
            return found
    return None


def _tuple_attributes(interface, class_name: str) -> Tuple[str, ...]:
    """Attribute names of the class's tuple type, from exported patterns."""
    for library in interface.structures.values():
        if class_name not in library:
            continue
        pattern = library.resolve(class_name)
        # Expected shape: class [ <name> [ tuple [attrs] ] ].
        if not (isinstance(pattern, PNode) and pattern.label == "class"):
            continue
        if len(pattern.children) != 1 or not isinstance(pattern.children[0], PNode):
            continue
        named = pattern.children[0]
        if len(named.children) != 1 or not isinstance(named.children[0], PNode):
            continue
        tuple_pattern = named.children[0]
        if tuple_pattern.label != "tuple":
            continue
        return tuple(
            child.label
            for child in tuple_pattern.children
            if isinstance(child, PNode)
        )
    return ()


def _replace_filter(flt: Filter, old: Filter, new: Filter) -> Optional[Filter]:
    if flt is old:
        return new
    if isinstance(flt, FElem):
        children: List[Filter] = []
        changed = False
        for child in flt.children:
            replaced = _replace_filter(child, old, new)
            if replaced is not child:
                changed = True
            children.append(replaced)
        if changed:
            return FElem(flt.label, children, var=flt.var)
        return flt
    if isinstance(flt, FStar):
        replaced = _replace_filter(flt.child, old, new)
        if replaced is not flt.child:
            return FStar(replaced)
        return flt
    return flt
