"""Bind–Tree composition elimination (paper, Section 5.2, Figure 8).

When a user query is composed with a view definition, a ``Bind`` ends up
reading the output of a ``Tree`` — "the frontier between view definition
and query".  Materializing the view just to pattern-match it again is the
naive strategy; this module eliminates the ``Bind``–``Tree`` pair by
resolving the query's filter *symbolically* against the view's
constructor:

* a filter variable over a constructed leaf becomes a **renaming** of the
  underlying Tab column ("a simple projection with renaming");
* a filter constant over a constructed leaf becomes a **selection** on
  the underlying column;
* filter navigation into a *spliced collection* (the semistructured
  ``more: $fields`` part) becomes a **residual Bind on the column** —
  the collection's trees are already in the Tab, no materialization
  needed;
* a filter label the constructor can never produce proves the query
  **empty** (rewritten to ``Select(false)``).

The rewrite preserves set semantics: the view's grouping may collapse
several Tab rows into one tree, so the result is wrapped in ``Distinct``.
If the query's own variables collide with the view's internal columns in
an unresolvable way, or the filter uses features that cannot be resolved
statically (tree variables over constructed nodes, label variables, rest
variables), the rule conservatively declines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.algebra.expressions import (
    Cmp,
    Const,
    Expr,
    Var,
    conjunction,
)
from repro.core.algebra.operators import (
    BindOp,
    DistinctOp,
    Plan,
    ProjectOp,
    SelectOp,
    TreeOp,
)
from repro.core.algebra.tree import (
    CElem,
    CGroup,
    CIterate,
    CLeaf,
    CRef,
    CValue,
    Constructor,
)
from repro.core.optimizer.rules import OptimizerContext, RewriteRule
from repro.model.filters import (
    FConst,
    FElem,
    Filter,
    FStar,
    FVar,
)


class _Unresolvable(Exception):
    """Internal: the filter cannot be resolved statically; decline."""


class _Empty(Exception):
    """Internal: the filter provably matches nothing; query is empty."""


class _Resolution:
    """Accumulates the outcome of the symbolic match."""

    def __init__(self) -> None:
        # query variable -> expression over the base Tab
        self.assignments: Dict[str, Expr] = {}
        # predicates over the base Tab (from constants in the filter)
        self.predicates: List[Expr] = []
        # (base column holding a collection, residual filter) pairs
        self.residuals: List[Tuple[str, Filter]] = []


class BindTreeEliminationRule(RewriteRule):
    """``Bind(Tree(base))``  ⇒  ``Distinct(Project(residual Binds(base)))``."""

    name = "BindTreeElimination"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, BindOp) or not isinstance(plan.input, TreeOp):
            return None
        tree = plan.input
        if plan.on != tree.document or plan.keep_on:
            return None
        if not isinstance(tree.constructor, CElem):
            return None
        resolution = _Resolution()
        try:
            _resolve_elem(plan.filter, tree.constructor, resolution)
        except _Unresolvable:
            return None
        except _Empty:
            return SelectOp(tree.input, Const(False))

        base_columns = set(tree.input.output_columns())
        residual_vars = [
            name
            for _column, residual in resolution.residuals
            for name in residual.variables()
        ]
        # Declines on unresolvable name collisions between the query's
        # residual variables and the view's internal columns.
        if any(name in base_columns for name in residual_vars):
            return None

        result: Plan = tree.input
        if resolution.predicates:
            result = SelectOp(result, conjunction(resolution.predicates))
        for column, residual in resolution.residuals:
            if column not in base_columns:
                return None
            result = BindOp(result, residual, on=column, keep_on=True)

        items: List[Tuple[str, str]] = []
        for query_var, expr in resolution.assignments.items():
            if not isinstance(expr, Var):
                return None  # only renamings are projectable
            items.append((expr.name, query_var))
        for name in residual_vars:
            items.append((name, name))
        wanted = set(plan.filter.variables())
        items = [(column, alias) for column, alias in items if alias in wanted]
        if {alias for _c, alias in items} != wanted:
            return None  # some query variable could not be resolved
        return DistinctOp(ProjectOp(result, items))


# ---------------------------------------------------------------------------
# Symbolic resolution
# ---------------------------------------------------------------------------

def _constructed_items(children: Sequence[Constructor]):
    """Flatten grouping/iteration wrappers: they change multiplicity, not
    shape, and multiplicity is restored by ``Distinct`` at the end."""
    items: List[Constructor] = []
    for child in children:
        if isinstance(child, (CGroup, CIterate)):
            items.extend(_constructed_items([child.child]
                                            if isinstance(child, CGroup)
                                            else [child.child]))
        else:
            items.append(child)
    return items


def _resolve_elem(flt: Filter, ctor: CElem, resolution: _Resolution) -> None:
    """Match an element filter against an element constructor."""
    if not isinstance(flt, FElem):
        raise _Unresolvable
    if not isinstance(flt.label, str):
        raise _Unresolvable  # label variables/regexes: not resolvable statically
    if flt.label != ctor.label:
        raise _Empty
    if flt.var is not None:
        raise _Unresolvable  # tree variable over a constructed node
    items = _constructed_items(ctor.children)
    for child in flt.children:
        _resolve_child(child, items, resolution)


def _resolve_child(
    child: Filter, items: Sequence[Constructor], resolution: _Resolution
) -> None:
    if isinstance(child, FStar):
        _resolve_child(child.child, items, resolution)
        return
    if not isinstance(child, FElem) or not isinstance(child.label, str):
        raise _Unresolvable
    label = child.label
    splice_columns: List[str] = []
    for item in items:
        if isinstance(item, CElem) and item.label == label:
            _resolve_elem(child, item, resolution)
            return
        if isinstance(item, CLeaf) and item.label == label:
            _resolve_leaf(child, item, resolution)
            return
        if isinstance(item, CValue) and isinstance(item.expr, Var):
            splice_columns.append(item.expr.name)
        if isinstance(item, CRef):
            continue  # references are opaque to filters
    if splice_columns:
        # The label may come from a spliced collection: navigate it with a
        # residual Bind on the column.
        resolution.residuals.append((splice_columns[0], child))
        return
    raise _Empty  # the constructor can never produce this label


def _resolve_leaf(flt: FElem, leaf: CLeaf, resolution: _Resolution) -> None:
    """Match filter content against a ``label: expr`` constructor field."""
    if not flt.children:
        return  # pure existence test: constructed fields always exist
    if len(flt.children) != 1:
        raise _Unresolvable
    content = flt.children[0]
    if isinstance(content, FVar):
        if content.name in resolution.assignments:
            raise _Unresolvable
        resolution.assignments[content.name] = leaf.expr
        return
    if isinstance(content, FConst):
        resolution.predicates.append(Cmp("=", leaf.expr, Const(content.value)))
        return
    if isinstance(content, (FElem, FStar)) and isinstance(leaf.expr, Var):
        # Navigation below a field built from a bound collection
        # (``more: $fields`` then ``more.cplace``): residual Bind.
        inner = content.child if isinstance(content, FStar) else content
        resolution.residuals.append((leaf.expr.name, inner))
        return
    raise _Unresolvable
