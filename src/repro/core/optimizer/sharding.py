"""Shard expansion and pruning — partition-aware planning (round two).

A Bind chain over a sharded logical source reads the shard-major
concatenation of the shard documents.  When the chain's filter is a
single iteration over the collection root (``FElem(root)[FStar(work)]``),
every binding row comes from exactly one root child, i.e. from exactly
one shard — so the chain distributes over the shards:

    [Project]([Select]*(Bind(Source(logical))))
        ⇒ Scatter_i [Project]([Select]*(Bind(Source(logical#i))))

in shard order, preserving the logical document order row for row (bag
semantics; no dedup).  Expanding *before* capability pushdown lets each
branch push its own fragment to its shard wrapper, and the scatter
branches run under the plan scheduler's parallelism.

Pruning drops branches that cannot contribute rows.  A restriction on
the partition-key value — an in-filter constant (``artist: "Monet"``) or
a Select comparison against a key-bound variable — is handed to the
partition scheme's :meth:`prune`, which answers with the shards that
could hold a matching document.  Soundness rests on placement and
pruning sharing one function (see :mod:`repro.sources.sharded.partition`);
``contains`` predicates never prune (word containment says nothing about
the key's full value).  An equality against an *outer* variable (under a
DJoin) cannot be pruned statically; it becomes the Scatter's
``prune_param`` and the evaluator routes each outer row to its one
owning shard at run time.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.algebra.expressions import Cmp, Const, Var, conjuncts
from repro.core.algebra.operators import (
    BindOp,
    Plan,
    ProjectOp,
    ScatterOp,
    SelectOp,
    SourceOp,
)
from repro.core.optimizer.rules import OptimizerContext, RewriteRule
from repro.model.filters import FConst, FElem, FStar, FVar

#: Comparison operators a partition scheme can act on.  ``!=`` excludes
#: at most one value and never excludes a shard, so it is not listed.
_COMPARISONS = frozenset(("=", "<", "<=", ">", ">="))
_FLIP = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class ShardExpansionRule(RewriteRule):
    """``Bind(Source(logical))`` chain ⇒ ``Scatter`` of per-shard chains."""

    name = "ShardExpansion"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not context.shards:
            return None
        projection, selects, bind = _chain_of(plan)
        if bind is None:
            return None
        source = bind.input
        topology = context.shards.get(source.source)
        if topology is None:
            return None
        # ``keep_on`` would put the whole (per-shard) document tree in the
        # output, which differs from the logical document — don't expand.
        if bind.on != source.document or bind.keep_on:
            return None
        flt = bind.filter
        if not _distributes(flt):
            return None

        partition = topology.partition
        key_vars, static_consts = _key_restrictions(
            flt.children[0].child, partition.key
        )
        local = set(bind.output_columns())
        restrictions: List[Tuple[str, object]] = [
            ("=", Const(value)) for value in static_consts
        ]
        for select in selects:
            for part in conjuncts(select.predicate):
                found = _key_comparison(part, key_vars, local)
                if found is not None:
                    restrictions.append(found)

        allowed: Optional[frozenset] = None
        prune_param: Optional[str] = None
        for op, operand in restrictions:
            if isinstance(operand, Const):
                pruned = partition.prune(op, operand.value)
                if pruned is not None:
                    allowed = pruned if allowed is None else allowed & pruned
            elif op == "=" and prune_param is None:
                prune_param = operand  # outer column name, pruned at run time

        shard_ids = [
            index
            for index in range(topology.total)
            if allowed is None or index in allowed
        ]
        if not shard_ids:
            # Contradictory key restrictions: no shard can match.  A
            # Scatter needs at least one branch, so keep shard 0 — it
            # dutifully computes the empty answer.
            shard_ids = [0]

        branches = []
        for index in shard_ids:
            branch: Plan = BindOp(
                SourceOp(topology.shard_names[index], source.document),
                flt,
                on=bind.on,
            )
            for select in reversed(selects):
                branch = SelectOp(branch, select.predicate)
            if projection is not None:
                branch = ProjectOp(branch, projection.items)
            branches.append(branch)
        return ScatterOp(
            branches,
            logical=source.source,
            shard_ids=shard_ids,
            total=topology.total,
            partition=partition,
            prune_param=prune_param,
        )


def _chain_of(plan: Plan):
    """Decompose ``[Project?][Select*]Bind(Source)``; bind is None on miss.

    Selects are returned outermost first.
    """
    projection = None
    node = plan
    if isinstance(node, ProjectOp):
        projection = node
        node = node.input
    selects: List[SelectOp] = []
    while isinstance(node, SelectOp):
        selects.append(node)
        node = node.input
    if isinstance(node, BindOp) and isinstance(node.input, SourceOp):
        return projection, selects, node
    return None, None, None


def _distributes(flt) -> bool:
    """Does the filter distribute over a partition of the root's children?

    Required shape: a plain-labeled element filter whose only item is one
    iteration.  A root ``var`` would bind the whole (per-shard) document;
    a second item (``FRest``, another ``FStar``) would relate siblings
    across shards — either breaks the one-row-one-shard argument.
    """
    return (
        isinstance(flt, FElem)
        and isinstance(flt.label, str)
        and flt.var is None
        and len(flt.children) == 1
        and isinstance(flt.children[0], FStar)
    )


def _key_restrictions(pattern, key: str) -> Tuple[Set[str], List[object]]:
    """Partition-key variables and in-filter key constants of one
    per-document pattern.

    Only *direct* child items count: placement hashes a document's
    top-level ``key`` child (see :func:`document_key_value`), so only
    those items are guaranteed to bind the value placement saw.
    """
    names: Set[str] = set()
    consts: List[object] = []
    if not isinstance(pattern, FElem):
        return names, consts
    for item in pattern.children:
        if not isinstance(item, FElem) or item.label != key:
            continue
        if item.var is not None and not item.children:
            names.add(item.var)  # binds the key element node
        if len(item.children) == 1:
            inner = item.children[0]
            if isinstance(inner, FVar):
                names.add(inner.name)  # binds the key content
                if item.var is not None:
                    names.add(item.var)
            elif isinstance(inner, FConst):
                consts.append(inner.value)
    return names, consts


def _key_comparison(part, key_vars: Set[str], local: Set[str]):
    """``(op, Const)`` or ``(op, outer column name)`` when *part* compares
    a key-bound variable with a constant or an outer variable."""
    if not isinstance(part, Cmp) or part.op not in _COMPARISONS:
        return None
    if isinstance(part.left, Var) and part.left.name in key_vars:
        op, other = part.op, part.right
    elif isinstance(part.right, Var) and part.right.name in key_vars:
        op, other = _FLIP[part.op], part.left
    else:
        return None
    if isinstance(other, Const):
        return op, other
    if isinstance(other, Var) and other.name not in local:
        return op, other.name
    return None
