"""The three-round heuristic optimizer (paper, Section 5)."""

from repro.core.optimizer.bind_simplify import (
    LabelVarExpansionRule,
    ProjectDrivenBindSimplifyRule,
)
from repro.core.optimizer.bind_split import (
    REF_IS,
    MergeBindChainRule,
    navigation_to_extent_join,
    ref_is,
    split_below_root,
    split_nested_collection,
)
from repro.core.optimizer.bind_tree import BindTreeEliminationRule
from repro.core.optimizer.capabilities import (
    CapabilityPushdownRule,
    EquivalenceInsertionRule,
)
from repro.core.optimizer.cost import (
    CostHints,
    Estimate,
    choose_bind_access,
    estimate,
    estimate_cost,
)
from repro.core.optimizer.info_passing import BindJoinRule
from repro.core.optimizer.planner import (
    Optimizer,
    optimize,
    round_one_rules,
    round_three_rules,
    round_two_rules,
)
from repro.core.optimizer.pushdown import (
    DropNoopProjectRule,
    JoinBranchEliminationRule,
    ProjectComposeRule,
    SelectPushdownRule,
)
from repro.core.optimizer.tree_decompose import (
    TreeDecompositionRule,
    decompose_tree,
)
from repro.core.optimizer.rules import (
    OptimizerContext,
    RewriteRule,
    RewriteTrace,
    apply_rules_once,
    rewrite_fixpoint,
)

__all__ = [
    "BindJoinRule",
    "BindTreeEliminationRule",
    "CapabilityPushdownRule",
    "CostHints",
    "DropNoopProjectRule",
    "EquivalenceInsertionRule",
    "Estimate",
    "JoinBranchEliminationRule",
    "LabelVarExpansionRule",
    "MergeBindChainRule",
    "Optimizer",
    "OptimizerContext",
    "ProjectComposeRule",
    "ProjectDrivenBindSimplifyRule",
    "REF_IS",
    "RewriteRule",
    "RewriteTrace",
    "SelectPushdownRule",
    "TreeDecompositionRule",
    "decompose_tree",
    "apply_rules_once",
    "choose_bind_access",
    "estimate",
    "estimate_cost",
    "navigation_to_extent_join",
    "optimize",
    "ref_is",
    "rewrite_fixpoint",
    "round_one_rules",
    "round_three_rules",
    "round_two_rules",
    "split_below_root",
    "split_nested_collection",
]
