"""Information passing between sources (paper, Section 5.3) — round three.

"For each pair of title and artist, the O2 source is called to retrieve
the corresponding artifact information.  This aspect is due to the DJoin
operation that corresponds to a nested loop evaluation with values of
variables $t and $a passed from the left-hand side to the right-hand
side.  Such 'information passing' is a classical technique in distributed
query optimization."

:class:`BindJoinRule` turns an equi-join whose one side is a pushed
fragment into a dependency join: the pushed side becomes the inner input,
re-executed per outer row with the join values inlined as parameters (a
*bind join*).  The rule only fires when the source declares the equality
predicate, so a Wais fragment (no ``eq``) is never parameterized — the
optimizer instead drives *from* it, which is exactly the Figure 9 plan.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.algebra.expressions import (
    Cmp,
    Expr,
    Var,
    conjunction,
    conjuncts,
)
from repro.core.algebra.operators import (
    DJoinOp,
    JoinOp,
    Plan,
    ProjectOp,
    PushedOp,
    SelectOp,
)
from repro.core.optimizer.rules import OptimizerContext, RewriteRule


class BindJoinRule(RewriteRule):
    """``Join(A, Pushed(f), A.x = f.y)``  ⇒  ``DJoin(A, Pushed(σ_{y=$x} f))``."""

    name = "BindJoin"

    def apply(self, plan: Plan, context: OptimizerContext) -> Optional[Plan]:
        if not isinstance(plan, JoinOp):
            return None
        # Prefer parameterizing the right side (keeps column order); fall
        # back to the left side with a column-restoring projection.
        rewritten = self._parameterize(plan, plan.left, plan.right, context)
        if rewritten is None:
            swapped = self._parameterize(
                JoinOp(plan.right, plan.left, plan.predicate),
                plan.right,
                plan.left,
                context,
            )
            if swapped is None:
                return None
            # Restore the original column order.
            items = [(column, column) for column in plan.output_columns()]
            rewritten = ProjectOp(swapped, items)
        if context.gate_information_passing and not self._estimated_cheaper(
            plan, rewritten, context
        ):
            return None
        return rewritten

    @staticmethod
    def _estimated_cheaper(
        original: Plan, rewritten: Plan, context: OptimizerContext
    ) -> bool:
        from repro.core.optimizer.cost import estimate_cost

        hints = context.cost_hints
        return estimate_cost(rewritten, hints) <= estimate_cost(original, hints)

    def _parameterize(
        self, join: JoinOp, outer: Plan, inner: Plan, context: OptimizerContext
    ) -> Optional[Plan]:
        pushed = self._pushed_of(inner)
        if pushed is None:
            return None
        matcher = context.matcher(pushed.source)
        if matcher is None:
            return None
        outer_cols = set(outer.output_columns())
        inner_cols = set(inner.output_columns())

        passed: List[Expr] = []
        remaining: List[Expr] = []
        for part in conjuncts(join.predicate):
            if self._cross_equality(part, outer_cols, inner_cols) and bool(
                matcher.predicate_pushable(part)
            ):
                passed.append(part)
            else:
                remaining.append(part)
        if not passed:
            return None

        parameterized = PushedOp(
            pushed.source, SelectOp(pushed.plan, conjunction(passed))
        )
        new_inner = self._rebuild_inner(inner, parameterized)
        result: Plan = DJoinOp(outer, new_inner)
        if remaining:
            result = SelectOp(result, conjunction(remaining))
        return result

    @staticmethod
    def _pushed_of(plan: Plan) -> Optional[PushedOp]:
        """The PushedOp at the bottom of a [Select*] chain, if any."""
        node = plan
        while isinstance(node, SelectOp):
            node = node.input
        if isinstance(node, PushedOp):
            return node
        return None

    @staticmethod
    def _rebuild_inner(inner: Plan, parameterized: PushedOp) -> Plan:
        """Replace the bottom PushedOp of the chain with the new one."""
        selects: List[SelectOp] = []
        node = inner
        while isinstance(node, SelectOp):
            selects.append(node)
            node = node.input
        rebuilt: Plan = parameterized
        for select in reversed(selects):
            rebuilt = SelectOp(rebuilt, select.predicate)
        return rebuilt

    @staticmethod
    def _cross_equality(part: Expr, outer_cols: set, inner_cols: set) -> bool:
        if not isinstance(part, Cmp) or part.op != "=":
            return False
        if not isinstance(part.left, Var) or not isinstance(part.right, Var):
            return False
        names = {part.left.name, part.right.name}
        return bool(names & outer_cols) and bool(names & inner_cols) and not (
            names <= outer_cols
        ) and not (names <= inner_cols)
