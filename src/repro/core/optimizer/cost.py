"""A simple transfer-oriented cost model.

The paper's optimizer uses heuristics, not a cost-based search; this
model exists for *reporting*: benchmarks compare estimated costs before
and after rewriting, and the estimates explain why a rewriting wins.

Costs are abstract units dominated by wrapper-boundary transfers:

* a ``Source`` costs the (estimated) serialized size of its document;
* a ``Pushed`` fragment costs a per-call constant plus its estimated
  result cardinality — much less than the whole document when a
  selective predicate was pushed;
* mediator operators cost proportionally to the rows they process;
* a ``DJoin`` multiplies its right-hand cost by the left cardinality
  (one call per outer row), which is exactly the trade-off information
  passing navigates.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.algebra.operators import (
    BindOp,
    DJoinOp,
    DistinctOp,
    GroupOp,
    IntersectOp,
    JoinOp,
    LiteralOp,
    MapOp,
    Plan,
    ProjectOp,
    PushedOp,
    SelectOp,
    SortOp,
    SourceOp,
    TreeOp,
    UnionOp,
    UnitOp,
)
from repro.model.indexes import (
    MIN_INDEX_NODES,
    AccessPath,
    index_eligibility,
)

#: Default assumptions, overridable per document via ``CostHints``.
DEFAULT_DOCUMENT_SIZE = 10_000.0
DEFAULT_DOCUMENT_CARDINALITY = 100.0
DEFAULT_SELECTIVITY = 0.1
PUSHED_CALL_COST = 50.0


class CostHints:
    """Per-document size/cardinality hints and per-predicate selectivities.

    ``text_selectivities`` maps string constants appearing in textual
    predicates (equality or ``contains``) to estimated match fractions.
    Full-text sources can supply these almost for free — the inverted
    index knows each term's document frequency — which is what lets the
    cost-gated optimizer tell a selective ``contains`` from a broad one.
    """

    def __init__(
        self,
        document_sizes: Optional[Dict[str, float]] = None,
        document_cardinalities: Optional[Dict[str, float]] = None,
        default_selectivity: float = DEFAULT_SELECTIVITY,
        text_selectivities: Optional[Dict[str, float]] = None,
    ) -> None:
        self.document_sizes = dict(document_sizes or {})
        self.document_cardinalities = dict(document_cardinalities or {})
        self.default_selectivity = default_selectivity
        self.text_selectivities = dict(text_selectivities or {})

    def size(self, document: str) -> float:
        return self.document_sizes.get(document, DEFAULT_DOCUMENT_SIZE)

    def cardinality(self, document: str) -> float:
        return self.document_cardinalities.get(
            document, DEFAULT_DOCUMENT_CARDINALITY
        )

    def predicate_selectivity(self, predicate) -> float:
        """Estimated fraction of rows a predicate keeps."""
        from repro.core.algebra.expressions import Cmp, Const, FunCall, conjuncts

        fraction = 1.0
        for part in conjuncts(predicate):
            constants = []
            if isinstance(part, Cmp):
                constants = [
                    side.value
                    for side in (part.left, part.right)
                    if isinstance(side, Const)
                ]
            elif isinstance(part, FunCall):
                constants = [
                    arg.value for arg in part.args if isinstance(arg, Const)
                ]
            known = [
                self.text_selectivities[c]
                for c in constants
                if isinstance(c, str) and c in self.text_selectivities
            ]
            fraction *= known[0] if known else self.default_selectivity
        return min(1.0, fraction)


class ObservedStatistics:
    """Measured numbers folded back from ``EXPLAIN ANALYZE`` runs.

    The mediator keeps one instance per catalog and overlays it onto the
    wrapper-declared :class:`CostHints` before every optimization, so
    repeated queries replan with *measured* cardinalities and
    selectivities instead of estimates:

    * a ``Bind`` directly over a ``Source`` observed binding N rows per
      document evaluation pins the document's cardinality to N;
    * a mediator-side ``Select`` whose predicate carries exactly one
      string constant observed keeping ``out/in`` of its rows pins that
      constant's text selectivity (predicates inside pushed fragments
      execute at the source and are not observed).

    :meth:`absorb` reports whether anything *materially* changed (beyond
    a 1% relative tolerance), letting the mediator version its
    statistics without invalidating plans on every identical re-run.
    """

    __slots__ = ("document_cardinalities", "text_selectivities")

    def __init__(self) -> None:
        self.document_cardinalities: Dict[str, float] = {}
        self.text_selectivities: Dict[str, float] = {}

    def absorb(self, plan: Plan, actuals: Dict[int, object]) -> bool:
        """Fold per-node actuals into the tables; ``True`` on change."""
        changed = False
        for node in plan.walk():
            if isinstance(node, BindOp) and isinstance(node.input, SourceOp):
                entry = actuals.get(id(node))
                if entry is None or entry.evals <= 0 or entry.rows <= 0:
                    continue
                observed = entry.rows / entry.evals
                changed |= self._record(
                    self.document_cardinalities, node.input.document, observed
                )
            elif isinstance(node, SelectOp):
                out_entry = actuals.get(id(node))
                in_entry = actuals.get(id(node.input))
                if out_entry is None or in_entry is None or in_entry.rows <= 0:
                    continue
                constant = _single_text_constant(node.predicate)
                if constant is None:
                    continue
                ratio = min(1.0, out_entry.rows / in_entry.rows)
                changed |= self._record(
                    self.text_selectivities, constant, ratio
                )
        return changed

    @staticmethod
    def _record(table: Dict[str, float], key: str, value: float) -> bool:
        old = table.get(key)
        if old is not None and abs(old - value) <= 0.01 * max(1.0, abs(old)):
            return False
        table[key] = value
        return True

    def __repr__(self) -> str:
        return (
            f"ObservedStatistics({len(self.document_cardinalities)} "
            f"cardinalities, {len(self.text_selectivities)} selectivities)"
        )


def _single_text_constant(predicate) -> Optional[str]:
    """The predicate's one string constant, or ``None`` when ambiguous.

    An observed in/out ratio can only be attributed to a constant when
    the predicate mentions exactly one (a conjunction mixing constants
    would blur their individual selectivities).
    """
    from repro.core.algebra.expressions import Const

    constants = [
        sub.value
        for sub in predicate.walk()
        if isinstance(sub, Const) and isinstance(sub.value, str)
    ]
    if constants and len(set(constants)) == 1:
        return constants[0]
    return None


class Estimate:
    """Estimated (cost, output cardinality) of a plan."""

    __slots__ = ("cost", "rows")

    def __init__(self, cost: float, rows: float) -> None:
        self.cost = cost
        self.rows = rows

    def __repr__(self) -> str:
        return f"Estimate(cost={self.cost:.0f}, rows={self.rows:.0f})"


def choose_bind_access(plan: BindOp, hints: Optional[CostHints] = None) -> AccessPath:
    """The access path the cost model picks for one Bind: seek or scan.

    A Bind seeks when its filter is sargable (:func:`index_eligibility`)
    and the document it reads is expected to clear the runtime size gate
    — tiny documents are scanned regardless, exactly as the index
    registry decides at execution time.  Deterministic given the same
    plan and hints, so EXPLAIN output is stable.
    """
    access = index_eligibility(plan.filter)
    if not access.seekable:
        return access
    hints = hints or CostHints()
    source = plan.input
    if isinstance(source, SourceOp):
        # Mirror the runtime gate: each top-level document entry
        # contributes at least a couple of tree nodes, so a hinted
        # cardinality this small can never reach MIN_INDEX_NODES.
        if 2.0 * hints.cardinality(source.document) < MIN_INDEX_NODES:
            return AccessPath("scan")
    return access


def estimate(plan: Plan, hints: Optional[CostHints] = None) -> Estimate:
    """Estimated cost and cardinality of evaluating *plan*."""
    hints = hints or CostHints()
    return _estimate(plan, hints)


def estimate_cost(plan: Plan, hints: Optional[CostHints] = None) -> float:
    """Shorthand: just the cost component."""
    return estimate(plan, hints).cost


def _estimate(plan: Plan, hints: CostHints) -> Estimate:
    if isinstance(plan, UnitOp):
        return Estimate(0.0, 1.0)
    if isinstance(plan, LiteralOp):
        return Estimate(0.0, float(len(plan.tab)))
    if isinstance(plan, SourceOp):
        return Estimate(hints.size(plan.document), hints.cardinality(plan.document))
    if isinstance(plan, PushedOp):
        inner = _estimate(plan.plan, hints)
        # The source does the work cheaply; the mediator pays transfer of
        # the result rows plus the round trip.
        return Estimate(PUSHED_CALL_COST + inner.rows, inner.rows)
    if isinstance(plan, BindOp):
        inner = _estimate(plan.input, hints)
        depth = max(1, sum(1 for _ in plan.filter.walk()))
        # A sargable filter seeds its match from the document's label /
        # value index (associative access): the per-row work shrinks to
        # the seek plus the surviving fraction of the walk, instead of
        # the whole filter-depth scan.
        if choose_bind_access(plan, hints).seekable:
            per_row = 1.0 + depth * hints.default_selectivity
        else:
            per_row = float(depth)
        return Estimate(inner.cost + inner.rows * per_row, inner.rows)
    if isinstance(plan, SelectOp):
        inner = _estimate(plan.input, hints)
        selectivity = hints.predicate_selectivity(plan.predicate)
        return Estimate(inner.cost + inner.rows, inner.rows * selectivity)
    if isinstance(plan, (ProjectOp, MapOp, DistinctOp, SortOp, GroupOp)):
        inner = _estimate(plan.children()[0], hints)
        return Estimate(inner.cost + inner.rows, inner.rows)
    if isinstance(plan, TreeOp):
        inner = _estimate(plan.input, hints)
        return Estimate(inner.cost + 2 * inner.rows, 1.0)
    if isinstance(plan, JoinOp):
        left = _estimate(plan.left, hints)
        right = _estimate(plan.right, hints)
        out = left.rows * right.rows * hints.default_selectivity
        return Estimate(left.cost + right.cost + left.rows * right.rows, out)
    if isinstance(plan, DJoinOp):
        left = _estimate(plan.left, hints)
        right = _estimate(plan.right, hints)
        # The right side is re-evaluated once per outer row.
        return Estimate(left.cost + left.rows * right.cost, left.rows * right.rows)
    if isinstance(plan, (UnionOp, IntersectOp)):
        left = _estimate(plan.left, hints)
        right = _estimate(plan.right, hints)
        return Estimate(left.cost + right.cost, left.rows + right.rows)
    # Unknown operators cost their children plus a constant.
    children = [_estimate(child, hints) for child in plan.children()]
    cost = sum(c.cost for c in children) + 1.0
    rows = max((c.rows for c in children), default=1.0)
    return Estimate(cost, rows)
