"""A simple transfer-oriented cost model.

The paper's optimizer uses heuristics, not a cost-based search; this
model exists for *reporting*: benchmarks compare estimated costs before
and after rewriting, and the estimates explain why a rewriting wins.

Costs are abstract units dominated by wrapper-boundary transfers:

* a ``Source`` costs the (estimated) serialized size of its document;
* a ``Pushed`` fragment costs a per-call constant plus its estimated
  result cardinality — much less than the whole document when a
  selective predicate was pushed;
* mediator operators cost proportionally to the rows they process;
* a ``DJoin`` multiplies its right-hand cost by the left cardinality
  (one call per outer row), which is exactly the trade-off information
  passing navigates.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.algebra.operators import (
    BindOp,
    DJoinOp,
    DistinctOp,
    GroupOp,
    IntersectOp,
    JoinOp,
    LiteralOp,
    MapOp,
    Plan,
    ProjectOp,
    PushedOp,
    SelectOp,
    SortOp,
    SourceOp,
    TreeOp,
    UnionOp,
    UnitOp,
)

#: Default assumptions, overridable per document via ``CostHints``.
DEFAULT_DOCUMENT_SIZE = 10_000.0
DEFAULT_DOCUMENT_CARDINALITY = 100.0
DEFAULT_SELECTIVITY = 0.1
PUSHED_CALL_COST = 50.0


class CostHints:
    """Per-document size/cardinality hints and per-predicate selectivities.

    ``text_selectivities`` maps string constants appearing in textual
    predicates (equality or ``contains``) to estimated match fractions.
    Full-text sources can supply these almost for free — the inverted
    index knows each term's document frequency — which is what lets the
    cost-gated optimizer tell a selective ``contains`` from a broad one.
    """

    def __init__(
        self,
        document_sizes: Optional[Dict[str, float]] = None,
        document_cardinalities: Optional[Dict[str, float]] = None,
        default_selectivity: float = DEFAULT_SELECTIVITY,
        text_selectivities: Optional[Dict[str, float]] = None,
    ) -> None:
        self.document_sizes = dict(document_sizes or {})
        self.document_cardinalities = dict(document_cardinalities or {})
        self.default_selectivity = default_selectivity
        self.text_selectivities = dict(text_selectivities or {})

    def size(self, document: str) -> float:
        return self.document_sizes.get(document, DEFAULT_DOCUMENT_SIZE)

    def cardinality(self, document: str) -> float:
        return self.document_cardinalities.get(
            document, DEFAULT_DOCUMENT_CARDINALITY
        )

    def predicate_selectivity(self, predicate) -> float:
        """Estimated fraction of rows a predicate keeps."""
        from repro.core.algebra.expressions import Cmp, Const, FunCall, conjuncts

        fraction = 1.0
        for part in conjuncts(predicate):
            constants = []
            if isinstance(part, Cmp):
                constants = [
                    side.value
                    for side in (part.left, part.right)
                    if isinstance(side, Const)
                ]
            elif isinstance(part, FunCall):
                constants = [
                    arg.value for arg in part.args if isinstance(arg, Const)
                ]
            known = [
                self.text_selectivities[c]
                for c in constants
                if isinstance(c, str) and c in self.text_selectivities
            ]
            fraction *= known[0] if known else self.default_selectivity
        return min(1.0, fraction)


class Estimate:
    """Estimated (cost, output cardinality) of a plan."""

    __slots__ = ("cost", "rows")

    def __init__(self, cost: float, rows: float) -> None:
        self.cost = cost
        self.rows = rows

    def __repr__(self) -> str:
        return f"Estimate(cost={self.cost:.0f}, rows={self.rows:.0f})"


def estimate(plan: Plan, hints: Optional[CostHints] = None) -> Estimate:
    """Estimated cost and cardinality of evaluating *plan*."""
    hints = hints or CostHints()
    return _estimate(plan, hints)


def estimate_cost(plan: Plan, hints: Optional[CostHints] = None) -> float:
    """Shorthand: just the cost component."""
    return estimate(plan, hints).cost


def _estimate(plan: Plan, hints: CostHints) -> Estimate:
    if isinstance(plan, UnitOp):
        return Estimate(0.0, 1.0)
    if isinstance(plan, LiteralOp):
        return Estimate(0.0, float(len(plan.tab)))
    if isinstance(plan, SourceOp):
        return Estimate(hints.size(plan.document), hints.cardinality(plan.document))
    if isinstance(plan, PushedOp):
        inner = _estimate(plan.plan, hints)
        # The source does the work cheaply; the mediator pays transfer of
        # the result rows plus the round trip.
        return Estimate(PUSHED_CALL_COST + inner.rows, inner.rows)
    if isinstance(plan, BindOp):
        inner = _estimate(plan.input, hints)
        depth = max(1, sum(1 for _ in plan.filter.walk()))
        return Estimate(inner.cost + inner.rows * depth, inner.rows)
    if isinstance(plan, SelectOp):
        inner = _estimate(plan.input, hints)
        selectivity = hints.predicate_selectivity(plan.predicate)
        return Estimate(inner.cost + inner.rows, inner.rows * selectivity)
    if isinstance(plan, (ProjectOp, MapOp, DistinctOp, SortOp, GroupOp)):
        inner = _estimate(plan.children()[0], hints)
        return Estimate(inner.cost + inner.rows, inner.rows)
    if isinstance(plan, TreeOp):
        inner = _estimate(plan.input, hints)
        return Estimate(inner.cost + 2 * inner.rows, 1.0)
    if isinstance(plan, JoinOp):
        left = _estimate(plan.left, hints)
        right = _estimate(plan.right, hints)
        out = left.rows * right.rows * hints.default_selectivity
        return Estimate(left.cost + right.cost + left.rows * right.rows, out)
    if isinstance(plan, DJoinOp):
        left = _estimate(plan.left, hints)
        right = _estimate(plan.right, hints)
        # The right side is re-evaluated once per outer row.
        return Estimate(left.cost + left.rows * right.cost, left.rows * right.rows)
    if isinstance(plan, (UnionOp, IntersectOp)):
        left = _estimate(plan.left, hints)
        right = _estimate(plan.right, hints)
        return Estimate(left.cost + right.cost, left.rows + right.rows)
    # Unknown operators cost their children plus a constant.
    children = [_estimate(child, hints) for child in plan.children()]
    cost = sum(c.cost for c in children) + 1.0
    rows = max((c.rows for c in children), default=1.0)
    return Estimate(cost, rows)
