"""Exception hierarchy for the YAT reproduction.

Every error raised by the library derives from :class:`YatError`, so callers
can catch one base class at the mediator boundary.  Subclasses are grouped by
subsystem: the data model, the YATL language, the algebra, capability
descriptions, sources, and the mediator itself.
"""

from __future__ import annotations


class YatError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Data model
# ---------------------------------------------------------------------------

class ModelError(YatError):
    """Problem with YAT data trees or type patterns."""


class PatternError(ModelError):
    """A type pattern is malformed (e.g. dangling named-pattern reference)."""


class InstantiationError(ModelError):
    """A tree or pattern failed an instantiation (typing) check."""


class XmlFormatError(ModelError):
    """An XML document does not follow the YAT wire format."""


# ---------------------------------------------------------------------------
# YATL language
# ---------------------------------------------------------------------------

class YatlError(YatError):
    """Problem with a YATL program."""


class YatlSyntaxError(YatlError):
    """The YATL parser rejected the input text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class YatlTranslationError(YatlError):
    """A parsed YATL query could not be translated to the algebra."""


# ---------------------------------------------------------------------------
# Algebra
# ---------------------------------------------------------------------------

class AlgebraError(YatError):
    """Problem while building or evaluating an algebraic plan."""


class BindError(AlgebraError):
    """A Bind filter is malformed or cannot be applied to its input."""


class TypeFilterError(BindError):
    """Pattern matching failed with a type error (paper, Section 2)."""


class EvaluationError(AlgebraError):
    """Runtime failure while evaluating a plan."""


class UnknownVariableError(EvaluationError):
    """An expression referenced a variable absent from the Tab."""


# ---------------------------------------------------------------------------
# Capabilities / source description language
# ---------------------------------------------------------------------------

class CapabilityError(YatError):
    """Problem with a source capability description."""


class FilterNotSupportedError(CapabilityError):
    """A filter is not admissible under a source's Fmodel."""


class OperationNotSupportedError(CapabilityError):
    """An operation is absent from a source's operational interface."""


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------

class SourceError(YatError):
    """Problem inside one of the wrapped sources."""


class OqlError(SourceError):
    """The OQL engine rejected or failed to evaluate a query."""


class OqlSyntaxError(OqlError):
    """The OQL parser rejected the input text."""


class SchemaError(SourceError):
    """An object-database schema definition is inconsistent."""


class WaisError(SourceError):
    """The Wais full-text source rejected a request."""


class SqlSourceError(SourceError):
    """The relational source rejected a request."""


class PushdownRejectedError(SourceError):
    """A wrapper refused a pushed fragment outside its declared capabilities.

    Deterministic — retrying the same fragment can never succeed, so
    resilience policies treat it as non-retryable.
    """


class SourceTimeoutError(SourceError):
    """A source call exceeded its per-call time budget (retryable)."""


class SourceUnavailableError(SourceError):
    """A source could not be reached, even after the policy's retries.

    Carries the failing ``source`` name, the number of ``attempts`` made,
    and (via ``__cause__``) the last underlying error.  Under a
    degradation-enabled :class:`~repro.mediator.resilience.ResiliencePolicy`
    the evaluator may drop a failed ``Union`` branch instead of
    propagating this error.
    """

    def __init__(self, message: str, source: str = "", attempts: int = 0) -> None:
        super().__init__(message)
        self.source = source
        self.attempts = attempts


# ---------------------------------------------------------------------------
# Mediator
# ---------------------------------------------------------------------------

class MediatorError(YatError):
    """Problem at the mediator level (catalog, views, execution)."""


class UnknownSourceError(MediatorError):
    """A plan referenced a source that is not connected."""


class UnknownDocumentError(MediatorError):
    """A plan referenced a named document no source exports."""


class ViewError(MediatorError):
    """A view definition is missing or cannot be composed with a query."""


class ExecutionReportError(MediatorError):
    """An execution report was interrogated for something it does not hold
    (e.g. ``document()`` on a plan that did not build a single tree)."""


class QueryDeadlineError(MediatorError):
    """A federated query exceeded its overall deadline."""


class PartialResultError(MediatorError):
    """Degradation was allowed but no source branch survived, so there is
    no partial answer to return."""


class AdmissionError(MediatorError):
    """The serving layer refused a request before executing it.

    Raised on the submitting caller's thread in well under the
    millisecond range — rejection must stay cheap precisely when the
    server is busiest.  ``retry_after`` is the server's estimate (in
    seconds) of when resubmitting is worth trying; clients that honor it
    spread their retries instead of hammering an overloaded mediator.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class OverloadedError(AdmissionError):
    """The admission queue is full (or past the shedding threshold for
    this request's priority); the request was shed, not queued."""


class QuotaExceededError(AdmissionError):
    """The submitting tenant's token-bucket quota is exhausted;
    ``retry_after`` is the exact time until the bucket refills."""
