"""Concurrent YATL serving with admission control and overload shedding.

The mediator of the paper answers one query at a time; a portal serves
many sessions at once.  This package is the serving layer between the
two: a :class:`MediatorServer` runs a bounded worker pool over one
shared :class:`~repro.mediator.mediator.Mediator` — so every session
benefits from the same plan cache, compiled kernels and document
indexes — while per-request state (tracer, deadline, source-call cache,
tenant identity) travels in an explicit
:class:`~repro.observability.context.RequestContext` instead of process
globals.

Robustness under load is explicit and typed:

* :mod:`repro.server.admission` — token-bucket tenant quotas, tiered
  load shedding (degrade, then shed), EWMA-based ``retry_after`` hints;
* :mod:`repro.server.server` — the bounded admission queue, priority
  scheduling, queued-deadline enforcement and graceful drain;
* :mod:`repro.server.workload` — seeded open/closed-loop drivers with a
  zipfian query and tenant mix, reporting p50/p99/QPS/shed-rate.
"""

from repro.server.admission import (
    PRIORITIES,
    AdmissionOutcome,
    ServiceEstimator,
    TokenBucket,
)
from repro.server.server import MediatorServer, ServerConfig, Ticket
from repro.server.workload import (
    WorkloadResult,
    default_mix,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "PRIORITIES",
    "AdmissionOutcome",
    "MediatorServer",
    "ServerConfig",
    "ServiceEstimator",
    "Ticket",
    "TokenBucket",
    "WorkloadResult",
    "default_mix",
    "run_closed_loop",
    "run_open_loop",
]
